"""E-DIST — §2.4/2.5: the distributed FFC protocol runs in O(K + n) communication steps."""

from repro.core import find_fault_free_cycle
from repro.network import run_distributed_ffc

CASES = [
    (2, 6, [(1, 1, 1, 1, 1, 1)]),
    (2, 8, [(0, 1, 1, 0, 1, 0, 0, 1), (1, 1, 1, 1, 0, 0, 0, 0)]),
    (3, 4, [(0, 1, 2, 2)]),
    (4, 3, [(0, 1, 2), (3, 3, 1)]),
]


def run_cases():
    return [(d, n, faults, run_distributed_ffc(d, n, faults)) for d, n, faults in CASES]


def test_distributed_ffc_rounds(benchmark):
    results = benchmark(run_cases)
    for d, n, faults, dist in results:
        central = find_fault_free_cycle(d, n, faults)
        # the distributed and centralized algorithms agree node for node
        assert list(dist.cycle) == list(central.cycle)
        # step accounting: probe = n, broadcast = K <= 2n (Prop 2.2 regime),
        # coordination <= 2n + 1, total O(K + n)
        assert dist.probe_rounds == n
        assert dist.broadcast_steps <= 2 * n
        assert dist.coordination_rounds <= 2 * n + 1
        assert dist.total_steps <= 5 * n + 1
