"""E-T2.2 — Table 2.2: random node faults in B(4,5) (component size / eccentricity).

``simulate_fault_table`` routes through the parallel sweep engine
(:mod:`repro.engine.sweep`); the rows benchmarked here are bit-for-bit what
``ParallelSweepEngine`` produces for any worker count — the multiprocess
path itself is exercised in ``benchmarks/test_parallel_sweep.py``.
"""

from repro.analysis import format_fault_table, simulate_fault_table


def test_table_2_2(benchmark, small_trials):
    rows = benchmark.pedantic(
        simulate_fault_table,
        args=(4, 5),
        kwargs={"trials": small_trials, "seed": 0, "fault_counts": (0, 1, 2, 5, 10, 20, 50)},
        iterations=1,
        rounds=1,
    )
    print("\n" + format_fault_table(rows, "Table 2.2 (B(4,5), reproduced)"))

    by_f = {row.f: row for row in rows}
    assert by_f[0].avg_size == 1024 and by_f[0].avg_ecc == 5
    # single fault removes exactly one length-5 necklace (paper row: 1019)
    assert by_f[1].avg_size == 1019
    for f in (1, 2, 5, 10):
        assert abs(by_f[f].avg_size - by_f[f].reference_size) <= 8
    # the d=4 graph is much better connected: eccentricity stays ~n..n+4
    assert by_f[50].avg_ecc <= 10
    assert by_f[50].avg_size >= 750  # paper: ~798
    # compared with B(2,10) (Table 2.1), B(4,5) loses fewer nodes at f=50
    assert by_f[50].avg_size > by_f[50].reference_size - 30
