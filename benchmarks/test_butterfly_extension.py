"""E-F3.4/3.5, P3.5/3.6 — §3.4: butterfly structure and the transfer of ring results."""

import itertools

from repro.core import psi
from repro.core.edge_faults import (
    butterfly_disjoint_hamiltonian_cycles,
    butterfly_edge_fault_free_hc,
)
from repro.graphs import ButterflyGraph, DeBruijnGraph, debruijn_node_class


def test_figure_3_4_3_5_butterfly_partition(benchmark):
    # Figure 3.4: F(2,3) has 24 nodes / 48 edges; Figure 3.5: contracting the
    # classes S_x reproduces B(2,3).
    def build():
        f = ButterflyGraph(2, 3)
        return f, f.quotient_is_debruijn()

    f, is_quotient = benchmark(build)
    assert f.num_nodes == 24 and f.num_edges == 48
    assert is_quotient
    b = DeBruijnGraph(2, 3)
    classes = [debruijn_node_class(x, 2) for x in b.nodes()]
    assert sum(len(c) for c in classes) == f.num_nodes


def test_prop_3_5_butterfly_edge_faults(benchmark):
    # gcd(d, n) = 1 cases: fault one butterfly link, recover a Hamiltonian ring
    def run():
        out = {}
        for d, n in [(3, 2), (2, 3), (4, 3), (5, 2)]:
            butterfly = ButterflyGraph(d, n)
            faulty = list(itertools.islice(butterfly.edges(), 1))
            out[(d, n)] = (butterfly, faulty, butterfly_edge_fault_free_hc(d, n, faulty))
        return out

    results = benchmark(run)
    for (d, n), (butterfly, faulty, cycle) in results.items():
        assert len(cycle) == n * d**n
        assert butterfly.is_hamiltonian_cycle(cycle)
        cycle_edges = set(zip(cycle, cycle[1:] + cycle[:1]))
        assert not (cycle_edges & set(faulty))


def test_prop_3_6_butterfly_disjoint_hcs(benchmark):
    def run():
        return {(d, n): butterfly_disjoint_hamiltonian_cycles(d, n) for d, n in [(4, 3), (5, 2)]}

    results = benchmark(run)
    for (d, n), cycles in results.items():
        butterfly = ButterflyGraph(d, n)
        assert len(cycles) >= psi(d)
        edge_sets = []
        for cycle in cycles:
            assert butterfly.is_hamiltonian_cycle(cycle)
            edge_sets.append(set(zip(cycle, cycle[1:] + cycle[:1])))
        for i in range(len(edge_sets)):
            for j in range(i + 1, len(edge_sets)):
                assert not (edge_sets[i] & edge_sets[j])
