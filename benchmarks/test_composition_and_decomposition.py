"""E-EX3.5/3.6, F3.3 — §3.2.2–3.2.3: Rees composition and Hamiltonian decompositions."""

from repro.core import (
    de_bruijn_sequence,
    disjoint_hamiltonian_cycles,
    is_hamiltonian_sequence,
    modified_debruijn_decomposition,
    psi,
    rees_composition,
    verify_pairwise_disjoint,
)


def test_example_3_5_rees_composition(benchmark):
    # Example 3.5: composing HCs of B(2,2) and B(3,2) yields the printed HC of B(6,2)
    a = [0, 0, 1, 1]
    b = [0, 0, 2, 2, 1, 2, 0, 1, 1]
    composed = benchmark(rees_composition, a, b, 2, 3, 2)
    assert composed[:8] == [0, 0, 5, 5, 1, 2, 3, 4]
    assert is_hamiltonian_sequence(composed, 6, 2)


def test_composite_disjoint_families(benchmark):
    def build():
        return {d: disjoint_hamiltonian_cycles(d, 2) for d in (6, 10, 12, 15)}

    families = benchmark(build)
    for d, cycles in families.items():
        assert len(cycles) >= psi(d)
        assert verify_pairwise_disjoint(cycles, d, 2)


def test_figure_3_3_hamiltonian_decomposition(benchmark):
    def build():
        return {
            (2, 3): modified_debruijn_decomposition(2, 3),
            (3, 3): modified_debruijn_decomposition(3, 3),
            (5, 2): modified_debruijn_decomposition(5, 2),
        }

    decs = benchmark(build)
    for (d, n), dec in decs.items():
        assert len(dec.cycles) == d
        assert dec.is_decomposition()
        assert dec.is_regular()
        assert dec.undirected_contains_ub()
    # Figure 3.3 is the d=2, n=3 case: two HCs decomposing UMB(2,3)
    assert decs[(2, 3)].cycles_edge_disjoint()


def test_fkm_baseline_sequences(benchmark):
    # baseline used throughout: the FKM De Bruijn sequence for arbitrary d
    def build():
        return {(d, n): de_bruijn_sequence(d, n) for d, n in [(2, 8), (3, 5), (6, 3), (10, 2)]}

    seqs = benchmark(build)
    for (d, n), seq in seqs.items():
        assert is_hamiltonian_sequence(seq, d, n)
