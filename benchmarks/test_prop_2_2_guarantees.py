"""E-P2.2 / E-P2.3 — Propositions 2.2 and 2.3: worst-case cycle-length guarantees."""

from repro.core import (
    binary_single_fault_bound,
    find_fault_free_cycle,
    node_fault_cycle_bound,
    worst_case_fault_placement,
)

SWEEP = [(3, 3, 1), (4, 3, 2), (4, 4, 2), (5, 3, 3), (6, 3, 4), (7, 3, 5), (5, 4, 3)]


def run_sweep():
    results = []
    for d, n, f in SWEEP:
        faults = worst_case_fault_placement(d, n, f)
        results.append((d, n, f, find_fault_free_cycle(d, n, faults).length))
    return results


def test_prop_2_2_worst_case_sweep(benchmark):
    results = benchmark(run_sweep)
    for d, n, f, length in results:
        bound = node_fault_cycle_bound(d, n, f)
        # the guarantee holds, and on the adversarial placement it is tight
        assert length >= bound
        assert length == d**n - n * f


def test_prop_2_3_binary_single_fault(benchmark):
    def run():
        out = []
        for n in range(4, 11):
            fault = (0, 1) * (n // 2) + (0,) * (n % 2)
            out.append((n, find_fault_free_cycle(2, n, [fault]).length))
        return out

    results = benchmark(run)
    for n, length in results:
        assert length >= binary_single_fault_bound(n) == 2**n - (n + 1)
