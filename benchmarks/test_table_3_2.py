"""E-T3.2 — Table 3.2: max(psi(d)-1, varphi(d)) (tolerated edge faults) for 2 <= d <= 35."""

from repro.analysis import format_mapping_table
from repro.core import edge_fault_phi, psi, table_3_2


def test_table_3_2(benchmark):
    table = benchmark(table_3_2, 35)
    print("\nTable 3.2 (reproduced)\n" + format_mapping_table(table, "d", "max(psi-1, phi)"))
    # recomputed from the paper's definitions
    expected = {d: max(psi(d) - 1, edge_fault_phi(d)) for d in range(2, 36)}
    assert table == expected
    # the paper's headline observations about this table:
    # prime powers tolerate the maximum possible d-2 edge faults ...
    for d in (3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 32):
        assert table[d] == d - 2
    # ... every non-binary d tolerates at least one fault ...
    assert all(table[d] >= 1 for d in table if d > 2)
    # ... and d = 28 is the sole value where the disjoint-HC bound wins.
    for d in table:
        if d == 28:
            assert psi(d) - 1 > edge_fault_phi(d) and table[d] == 8
        else:
            assert table[d] == edge_fault_phi(d)
