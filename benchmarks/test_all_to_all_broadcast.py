"""E-A2A — Chapter 3 motivation: all-to-all broadcast over 1 vs psi(d) disjoint rings."""

from repro.core import disjoint_hamiltonian_cycles, nodes_of_sequence
from repro.network import all_to_all_cost_model, simulate_all_to_all


def run_broadcasts():
    d, n = 8, 2
    rings = [nodes_of_sequence(c, n) for c in disjoint_hamiltonian_cycles(d, n)]
    return d, n, simulate_all_to_all(rings[:1]), simulate_all_to_all(rings)


def test_all_to_all_broadcast(benchmark):
    d, n, single, multi = benchmark(run_broadcasts)
    nodes = d**n
    assert single.complete and multi.complete
    # both take N-1 steps ...
    assert single.steps == multi.steps == nodes - 1
    # ... but the per-link traffic in full-message units drops by a factor psi(d)
    assert multi.rings == 7
    assert single.per_link_payload == nodes - 1
    assert multi.per_link_payload / multi.rings < single.per_link_payload / 2
    # alpha-beta model shows the bandwidth-bound speed-up approaching x rings
    slow = all_to_all_cost_model(nodes, 8192, 1, alpha=1, beta=0.001)
    fast = all_to_all_cost_model(nodes, 8192, multi.rings, alpha=1, beta=0.001)
    assert slow / fast > 3
