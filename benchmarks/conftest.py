"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and asserts the *shape* of the result — who wins, by
what rough factor, which closed-form values match — rather than exact
wall-clock-dependent numbers.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def small_trials() -> int:
    """Trial count used by the random-fault table benchmarks (keeps runtime modest)."""
    return 10
