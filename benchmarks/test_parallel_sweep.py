"""E-ENGINE — the parallel sweep engine vs the serial path (ISSUE 2).

Acceptance criteria of the engine subsystem:

* ``ParallelSweepEngine`` with ``N > 1`` workers reproduces the
  ``simulate_fault_table(2, 10)`` and ``(4, 5)`` rows **bit-for-bit** for a
  fixed seed (the per-trial ``SeedSequence`` streams make worker count
  irrelevant);
* a multi-row ``B(2, 12)`` sweep with 4 workers is at least **2x faster**
  than the serial run.

The equality assertions always run.  The wall-clock assertion needs real
parallel hardware and real timing: it is skipped on hosts with fewer than 4
CPUs and, like the codec speedup gate, disabled under
``--benchmark-disable`` (the CI import/API smoke job).
"""

import os
import time

import pytest

from repro.analysis import simulate_fault_table
from repro.engine import ParallelSweepEngine

#: A realistic multi-row sweep: enough per-trial BFS work for the pool to
#: amortise its startup, small enough to keep the suite snappy.
SPEEDUP_SWEEP = {"fault_counts": (2, 8, 16, 32), "trials": 500, "seed": 0}
REQUIRED_SPEEDUP = 2.0


@pytest.fixture
def timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` (see benchmarks/test_codec_speedup.py)."""
    return not request.config.getoption("benchmark_disable", default=False)


@pytest.mark.parametrize("d,n", [(2, 10), (4, 5)])
def test_parallel_engine_reproduces_fault_tables(d, n):
    """N-worker engine rows == simulate_fault_table rows, bit for bit."""
    serial = simulate_fault_table(d, n, trials=25, seed=0)
    parallel = ParallelSweepEngine(d, n, workers=3).run(trials=25, seed=0)
    assert parallel == serial


def test_four_worker_speedup_b2_12(benchmark, timing_enabled):
    if (os.cpu_count() or 1) < 4:
        pytest.skip("4-worker speedup needs >= 4 CPUs")

    serial_engine = ParallelSweepEngine(2, 12)
    parallel_engine = ParallelSweepEngine(2, 12, workers=4)
    serial_engine.run((1,), trials=2)  # warm the codec tables

    # Re-measure on a noisy miss (same policy as test_codec_speedup): a
    # loaded shared runner can depress any single ratio; a true >= 2x one
    # is vanishingly unlikely to miss three fresh samples in a row.
    speedup, serial_time, parallel_time = 0.0, 0.0, 0.0
    serial_rows, parallel_rows = None, None
    for _ in range(3):
        t0 = time.perf_counter()
        serial_rows = serial_engine.run(**SPEEDUP_SWEEP)
        serial_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel_rows = parallel_engine.run(**SPEEDUP_SWEEP)
        parallel_time = time.perf_counter() - t0

        assert parallel_rows == serial_rows  # never buy speedup with a behaviour change
        speedup = serial_time / parallel_time
        if speedup >= REQUIRED_SPEEDUP:
            break

    print(f"\nB(2,12) sweep ({len(SPEEDUP_SWEEP['fault_counts']) * SPEEDUP_SWEEP['trials']} "
          f"trials): serial {serial_time:.2f} s, 4 workers {parallel_time:.2f} s, "
          f"speedup {speedup:.1f}x")
    if timing_enabled:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"4-worker sweep is only {speedup:.1f}x faster than serial"
        )
    benchmark.pedantic(
        lambda: parallel_engine.run(**SPEEDUP_SWEEP), iterations=1, rounds=1
    )
