"""E-HC-CMP — Chapter 2 introduction: 4096-node hypercube vs De Bruijn B(4,6) with f=2."""

from repro.analysis import compare_hypercube_debruijn, format_table


def test_hypercube_comparison(benchmark):
    cmp = benchmark.pedantic(
        compare_hypercube_debruijn, kwargs={"trials": 3}, iterations=1, rounds=1
    )
    print("\n" + format_table(["quantity", "hypercube Q(12)", "De Bruijn B(4,6)"], cmp.as_rows()))
    # the paper's quoted numbers
    assert cmp.nodes == 4096
    assert cmp.hypercube_cycle_bound == 4092
    assert cmp.debruijn_cycle_bound == 4084
    assert cmp.hypercube_edges == 24576
    assert cmp.debruijn_edges == 16384
    # "the hypercube has 50% more edges than the De Bruijn graph"
    assert cmp.hypercube_edges == int(1.5 * cmp.debruijn_edges)
    # the measured FFC cycles actually achieve the guarantee
    assert cmp.debruijn_cycle_worst_case >= cmp.debruijn_cycle_bound
    assert cmp.debruijn_cycle_random_avg >= cmp.debruijn_cycle_bound
