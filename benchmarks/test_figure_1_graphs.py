"""E-F1.1/1.2 — Figures 1.1 and 1.2: structure of B(2,3), B(2,4) and UB(2,3)."""

from repro.graphs import DeBruijnGraph, UndirectedDeBruijnGraph, degree_census


def build_figures():
    b23 = DeBruijnGraph(2, 3)
    b24 = DeBruijnGraph(2, 4)
    ub23 = UndirectedDeBruijnGraph(2, 3)
    return b23, b24, ub23


def test_figure_1_graphs(benchmark):
    b23, b24, ub23 = benchmark(build_figures)
    # Figure 1.1(a): 8 nodes, 16 edges, loops at 000 and 111
    assert b23.num_nodes == 8 and b23.num_edges == 16
    assert b23.has_loop((0, 0, 0)) and b23.has_loop((1, 1, 1))
    assert b23.has_edge((1, 0, 0), (0, 0, 0)) and b23.has_edge((0, 1, 1), (1, 1, 1))
    # Figure 1.1(b): 16 nodes, 32 edges
    assert b24.num_nodes == 16 and b24.num_edges == 32
    assert b24.has_edge((1, 0, 0, 0), (0, 0, 0, 0))
    # Figure 1.2: UB(2,3) drops loops, merges parallels; degree census from [PR82]
    assert ub23.num_nodes == 8
    assert ub23.degree_census() == degree_census(2, 3) == {2: 2, 3: 2, 4: 4}
    assert ub23.is_connected()
