"""E-MSBFS — the bit-parallel multi-trial BFS kernel vs the scalar path (ISSUE 3).

Acceptance criteria of the batched traversal kernel:

* the batched engine (``batch=64``) reproduces the scalar engine's
  (``batch=1``) rows **bit-for-bit** — same seeds, any batch size, including
  resuming a checkpoint written by the scalar path;
* a multi-row ``B(2, 12)`` sweep is at least **8x faster** single-process
  with the 64-trial kernel than with the per-trial scalar path.

The equality assertions always run.  The wall-clock assertion, like the
other speedup gates, is disabled under ``--benchmark-disable`` (the CI
import/API smoke job) and re-measures on a noisy miss.
"""

import pytest

from repro.engine import ParallelSweepEngine
from repro.engine.bench import _best_time as _bench_best_time

#: The pinned multi-row sweep: four fault counts spanning the paper's light
#: and heavy regimes, enough trials for stable timing, small enough for CI.
SPEEDUP_SWEEP = {"fault_counts": (2, 8, 16, 32), "trials": 128, "seed": 0}
REQUIRED_SPEEDUP = 8.0
#: The kernel typically clears 9-10x; a loaded shared runner can depress a
#: single ratio below the 8x floor, so a miss re-measures with fresh samples.
ATTEMPTS = 5
BEST_OF = 3


@pytest.fixture
def timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` (see benchmarks/test_codec_speedup.py)."""
    return not request.config.getoption("benchmark_disable", default=False)


def _best_time(fn, repeats=BEST_OF):
    """Minimum wall time over ``repeats`` runs (the bench module's helper)."""
    return _bench_best_time(fn, repeats)


@pytest.mark.parametrize("d,n", [(2, 10), (4, 5)])
def test_batched_rows_equal_scalar_rows(d, n):
    """batch=64, batch=7 and batch=1 engines agree bit-for-bit, row for row."""
    kwargs = {"fault_counts": (0, 1, 3, 8, 50), "trials": 40, "seed": 0}
    scalar = ParallelSweepEngine(d, n, batch=1).run(**kwargs)
    batched = ParallelSweepEngine(d, n, batch=64).run(**kwargs)
    ragged = ParallelSweepEngine(d, n, batch=7).run(**kwargs)
    assert batched == scalar
    assert ragged == scalar


def test_batched_resume_of_scalar_checkpoint(tmp_path):
    """A checkpoint written by the scalar path resumes exactly on the batched path."""
    path = tmp_path / "sweep.json"
    kwargs = {"fault_counts": (1, 4), "trials": 30, "seed": 2}
    full = ParallelSweepEngine(2, 8, batch=1).run(**kwargs)

    class _Stop(Exception):
        pass

    def interrupt(progress):
        if progress.done_trials == 17:
            raise _Stop

    scalar_engine = ParallelSweepEngine(
        2, 8, batch=1, checkpoint_path=path, checkpoint_every=1, progress=interrupt
    )
    with pytest.raises(_Stop):
        scalar_engine.run(**kwargs)
    resumed = ParallelSweepEngine(2, 8, batch=64, checkpoint_path=path).run(**kwargs)
    assert resumed == full


def test_eightfold_speedup_b2_12(benchmark, timing_enabled):
    scalar_engine = ParallelSweepEngine(2, 12, batch=1)
    batched_engine = ParallelSweepEngine(2, 12, batch=64)
    scalar_engine.run((1,), trials=2)  # warm the codec tables

    speedup, scalar_time, batched_time = 0.0, 0.0, 0.0
    scalar_rows, batched_rows = None, None
    for _ in range(ATTEMPTS):
        scalar_time, scalar_rows = _best_time(lambda: scalar_engine.run(**SPEEDUP_SWEEP))
        batched_time, batched_rows = _best_time(lambda: batched_engine.run(**SPEEDUP_SWEEP))
        assert batched_rows == scalar_rows  # never buy speedup with a behaviour change
        speedup = scalar_time / batched_time
        if speedup >= REQUIRED_SPEEDUP:
            break

    trials = len(SPEEDUP_SWEEP["fault_counts"]) * SPEEDUP_SWEEP["trials"]
    print(f"\nB(2,12) sweep ({trials} trials): scalar {scalar_time*1e3:.0f} ms, "
          f"64-trial kernel {batched_time*1e3:.0f} ms, speedup {speedup:.1f}x")
    if timing_enabled:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"bit-parallel kernel is only {speedup:.1f}x faster than the scalar path"
        )
    benchmark.pedantic(
        lambda: batched_engine.run(**SPEEDUP_SWEEP), iterations=1, rounds=1
    )
