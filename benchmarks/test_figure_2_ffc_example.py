"""E-F2.1–2.4 — Figures 2.1-2.4 / Example 2.1: the FFC run on B(3,3) with faults {020, 112}."""

from repro.core import find_fault_free_cycle
from repro.words import necklace_of

PAPER_CYCLE = [
    "000", "001", "011", "111", "110", "101", "012", "122", "222", "221", "212",
    "120", "201", "010", "102", "022", "220", "202", "021", "210", "100",
]


def run_example():
    return find_fault_free_cycle(3, 3, [(0, 2, 0), (1, 1, 2)], root_hint=(0, 0, 0))


def test_figure_2_ffc_example(benchmark):
    result = benchmark(run_example)
    # Figure 2.1/2.3: N* has 9 necklace vertices over the 21-node B*
    assert result.bstar.size == 21
    assert len(result.adjacency.necklaces) == 9
    # Figure 2.4(a): spanning tree with 8 edges whose label groups are stars
    result.spanning_tree.validate()
    assert len(result.spanning_tree.parent) == 8
    # Figure 2.4(b): modified tree D closes each star into a label cycle
    result.modified_tree.validate()
    # Example 2.1: the cycle printed in the paper, node for node
    produced = ["".join(map(str, w)) for w in result.cycle]
    assert produced == PAPER_CYCLE
    # and it is a genuine fault-free Hamiltonian cycle of B*
    result.embedding.validate()
    assert necklace_of((0, 2, 0), 3).node_set.isdisjoint(result.cycle)
