"""E-CH4 — Chapter 4: necklace-counting formulae vs the paper's worked examples."""

from repro.core import (
    brute_force_necklace_count,
    count_necklaces_by_weight,
    count_necklaces_by_weight_total,
    count_necklaces_of_length,
    count_necklaces_total,
)


def compute_examples():
    return {
        "length6_B2_12": count_necklaces_of_length(2, 12, 6),
        "total_B2_12": count_necklaces_total(2, 12),
        "w4_len6_B2_12": count_necklaces_by_weight(2, 12, 4, 6),
        "w4_total_B2_12": count_necklaces_by_weight_total(2, 12, 4),
        "w4_len4_B3_4": count_necklaces_by_weight(3, 4, 4, 4),
        "total_B2_16": count_necklaces_total(2, 16),
        "total_B4_8": count_necklaces_total(4, 8),
    }


def test_chapter_4_examples(benchmark):
    values = benchmark(compute_examples)
    # the five worked examples of Section 4.3
    assert values["length6_B2_12"] == 9
    assert values["total_B2_12"] == 352
    assert values["w4_len6_B2_12"] == 2
    assert values["w4_total_B2_12"] == 43
    assert values["w4_len4_B3_4"] == 4
    # closed form agrees with explicit enumeration on larger instances
    assert values["total_B2_16"] == brute_force_necklace_count(2, 16)
    assert values["total_B4_8"] == brute_force_necklace_count(4, 8)
