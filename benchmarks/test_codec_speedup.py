"""E-CODEC — the integer-coded word kernel vs the tuple reference.

Acceptance criteria of the codec refactor (ISSUE 1):

* ``find_fault_free_cycle`` (codec kernel) and ``simulate_fault_row``
  (FaultSweepRunner) are at least **5x faster** than the frozen tuple
  implementations on ``B(2, 12)`` — asserted below on median timings;
* a fault sweep on ``B(4, 10)`` (~10^6 nodes) **completes** — run below with
  a small trial count.

Both comparisons also assert bit-for-bit result equality, so the speedup is
never bought with a behaviour change.
"""

import time

import numpy as np
import pytest

from repro.analysis import FaultSweepRunner, simulate_fault_row
from repro.analysis.reference import simulate_fault_row_reference
from repro.core import find_fault_free_cycle
from repro.words import get_codec


@pytest.fixture
def timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` (the CI import/API smoke job).

    The result-equality assertions always run; the wall-clock speedup
    assertions only run when benchmarking is enabled, so the smoke job can
    never flake on a loaded shared runner.
    """
    return not request.config.getoption("benchmark_disable", default=False)

#: CI machines are noisy; the kernel typically clears 7-11x, the ISSUE floor is 5x.
REQUIRED_SPEEDUP = 5.0


def _best_time(fn, repeats=5):
    """Minimum wall time over ``repeats`` runs (noise only ever inflates a sample)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _measured_speedup(fast_fn, slow_fn, attempts=3):
    """Speedup of ``fast_fn`` over ``slow_fn``, re-measuring on a noisy miss.

    A loaded shared runner can depress any single ratio; retrying with
    fresh best-of-N samples makes a spurious sub-threshold reading (with a
    true ratio of 7-11x) vanishingly unlikely without masking a real
    regression.
    """
    speedup, fast_t, slow_t, fast, slow = 0.0, 0.0, 0.0, None, None
    for _ in range(attempts):
        fast_t, fast = _best_time(fast_fn)
        slow_t, slow = _best_time(slow_fn)
        speedup = slow_t / fast_t
        if speedup >= REQUIRED_SPEEDUP:
            break
    return speedup, fast_t, slow_t, fast, slow


def test_ffc_codec_kernel_speedup_b2_12(benchmark, timing_enabled):
    d, n = 2, 12
    rng = np.random.default_rng(7)
    faults = [tuple(int(x) for x in rng.integers(0, d, n)) for _ in range(6)]
    get_codec(d, n)  # warm the shared tables (amortised across any real workload)
    find_fault_free_cycle(d, n, faults)  # warm-up run

    speedup, codec_time, tuple_time, fast, slow = _measured_speedup(
        lambda: find_fault_free_cycle(d, n, faults),
        lambda: find_fault_free_cycle(d, n, faults, kernel="tuple"),
    )
    assert list(fast.cycle) == list(slow.cycle)

    print(f"\nFFC B(2,12): codec {codec_time*1e3:.1f} ms, tuple {tuple_time*1e3:.1f} ms, "
          f"speedup {speedup:.1f}x")
    if timing_enabled:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"codec FFC kernel is only {speedup:.1f}x faster than the tuple reference"
        )
    benchmark.pedantic(find_fault_free_cycle, args=(d, n, faults), iterations=1, rounds=3)


def test_fault_row_runner_speedup_b2_12(benchmark, timing_enabled):
    d, n, f, trials = 2, 12, 8, 30
    get_codec(d, n)  # warm the shared tables
    simulate_fault_row(d, n, f, trials=2)  # warm-up run

    speedup, runner_time, reference_time, fast_row, slow_row = _measured_speedup(
        lambda: simulate_fault_row(d, n, f, trials=trials, rng=np.random.default_rng(0)),
        lambda: simulate_fault_row_reference(
            d, n, f, trials=trials, rng=np.random.default_rng(0)
        ),
    )
    assert fast_row == slow_row  # identical statistics, row for row

    print(f"\nfault row B(2,12): runner {runner_time*1e3:.0f} ms, "
          f"reference {reference_time*1e3:.0f} ms, speedup {speedup:.1f}x")
    if timing_enabled:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"FaultSweepRunner is only {speedup:.1f}x faster than the tuple reference"
        )
    benchmark.pedantic(
        simulate_fault_row,
        args=(d, n, f),
        kwargs={"trials": trials, "rng": np.random.default_rng(0)},
        iterations=1,
        rounds=3,
    )


def test_million_node_sweep_completes(benchmark):
    """A Table-2.x style sweep on B(4, 10): ~1.05 million processors."""
    d, n = 4, 10
    runner = FaultSweepRunner(d, n)
    assert runner.codec.size == 4**10 == 1_048_576

    rows = benchmark.pedantic(
        runner.run_table,
        kwargs={"fault_counts": (0, 10, 50), "trials": 2, "seed": 0},
        iterations=1,
        rounds=1,
    )
    by_f = {row.f: row for row in rows}
    assert by_f[0].avg_size == 4**10 and by_f[0].avg_ecc == 10
    # with whole-necklace removal each fault kills at most n nodes
    for f in (10, 50):
        assert 4**10 - n * f <= by_f[f].avg_size < 4**10
        assert by_f[f].min_ecc >= 10
    sizes = [row.avg_size for row in rows]
    assert sizes == sorted(sizes, reverse=True)
