"""E-P3.3/3.4 — Propositions 3.3/3.4: Hamiltonian rings under adversarial edge faults."""

import numpy as np

from repro.core import (
    edge_fault_phi,
    edge_fault_tolerance,
    edges_of_sequence,
    find_edge_fault_free_hc,
    is_hamiltonian_sequence,
)
from repro.network import sample_edge_faults

SWEEP = [(3, 2), (4, 2), (5, 2), (7, 2), (8, 2), (9, 2), (6, 2), (10, 2), (12, 2), (4, 3)]


def run_sweep():
    results = {}
    for d, n in SWEEP:
        tolerance = edge_fault_tolerance(d)
        rng = np.random.default_rng(d * 10 + n)
        faults = set(map(tuple, sample_edge_faults(d, n, tolerance, rng)))
        seq = find_edge_fault_free_hc(d, n, faults, strict=True)
        results[(d, n)] = (faults, seq)
    return results


def test_edge_fault_tolerance_sweep(benchmark):
    results = benchmark(run_sweep)
    for (d, n), (faults, seq) in results.items():
        assert is_hamiltonian_sequence(seq, d, n)
        assert not (set(edges_of_sequence(seq, n)) & faults)
    # prime powers tolerate the optimal d-2 faults (phi(p^e) = p^e - 2)
    for d in (3, 4, 5, 7, 8, 9):
        assert edge_fault_phi(d) == d - 2
    # composite d tolerate at least one fault (Section 3.3 remark)
    for d in (6, 10, 12):
        assert edge_fault_tolerance(d) >= 1
