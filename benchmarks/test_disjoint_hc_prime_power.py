"""E-F3.1/Ex3.1–3.4 — §3.2.1: maximal cycles, shifted HCs and conflict structure (Figures 3.1-3.2)."""

from repro.core import (
    conflict_function,
    cycles_conflict,
    disjoint_hamiltonian_cycles_prime_power,
    psi,
    strategy_for_prime,
    verify_pairwise_disjoint,
)
from repro.gf import GF, LinearRecurrence, maximal_cycle

CASES = [(4, 2), (5, 2), (8, 2), (9, 2), (13, 2), (4, 3)]


def build_families():
    return {(d, n): disjoint_hamiltonian_cycles_prime_power(d, n) for d, n in CASES}


def test_disjoint_hc_prime_power(benchmark):
    families = benchmark(build_families)
    for (d, n), family in families.items():
        cycles = family.as_list()
        # Proposition 3.1: at least psi(d) pairwise disjoint Hamiltonian cycles
        assert len(cycles) >= psi(d)
        assert verify_pairwise_disjoint(cycles, d, n)
    # Example 3.2 regime: powers of two reach the d-1 optimum (Strategy 1)
    assert len(families[(4, 2)].as_list()) == 3
    assert len(families[(8, 2)].as_list()) == 7
    # Example 3.3 regime: d=13 reaches (d+1)/2 via Strategy 2 + H_0
    assert len(families[(13, 2)].as_list()) == 7
    # Example 3.4 regime: d=5 reaches (d-1)/2 via Strategy 3
    assert len(families[(5, 2)].as_list()) == 2


def test_example_3_1_maximal_cycle(benchmark):
    # Example 3.1: x^2 - x - 3 over GF(5), initial (0,1)
    rec = LinearRecurrence(GF(5), (3, 1))
    cycle = benchmark(maximal_cycle, 5, 2, rec, (0, 1))
    assert cycle == [0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3, 0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2]


def test_figure_3_2_conflict_graph(benchmark):
    # Figure 3.2: the conflict relation among {H_x} for d = 13 is 4-regular
    def build():
        fmap = conflict_function(13)
        info = strategy_for_prime(13)
        edges = {
            (x, y)
            for x in range(1, 13)
            for y in range(1, 13)
            if x < y and cycles_conflict(x, y, 13, fmap)
        }
        return info, edges

    info, edges = benchmark(build)
    assert info["strategy"] == 2
    degree = {x: 0 for x in range(1, 13)}
    for x, y in edges:
        degree[x] += 1
        degree[y] += 1
    # every nonzero x conflicts with the four elements {l^A x, l^B x, l^-A x, l^-B x}
    assert all(deg == 4 for deg in degree.values())
