"""E-T2.1 — Table 2.1: random node faults in B(2,10) (component size / eccentricity).

``simulate_fault_table`` routes through the parallel sweep engine
(:mod:`repro.engine.sweep`); the rows benchmarked here are bit-for-bit what
``ParallelSweepEngine`` produces for any worker count — the multiprocess
path itself is exercised in ``benchmarks/test_parallel_sweep.py``.
"""

from repro.analysis import format_fault_table, simulate_fault_table


def test_table_2_1(benchmark, small_trials):
    rows = benchmark.pedantic(
        simulate_fault_table,
        args=(2, 10),
        kwargs={"trials": small_trials, "seed": 0, "fault_counts": (0, 1, 2, 5, 10, 20, 50)},
        iterations=1,
        rounds=1,
    )
    print("\n" + format_fault_table(rows, "Table 2.1 (B(2,10), reproduced)"))

    by_f = {row.f: row for row in rows}
    # shape checks against the paper's Table 2.1
    assert by_f[0].avg_size == 1024 and by_f[0].avg_ecc == 10
    # sizes track d^n - nf closely for small f and decay monotonically
    for f in (1, 2, 5, 10):
        assert abs(by_f[f].avg_size - by_f[f].reference_size) <= 12
    sizes = [row.avg_size for row in rows]
    assert sizes == sorted(sizes, reverse=True)
    # eccentricity grows slowly (paper: 10 -> ~20 at f=50)
    assert by_f[50].avg_ecc <= 3 * by_f[0].avg_ecc
    assert by_f[50].avg_size >= 400  # graph stays largely intact (paper: ~620)
