"""E-T3.1 — Table 3.1: psi(d) (guaranteed disjoint Hamiltonian cycles) for 2 <= d <= 38."""

from repro.analysis import format_mapping_table
from repro.core import psi, table_3_1

# Table 3.1 of the thesis (the OCR of a few entries is unreadable; the values
# below are the ones that are legible and they all match the recomputation).
PAPER_TABLE_3_1 = {
    2: 1, 3: 1, 4: 3, 5: 2, 6: 1, 7: 3, 8: 7, 9: 4, 10: 2, 11: 5, 12: 3,
    13: 7, 14: 3, 15: 2, 16: 15, 17: 9, 18: 4, 19: 9, 20: 6, 21: 3, 22: 5,
    23: 11, 24: 7, 25: 12, 26: 7, 27: 13, 28: 9, 30: 2, 31: 15, 32: 31,
    33: 5, 34: 9, 35: 6, 36: 12, 38: 9,
}


def test_table_3_1(benchmark):
    table = benchmark(table_3_1, 38)
    print("\nTable 3.1 (reproduced)\n" + format_mapping_table(table, "d", "psi(d)"))
    for d, value in PAPER_TABLE_3_1.items():
        assert table[d] == value, f"psi({d})"
    # structural properties: psi is multiplicative and optimal for powers of two
    assert all(table[d] <= d - 1 for d in table)
    for d in (4, 8, 16, 32):
        assert table[d] == d - 1
    assert table[6] == psi(2) * psi(3)
