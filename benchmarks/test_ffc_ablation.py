"""Ablations on the FFC algorithm's design choices (DESIGN.md §5).

Two choices the paper makes are varied here:

* root selection — the paper's simulations fix R = 0...01; any canonical
  necklace representative works.  The cycle *length* is invariant (it always
  equals |B*|), only the broadcast eccentricity changes.
* necklace-granularity removal — the paper removes whole faulty necklaces;
  removing only the faulty nodes themselves keeps more processors but breaks
  the balancedness that the necklace-stitching relies on.  The ablation
  quantifies how many extra nodes the necklace convention gives up.
"""

import numpy as np

from repro.core import find_fault_free_cycle
from repro.graphs import residual_after_node_faults
from repro.network import sample_node_faults


def run_root_ablation():
    d, n = 2, 8
    faults = [(0, 1, 1, 0, 1, 0, 0, 1), (1, 1, 1, 1, 0, 0, 0, 0)]
    roots = [(0,) * (n - 1) + (1,), (0, 1) * (n // 2), None]
    return [find_fault_free_cycle(d, n, faults, root_hint=r) for r in roots]


def test_root_selection_ablation(benchmark):
    results = benchmark(run_root_ablation)
    lengths = {r.length for r in results}
    # the fault-free cycle length does not depend on the chosen root
    assert len(lengths) == 1
    for r in results:
        r.embedding.validate()


def test_necklace_vs_node_removal_ablation(benchmark):
    def run():
        d, n = 2, 10
        rng = np.random.default_rng(0)
        rows = []
        for f in (1, 5, 10, 20):
            faults = sample_node_faults(d, n, f, rng)
            whole = residual_after_node_faults(d, n, faults, remove_whole_necklaces=True)
            only = residual_after_node_faults(d, n, faults, remove_whole_necklaces=False)
            rows.append((f, whole.num_alive, only.num_alive))
        return rows

    rows = benchmark(run)
    for f, whole_alive, node_alive in rows:
        # removing whole necklaces costs at most n-1 extra nodes per fault...
        assert node_alive - whole_alive <= f * (10 - 1)
        # ...and never keeps fewer nodes than the faults themselves require
        assert whole_alive >= 2**10 - f * 10
