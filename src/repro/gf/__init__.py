"""Finite-field substrate: ``Z_p`` number theory, ``GF(p^e)`` arithmetic, LFSRs.

Chapter 3 of the paper builds its edge-fault-tolerant embeddings from maximal
(period ``d^n - 1``) linear-recurrence sequences over ``GF(d)``; this
subpackage provides everything needed to realise those constructions exactly:
prime/prime-power decomposition, primitive roots and the quadratic character
of 2 (Lemma 3.5), extension-field arithmetic, primitive-polynomial search and
shift-register sequence generation.
"""

from .field import GF, ExtensionField, GaloisField, PrimeField
from .lfsr import (
    AffineRecurrence,
    LinearRecurrence,
    default_maximal_cycle_recurrence,
    maximal_cycle,
    sequence_period,
    shifted_cycle,
)
from .modular import (
    as_prime_power,
    divisors,
    euler_phi,
    is_prime,
    is_prime_power,
    is_primitive_root,
    is_quadratic_residue,
    legendre_symbol,
    lemma_3_5_conditions,
    mobius,
    multiplicative_order,
    prime_factorization,
    prime_power_decomposition,
    primitive_root,
    primitive_roots,
    two_as_odd_power,
    two_as_odd_power_sum,
)
from .poly import Poly
from .primitive import (
    find_irreducible,
    find_primitive_polynomial,
    is_irreducible,
    is_primitive,
    polynomial_order,
    primitive_polynomial_coefficients,
)

__all__ = [
    "GF",
    "ExtensionField",
    "GaloisField",
    "PrimeField",
    "AffineRecurrence",
    "LinearRecurrence",
    "default_maximal_cycle_recurrence",
    "maximal_cycle",
    "sequence_period",
    "shifted_cycle",
    "as_prime_power",
    "divisors",
    "euler_phi",
    "is_prime",
    "is_prime_power",
    "is_primitive_root",
    "is_quadratic_residue",
    "legendre_symbol",
    "lemma_3_5_conditions",
    "mobius",
    "multiplicative_order",
    "prime_factorization",
    "prime_power_decomposition",
    "primitive_root",
    "primitive_roots",
    "two_as_odd_power",
    "two_as_odd_power_sum",
    "Poly",
    "find_irreducible",
    "find_primitive_polynomial",
    "is_irreducible",
    "is_primitive",
    "polynomial_order",
    "primitive_polynomial_coefficients",
]
