"""Galois fields ``GF(q)`` for prime powers ``q = p**e``.

Section 3.1 of the paper assumes "``d`` is a prime power ``p**e`` and
``A = GF(d)``": the maximal cycles that seed the disjoint-Hamiltonian-cycle
construction are linear recurrences over the *field* with ``d`` elements, not
the ring ``Z_d``.  This module provides exact field arithmetic for both the
prime case (``e = 1``) and the extension case (``e > 1``).

Elements are represented as plain Python ints in ``range(q)``:

* in a :class:`PrimeField` the int *is* the residue modulo ``p``;
* in an :class:`ExtensionField` the int encodes the coefficient vector of the
  element (as a polynomial in the generator ``x`` modulo an irreducible
  polynomial), base ``p`` with the constant coefficient least significant.
  Addition is therefore digit-wise addition mod ``p`` and multiplication is
  polynomial multiplication reduced modulo the field's modulus polynomial.

This integer encoding doubles as the mapping "GF(d) -> Z_d" required by
Section 3.2.2 ("the cycles of the previous section can be readily mapped to
this representation using any one-to-one mapping of the elements of GF(d) to
Z_d"): the identity map on ``range(q)`` is exactly such a bijection.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product

from ..engine.caches import register_cache
from ..exceptions import InvalidParameterError, NotPrimePowerError
from .modular import as_prime_power, prime_factorization, primitive_root

__all__ = ["GaloisField", "PrimeField", "ExtensionField", "GF"]


class GaloisField:
    """Abstract interface shared by :class:`PrimeField` and :class:`ExtensionField`.

    All operations take and return ints in ``range(self.order)``.
    """

    #: additive identity (always the integer 0)
    zero: int = 0
    #: multiplicative identity (always the integer 1)
    one: int = 1

    def __init__(self, p: int, e: int) -> None:
        self.characteristic = p
        self.degree = e
        self.order = p**e

    # -- arithmetic interface (implemented by subclasses) ------------------
    def add(self, a: int, b: int) -> int:
        raise NotImplementedError

    def neg(self, a: int) -> int:
        raise NotImplementedError

    def mul(self, a: int, b: int) -> int:
        raise NotImplementedError

    def inv(self, a: int) -> int:
        raise NotImplementedError

    # -- derived operations -------------------------------------------------
    def sub(self, a: int, b: int) -> int:
        """Return ``a - b``."""
        return self.add(a, self.neg(b))

    def div(self, a: int, b: int) -> int:
        """Return ``a / b``; raises on division by zero."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, k: int) -> int:
        """Return ``a**k`` (``k`` may be negative for invertible ``a``)."""
        self._check(a)
        if k < 0:
            a = self.inv(a)
            k = -k
        result = self.one
        base = a
        while k:
            if k & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            k >>= 1
        return result

    def sum(self, values) -> int:
        """Return the field sum of an iterable of elements."""
        total = self.zero
        for v in values:
            total = self.add(total, v)
        return total

    def dot(self, left, right) -> int:
        """Return the field inner product ``sum(l_i * r_i)`` of two sequences."""
        total = self.zero
        for a, b in zip(left, right):
            total = self.add(total, self.mul(a, b))
        return total

    # -- structure ------------------------------------------------------------
    @property
    def elements(self) -> range:
        """All field elements as the range ``0..q-1``."""
        return range(self.order)

    def multiplicative_order(self, a: int) -> int:
        """Return the order of ``a`` in the multiplicative group ``GF(q)*``."""
        self._check(a)
        if a == self.zero:
            raise InvalidParameterError("zero has no multiplicative order")
        group = self.order - 1
        order = group
        for prime, exponent in prime_factorization(group):
            for _ in range(exponent):
                if self.pow(a, order // prime) == self.one:
                    order //= prime
                else:
                    break
        return order

    def generator(self) -> int:
        """Return a primitive element (generator of the multiplicative group)."""
        for candidate in range(2, self.order):
            if self.multiplicative_order(candidate) == self.order - 1:
                return candidate
        return self.one if self.order == 2 else self.zero  # pragma: no cover

    def _check(self, a: int) -> int:
        if not 0 <= a < self.order:
            raise InvalidParameterError(
                f"{a} is not an element of GF({self.order})"
            )
        return a

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(GF({self.order}))"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GaloisField):
            return NotImplemented
        return (
            self.order == other.order
            and getattr(self, "modulus", None) == getattr(other, "modulus", None)
        )

    def __hash__(self) -> int:
        return hash((self.order, getattr(self, "modulus", None)))


class PrimeField(GaloisField):
    """The prime field ``GF(p) = Z_p``."""

    def __init__(self, p: int) -> None:
        factors = prime_factorization(p)
        if len(factors) != 1 or factors[0][1] != 1:
            raise NotPrimePowerError(f"{p} is not prime")
        super().__init__(p, 1)

    def add(self, a: int, b: int) -> int:
        return (self._check(a) + self._check(b)) % self.order

    def neg(self, a: int) -> int:
        return (-self._check(a)) % self.order

    def mul(self, a: int, b: int) -> int:
        return (self._check(a) * self._check(b)) % self.order

    def inv(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("division by zero in GF(p)")
        return pow(a, self.order - 2, self.order)

    def generator(self) -> int:
        return primitive_root(self.order) if self.order > 2 else 1


class ExtensionField(GaloisField):
    """The extension field ``GF(p**e)`` for ``e >= 2``.

    Parameters
    ----------
    p, e:
        Characteristic and extension degree.
    modulus:
        Optional monic irreducible polynomial of degree ``e`` over ``Z_p``
        given as a tuple of coefficients, constant term first.  When omitted
        the lexicographically smallest monic irreducible polynomial is used,
        making field construction deterministic.
    """

    def __init__(self, p: int, e: int, modulus: tuple[int, ...] | None = None) -> None:
        if e < 2:
            raise InvalidParameterError("ExtensionField requires degree >= 2; use PrimeField")
        factors = prime_factorization(p)
        if len(factors) != 1 or factors[0][1] != 1:
            raise NotPrimePowerError(f"characteristic {p} is not prime")
        super().__init__(p, e)
        if modulus is None:
            modulus = _smallest_irreducible(p, e)
        modulus = tuple(int(c) % p for c in modulus)
        if len(modulus) != e + 1 or modulus[-1] != 1:
            raise InvalidParameterError(
                f"modulus must be monic of degree {e}, got {modulus}"
            )
        if not _is_irreducible_mod_p(modulus, p):
            raise InvalidParameterError(f"modulus {modulus} is reducible over Z_{p}")
        self.modulus = modulus
        self._mul_table: dict[tuple[int, int], int] | None = (
            {} if self.order <= 256 else None
        )

    # -- encoding helpers ----------------------------------------------------
    def to_coeffs(self, a: int) -> tuple[int, ...]:
        """Return the coefficient vector of ``a`` (constant term first, length ``e``)."""
        self._check(a)
        p = self.characteristic
        coeffs = []
        for _ in range(self.degree):
            coeffs.append(a % p)
            a //= p
        return tuple(coeffs)

    def from_coeffs(self, coeffs) -> int:
        """Return the element encoded by a coefficient vector (constant term first)."""
        p = self.characteristic
        value = 0
        for c in reversed(list(coeffs)):
            value = value * p + (int(c) % p)
        self._check(value)
        return value

    # -- arithmetic ------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        p = self.characteristic
        ca, cb = self.to_coeffs(a), self.to_coeffs(b)
        return self.from_coeffs((x + y) % p for x, y in zip(ca, cb))

    def neg(self, a: int) -> int:
        p = self.characteristic
        return self.from_coeffs((-x) % p for x in self.to_coeffs(a))

    def mul(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if self._mul_table is not None:
            key = (a, b) if a <= b else (b, a)
            cached = self._mul_table.get(key)
            if cached is not None:
                return cached
        result = self._mul_uncached(a, b)
        if self._mul_table is not None:
            self._mul_table[(a, b) if a <= b else (b, a)] = result
        return result

    def _mul_uncached(self, a: int, b: int) -> int:
        p = self.characteristic
        ca, cb = self.to_coeffs(a), self.to_coeffs(b)
        prod = [0] * (2 * self.degree - 1)
        for i, x in enumerate(ca):
            if x:
                for j, y in enumerate(cb):
                    prod[i + j] = (prod[i + j] + x * y) % p
        reduced = _poly_mod(prod, list(self.modulus), p)
        reduced += [0] * (self.degree - len(reduced))
        return self.from_coeffs(reduced[: self.degree])

    def inv(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("division by zero in GF(p^e)")
        # a^(q-2) = a^{-1} in GF(q)
        return self.pow(a, self.order - 2)


@lru_cache(maxsize=64)
def GF(q: int, modulus: tuple[int, ...] | None = None) -> GaloisField:
    """Return the Galois field with ``q`` elements (cached factory).

    Raises
    ------
    NotPrimePowerError
        If ``q`` is not a prime power.
    """
    p, e = as_prime_power(q)
    if e == 1:
        if modulus is not None:
            raise InvalidParameterError("prime fields do not take a modulus")
        return PrimeField(p)
    return ExtensionField(p, e, modulus)


# ---------------------------------------------------------------------------
# Internal dense polynomial arithmetic over Z_p (constant term first).  These
# helpers only exist to bootstrap ExtensionField; user-facing polynomial
# arithmetic over arbitrary Galois fields lives in repro.gf.poly.
# ---------------------------------------------------------------------------

def _poly_trim(poly: list[int]) -> list[int]:
    while poly and poly[-1] == 0:
        poly.pop()
    return poly


def _poly_mod(num: list[int], den: list[int], p: int) -> list[int]:
    """Return ``num mod den`` with coefficients in ``Z_p`` (den monic)."""
    num = _poly_trim([c % p for c in num])
    den = _poly_trim([c % p for c in den])
    if not den:
        raise ZeroDivisionError("polynomial modulus is zero")
    inv_lead = pow(den[-1], p - 2, p)
    while len(num) >= len(den):
        factor = num[-1] * inv_lead % p
        shift = len(num) - len(den)
        for i, c in enumerate(den):
            num[shift + i] = (num[shift + i] - factor * c) % p
        _poly_trim(num)
        if not num:
            break
    return num


def _poly_mul(a: list[int], b: list[int], p: int) -> list[int]:
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        if x:
            for j, y in enumerate(b):
                out[i + j] = (out[i + j] + x * y) % p
    return _poly_trim(out)


def _is_irreducible_mod_p(poly: tuple[int, ...], p: int) -> bool:
    """Test irreducibility of a monic polynomial over ``Z_p`` by trial division."""
    coeffs = _poly_trim([c % p for c in poly])
    degree = len(coeffs) - 1
    if degree <= 0:
        return False
    if degree == 1:
        return True
    if coeffs[0] == 0:
        return False  # divisible by x
    # trial division by every monic polynomial of degree 1..degree//2
    for low_deg in range(1, degree // 2 + 1):
        for tail in product(range(p), repeat=low_deg):
            candidate = list(tail) + [1]
            if not _poly_mod(list(coeffs), candidate, p):
                return False
    return True


@lru_cache(maxsize=64)
def _smallest_irreducible(p: int, e: int) -> tuple[int, ...]:
    """Return the lexicographically smallest monic irreducible polynomial of degree ``e``."""
    for tail in product(range(p), repeat=e):
        candidate = tuple(tail) + (1,)
        if _is_irreducible_mod_p(candidate, p):
            return candidate
    raise InvalidParameterError(  # pragma: no cover - irreducibles always exist
        f"no irreducible polynomial of degree {e} over Z_{p}"
    )


# Audit registration (REP001): every lru_cache in a resident process must be
# visible to the engine's /stats cache audit — bounded is not enough if the
# operator cannot enumerate, snapshot and clear it.
register_cache("gf.GF", GF)
register_cache("gf.smallest_irreducible", _smallest_irreducible)
