"""Dense univariate polynomials over an arbitrary Galois field.

The maximal cycles of Section 3.1 are sequences whose *characteristic
polynomial* ``p(x) = x^n - a_{n-1} x^{n-1} - ... - a_0`` must be primitive
over ``GF(d)``; testing primitivity requires exact polynomial arithmetic
(multiplication, remainder, gcd and modular exponentiation of ``x``) over a
possibly non-prime field.  :class:`Poly` provides exactly that, with
coefficients stored constant-term first as integers in the field's canonical
``range(q)`` encoding (see :mod:`repro.gf.field`).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import InvalidParameterError
from .field import GaloisField

__all__ = ["Poly"]


class Poly:
    """An immutable polynomial over a :class:`~repro.gf.field.GaloisField`.

    Parameters
    ----------
    field:
        The coefficient field.
    coeffs:
        Coefficients, constant term first.  Trailing zeros are stripped; the
        zero polynomial has an empty coefficient tuple and degree ``-1``.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GaloisField, coeffs: Sequence[int]) -> None:
        stripped = [int(c) for c in coeffs]
        for c in stripped:
            if not 0 <= c < field.order:
                raise InvalidParameterError(
                    f"coefficient {c} is not an element of GF({field.order})"
                )
        while stripped and stripped[-1] == field.zero:
            stripped.pop()
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "coeffs", tuple(stripped))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Poly instances are immutable")

    # -- constructors -------------------------------------------------------
    @classmethod
    def zero(cls, field: GaloisField) -> "Poly":
        """Return the zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: GaloisField) -> "Poly":
        """Return the constant polynomial 1."""
        return cls(field, (field.one,))

    @classmethod
    def x(cls, field: GaloisField) -> "Poly":
        """Return the monomial ``x``."""
        return cls(field, (field.zero, field.one))

    @classmethod
    def monomial(cls, field: GaloisField, degree: int, coeff: int | None = None) -> "Poly":
        """Return ``coeff * x**degree`` (default coefficient 1)."""
        if degree < 0:
            raise InvalidParameterError("monomial degree must be >= 0")
        coeff = field.one if coeff is None else coeff
        return cls(field, (field.zero,) * degree + (coeff,))

    @classmethod
    def from_characteristic(cls, field: GaloisField, recurrence: Sequence[int]) -> "Poly":
        """Build ``x^n - a_{n-1} x^{n-1} - ... - a_0`` from recurrence coefficients.

        ``recurrence`` lists ``(a_0, a_1, ..., a_{n-1})`` of the paper's
        recurrence (3.1); the result is the characteristic polynomial (3.2).
        """
        n = len(recurrence)
        coeffs = [field.neg(a) for a in recurrence] + [field.one]
        if n == 0:
            raise InvalidParameterError("recurrence must have at least one coefficient")
        return cls(field, coeffs)

    # -- basic structure -----------------------------------------------------
    @property
    def degree(self) -> int:
        """The degree of the polynomial; the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    @property
    def is_monic(self) -> bool:
        return bool(self.coeffs) and self.coeffs[-1] == self.field.one

    def __getitem__(self, i: int) -> int:
        """Return the coefficient of ``x**i`` (0 when beyond the degree)."""
        return self.coeffs[i] if 0 <= i < len(self.coeffs) else self.field.zero

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.field == other.field and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_zero:
            return "Poly(0)"
        terms = []
        for i in range(self.degree, -1, -1):
            c = self[i]
            if c == self.field.zero:
                continue
            if i == 0:
                terms.append(f"{c}")
            elif i == 1:
                terms.append(f"{c}*x" if c != self.field.one else "x")
            else:
                terms.append(f"{c}*x^{i}" if c != self.field.one else f"x^{i}")
        return "Poly(" + " + ".join(terms) + f") over GF({self.field.order})"

    # -- arithmetic ------------------------------------------------------------
    def _require_same_field(self, other: "Poly") -> None:
        if self.field != other.field:
            raise InvalidParameterError("polynomials are over different fields")

    def __add__(self, other: "Poly") -> "Poly":
        self._require_same_field(other)
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        return Poly(f, [f.add(self[i], other[i]) for i in range(n)])

    def __neg__(self) -> "Poly":
        f = self.field
        return Poly(f, [f.neg(c) for c in self.coeffs])

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __mul__(self, other: "Poly") -> "Poly":
        self._require_same_field(other)
        f = self.field
        if self.is_zero or other.is_zero:
            return Poly.zero(f)
        out = [f.zero] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == f.zero:
                continue
            for j, b in enumerate(other.coeffs):
                if b != f.zero:
                    out[i + j] = f.add(out[i + j], f.mul(a, b))
        return Poly(f, out)

    def scale(self, scalar: int) -> "Poly":
        """Return the polynomial multiplied by a field scalar."""
        f = self.field
        return Poly(f, [f.mul(scalar, c) for c in self.coeffs])

    def divmod(self, other: "Poly") -> tuple["Poly", "Poly"]:
        """Return quotient and remainder of Euclidean division by ``other``."""
        self._require_same_field(other)
        f = self.field
        if other.is_zero:
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        quotient = [f.zero] * max(len(self.coeffs) - len(other.coeffs) + 1, 0)
        inv_lead = f.inv(other.coeffs[-1])
        while len(remainder) >= len(other.coeffs) and any(c != f.zero for c in remainder):
            # strip trailing zeros before comparing degrees
            while remainder and remainder[-1] == f.zero:
                remainder.pop()
            if len(remainder) < len(other.coeffs):
                break
            shift = len(remainder) - len(other.coeffs)
            factor = f.mul(remainder[-1], inv_lead)
            quotient[shift] = factor
            for i, c in enumerate(other.coeffs):
                remainder[shift + i] = f.sub(remainder[shift + i], f.mul(factor, c))
        return Poly(f, quotient), Poly(f, remainder)

    def __mod__(self, other: "Poly") -> "Poly":
        return self.divmod(other)[1]

    def __floordiv__(self, other: "Poly") -> "Poly":
        return self.divmod(other)[0]

    def gcd(self, other: "Poly") -> "Poly":
        """Return the monic greatest common divisor."""
        self._require_same_field(other)
        a, b = self, other
        while not b.is_zero:
            a, b = b, a % b
        if a.is_zero:
            return a
        return a.scale(a.field.inv(a.coeffs[-1]))

    def pow_mod(self, exponent: int, modulus: "Poly") -> "Poly":
        """Return ``self**exponent mod modulus`` by square-and-multiply."""
        if exponent < 0:
            raise InvalidParameterError("pow_mod exponent must be >= 0")
        result = Poly.one(self.field)
        base = self % modulus
        while exponent:
            if exponent & 1:
                result = (result * base) % modulus
            base = (base * base) % modulus
            exponent >>= 1
        return result

    def evaluate(self, x: int) -> int:
        """Evaluate the polynomial at the field element ``x`` (Horner's rule)."""
        f = self.field
        result = f.zero
        for c in reversed(self.coeffs):
            result = f.add(f.mul(result, x), c)
        return result

    def derivative(self) -> "Poly":
        """Return the formal derivative."""
        f = self.field
        if self.degree <= 0:
            return Poly.zero(f)
        out = []
        for i in range(1, len(self.coeffs)):
            scalar = i % f.characteristic
            # scalar * coeff computed as repeated addition image of the integer i
            term = f.zero
            for _ in range(scalar):
                term = f.add(term, self.coeffs[i])
            out.append(term)
        return Poly(f, out)

    def recurrence_coefficients(self) -> tuple[int, ...]:
        """Return ``(a_0, ..., a_{n-1})`` such that ``self = x^n - a_{n-1}x^{n-1} - ... - a_0``.

        Inverse of :meth:`from_characteristic`; requires a monic polynomial.
        """
        if not self.is_monic:
            raise InvalidParameterError("recurrence coefficients require a monic polynomial")
        f = self.field
        return tuple(f.neg(c) for c in self.coeffs[:-1])
