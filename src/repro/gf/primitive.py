"""Irreducibility, order and primitivity of polynomials over ``GF(q)``.

A monic polynomial ``p(x)`` of degree ``n`` over ``GF(q)`` is *primitive*
when it is irreducible and its order — the least ``k > 0`` with
``p(x) | x^k - 1`` — equals ``q**n - 1``.  Sequences with a primitive
characteristic polynomial have period ``q**n - 1`` and correspond to the
*maximal cycles* of Section 3.1, the seed of every construction in Chapter 3.

The search routines here are deterministic (lexicographic scan) so that the
same primitive polynomial — and hence the same maximal cycle and the same
Hamiltonian cycles — is produced on every run.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product

from ..engine.caches import register_cache
from ..exceptions import InvalidParameterError, NoPrimitivePolynomialError
from .field import GF, GaloisField
from .modular import prime_factorization
from .poly import Poly

__all__ = [
    "is_irreducible",
    "polynomial_order",
    "is_primitive",
    "find_irreducible",
    "find_primitive_polynomial",
    "primitive_polynomial_coefficients",
]


def is_irreducible(poly: Poly) -> bool:
    """Return True iff ``poly`` is irreducible over its coefficient field.

    Uses Rabin's irreducibility test: ``p(x)`` of degree ``n`` over ``GF(q)``
    is irreducible iff ``x^{q^n} = x (mod p)`` and
    ``gcd(x^{q^{n/r}} - x, p) = 1`` for every prime divisor ``r`` of ``n``.
    """
    field = poly.field
    n = poly.degree
    if n <= 0:
        return False
    if n == 1:
        return True
    q = field.order
    x = Poly.x(field)
    for r, _ in prime_factorization(n):
        exponent = q ** (n // r)
        composed = x.pow_mod(exponent, poly) - x
        if poly.gcd(composed).degree != 0:
            return False
    final = x.pow_mod(q**n, poly) - x
    return (final % poly).is_zero


def polynomial_order(poly: Poly) -> int:
    """Return the order of the irreducible polynomial ``poly``.

    The order is the least ``k > 0`` such that ``p(x)`` divides ``x^k - 1``;
    for an irreducible polynomial of degree ``n`` over ``GF(q)`` it always
    divides ``q**n - 1`` and equals the multiplicative order of any root.
    """
    field = poly.field
    if poly.degree < 1:
        raise InvalidParameterError("polynomial_order requires degree >= 1")
    if poly.coeffs[0] == field.zero:
        raise InvalidParameterError("polynomials divisible by x have no order")
    if not is_irreducible(poly):
        raise InvalidParameterError("polynomial_order implemented for irreducible polynomials")
    q = field.order
    group = q**poly.degree - 1
    x = Poly.x(field)
    order = group
    for prime, exponent in prime_factorization(group):
        for _ in range(exponent):
            candidate = order // prime
            if x.pow_mod(candidate, poly) == Poly.one(field):
                order = candidate
            else:
                break
    return order


def is_primitive(poly: Poly) -> bool:
    """Return True iff ``poly`` is primitive over its coefficient field."""
    field = poly.field
    n = poly.degree
    if n < 1 or not poly.is_monic:
        return False
    if poly.coeffs[0] == field.zero:
        return False
    if not is_irreducible(poly):
        return False
    return polynomial_order(poly) == field.order**n - 1


def find_irreducible(field: GaloisField, degree: int) -> Poly:
    """Return the lexicographically smallest monic irreducible polynomial of ``degree``."""
    if degree < 1:
        raise InvalidParameterError("degree must be >= 1")
    for tail in product(field.elements, repeat=degree):
        candidate = Poly(field, tuple(tail) + (field.one,))
        if is_irreducible(candidate):
            return candidate
    raise NoPrimitivePolynomialError(  # pragma: no cover - always exists
        f"no irreducible polynomial of degree {degree} over GF({field.order})"
    )


def find_primitive_polynomial(field: GaloisField, degree: int) -> Poly:
    """Return the lexicographically smallest monic primitive polynomial of ``degree``.

    Primitive polynomials of every degree exist over every finite field
    ([LP84] in the paper's bibliography), so the scan always terminates; for
    the small fields used by the paper's constructions it terminates almost
    immediately.
    """
    if degree < 1:
        raise InvalidParameterError("degree must be >= 1")
    for tail in product(field.elements, repeat=degree):
        if tail[0] == field.zero:
            continue  # constant term zero -> divisible by x -> not primitive
        candidate = Poly(field, tuple(tail) + (field.one,))
        if is_primitive(candidate):
            return candidate
    raise NoPrimitivePolynomialError(
        f"no primitive polynomial of degree {degree} over GF({field.order})"
    )


@lru_cache(maxsize=128)
def primitive_polynomial_coefficients(q: int, degree: int) -> tuple[int, ...]:
    """Return recurrence coefficients ``(a_0, ..., a_{n-1})`` of a primitive polynomial.

    Convenience wrapper combining :func:`GF`, :func:`find_primitive_polynomial`
    and :meth:`~repro.gf.poly.Poly.recurrence_coefficients`, cached because the
    disjoint-HC constructions request the same small fields repeatedly.
    """
    field = GF(q)
    poly = find_primitive_polynomial(field, degree)
    return poly.recurrence_coefficients()


# Audit registration (REP001): see repro.engine.caches.
register_cache("gf.primitive_polynomial_coefficients", primitive_polynomial_coefficients)
