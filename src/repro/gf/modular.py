"""Elementary number theory over ``Z`` and ``Z_p``.

Chapter 3 of the paper leans on a handful of classical number-theoretic
facts: prime factorisation (to split ``d`` into coprime prime-power parts for
the Rees composition), Euler's totient ``phi`` and the Möbius function ``mu``
(Chapter 4 counting), primitive roots of ``Z_p`` and the quadratic character
of 2 (Lemma 3.5 and the three disjoint-HC strategies).  Everything here is
pure-integer arithmetic with no external dependencies; the sizes involved in
the paper (``d <= 40``, ``d^n`` up to a few thousand) are tiny, but the
implementations are written to stay exact and correct well beyond that range.
"""

from __future__ import annotations

from functools import lru_cache

from ..engine.caches import register_cache
from ..exceptions import InvalidParameterError, NotPrimePowerError

__all__ = [
    "is_prime",
    "prime_factorization",
    "prime_power_decomposition",
    "is_prime_power",
    "as_prime_power",
    "divisors",
    "euler_phi",
    "mobius",
    "multiplicative_order",
    "primitive_root",
    "primitive_roots",
    "is_primitive_root",
    "is_quadratic_residue",
    "legendre_symbol",
    "two_as_odd_power_sum",
    "two_as_odd_power",
    "lemma_3_5_conditions",
]


def is_prime(n: int) -> bool:
    """Return True iff ``n`` is a prime number (deterministic for all int sizes used here).

    Uses trial division up to ``sqrt(n)``; the library only ever calls this on
    small integers (alphabet sizes and their factors), for which trial
    division is both exact and fast.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    i = 3
    while i * i <= n:
        if n % i == 0:
            return False
        i += 2
    return True


@lru_cache(maxsize=4096)
def prime_factorization(n: int) -> tuple[tuple[int, int], ...]:
    """Return the prime factorisation of ``n`` as a tuple of ``(prime, exponent)`` pairs.

    >>> prime_factorization(360)
    ((2, 3), (3, 2), (5, 1))
    """
    if n < 1:
        raise InvalidParameterError(f"cannot factor non-positive integer {n}")
    factors: list[tuple[int, int]] = []
    remaining = n
    p = 2
    while p * p <= remaining:
        if remaining % p == 0:
            e = 0
            while remaining % p == 0:
                remaining //= p
                e += 1
            factors.append((p, e))
        p += 1 if p == 2 else 2
    if remaining > 1:
        factors.append((remaining, 1))
    return tuple(factors)


def prime_power_decomposition(n: int) -> tuple[int, ...]:
    """Return the pairwise-coprime prime-power parts ``p_i**e_i`` of ``n``.

    >>> prime_power_decomposition(360)
    (8, 9, 5)
    """
    return tuple(p**e for p, e in prime_factorization(n))


def is_prime_power(n: int) -> bool:
    """Return True iff ``n = p**e`` for a prime ``p`` and ``e >= 1``."""
    return n >= 2 and len(prime_factorization(n)) == 1


def as_prime_power(n: int) -> tuple[int, int]:
    """Return ``(p, e)`` such that ``n = p**e``, or raise :class:`NotPrimePowerError`."""
    factors = prime_factorization(n) if n >= 2 else ()
    if len(factors) != 1:
        raise NotPrimePowerError(f"{n} is not a prime power")
    return factors[0]


def divisors(n: int) -> list[int]:
    """Return all positive divisors of ``n`` in increasing order."""
    if n < 1:
        raise InvalidParameterError(f"divisors undefined for {n}")
    small, large = [], []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return small + large[::-1]


def euler_phi(n: int) -> int:
    """Euler's totient ``phi(n)``: the number of ``1 <= k <= n`` coprime to ``n``."""
    if n < 1:
        raise InvalidParameterError(f"euler_phi undefined for {n}")
    result = n
    for p, _ in prime_factorization(n):
        result -= result // p
    return result


def mobius(n: int) -> int:
    """The Möbius function ``mu(n)`` used by the Chapter 4 inversion formulae."""
    if n < 1:
        raise InvalidParameterError(f"mobius undefined for {n}")
    if n == 1:
        return 1
    factors = prime_factorization(n)
    if any(e > 1 for _, e in factors):
        return 0
    return -1 if len(factors) % 2 else 1


def multiplicative_order(a: int, n: int) -> int:
    """Return the multiplicative order of ``a`` modulo ``n``.

    Raises
    ------
    InvalidParameterError
        If ``gcd(a, n) != 1`` (the order is undefined).
    """
    from math import gcd

    a %= n
    if gcd(a, n) != 1:
        raise InvalidParameterError(f"{a} is not invertible modulo {n}")
    group_order = euler_phi(n)
    order = group_order
    for p, e in prime_factorization(group_order):
        for _ in range(e):
            if pow(a, order // p, n) == 1:
                order //= p
            else:
                break
    return order


def is_primitive_root(a: int, p: int) -> bool:
    """Return True iff ``a`` generates the multiplicative group of ``Z_p`` (``p`` prime)."""
    if not is_prime(p):
        raise InvalidParameterError(f"is_primitive_root requires a prime modulus, got {p}")
    if a % p == 0:
        return False
    return multiplicative_order(a, p) == p - 1


@lru_cache(maxsize=512)
def primitive_root(p: int) -> int:
    """Return the smallest primitive root of the prime ``p``."""
    if not is_prime(p):
        raise InvalidParameterError(f"primitive_root requires a prime modulus, got {p}")
    if p == 2:
        return 1
    for candidate in range(2, p):
        if is_primitive_root(candidate, p):
            return candidate
    raise InvalidParameterError(f"no primitive root found for {p}")  # pragma: no cover


def primitive_roots(p: int) -> list[int]:
    """Return all primitive roots of the prime ``p`` in increasing order."""
    if not is_prime(p):
        raise InvalidParameterError(f"primitive_roots requires a prime modulus, got {p}")
    if p == 2:
        return [1]
    return [a for a in range(2, p) if is_primitive_root(a, p)]


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol ``(a/p)`` for an odd prime ``p``: 1, -1 or 0."""
    if not is_prime(p) or p == 2:
        raise InvalidParameterError(f"legendre_symbol requires an odd prime, got {p}")
    a %= p
    if a == 0:
        return 0
    value = pow(a, (p - 1) // 2, p)
    return 1 if value == 1 else -1


def is_quadratic_residue(a: int, p: int) -> bool:
    """Return True iff ``a`` is a nonzero quadratic residue modulo the odd prime ``p``."""
    return legendre_symbol(a, p) == 1


def two_as_odd_power(p: int, root: int | None = None) -> int | None:
    """Find an odd ``A`` with ``root**A = 2 (mod p)`` — condition (a) of Lemma 3.5.

    Returns the odd exponent ``A`` if one exists (equivalently: 2 is a
    quadratic nonresidue of ``p``, i.e. ``p = ±3 (mod 8)``), else ``None``.
    The returned exponent is with respect to ``root``; if ``root`` is omitted
    the smallest primitive root of ``p`` is used.
    """
    if p == 2 or not is_prime(p):
        raise InvalidParameterError(f"two_as_odd_power requires an odd prime, got {p}")
    lam = primitive_root(p) if root is None else root
    if not is_primitive_root(lam, p):
        raise InvalidParameterError(f"{lam} is not a primitive root of {p}")
    a_exp = _discrete_log(2, lam, p)
    return a_exp if a_exp % 2 == 1 else None


def two_as_odd_power_sum(p: int, root: int | None = None) -> tuple[int, int] | None:
    """Find odd ``A, B`` with ``root**A + root**B = 2 (mod p)`` — condition (b) of Lemma 3.5.

    Returns a pair ``(A, B)`` of odd exponents if one exists, else ``None``.
    Strategy 2 of Section 3.2.1 needs such a pair; the paper notes the
    condition holds whenever ``p = ±1 (mod 8)`` but may also hold for other
    primes (e.g. ``p = 13`` satisfies both conditions).
    """
    if p == 2 or not is_prime(p):
        raise InvalidParameterError(f"two_as_odd_power_sum requires an odd prime, got {p}")
    lam = primitive_root(p) if root is None else root
    if not is_primitive_root(lam, p):
        raise InvalidParameterError(f"{lam} is not a primitive root of {p}")
    odd_powers = sorted({pow(lam, k, p) for k in range(1, p - 1, 2)})
    exponent_of = {pow(lam, k, p): k for k in range(1, p - 1, 2)}
    for x in odd_powers:
        y = (2 - x) % p
        if y in exponent_of:
            return exponent_of[x], exponent_of[y]
    return None


def lemma_3_5_conditions(p: int) -> dict[str, bool]:
    """Evaluate conditions (a) and (b) of Lemma 3.5 for the odd prime ``p``.

    Condition (a): ``2 = lambda**A`` with ``A`` odd (2 is a quadratic
    nonresidue).  Condition (b): ``2 = lambda**A + lambda**B`` with both
    exponents odd.  Lemma 3.5 asserts at least one of them always holds.
    """
    return {
        "a": two_as_odd_power(p) is not None,
        "b": two_as_odd_power_sum(p) is not None,
    }


def _discrete_log(target: int, base: int, p: int) -> int:
    """Return ``k`` with ``base**k = target (mod p)`` by baby-step giant-step."""
    from math import gcd, isqrt

    target %= p
    base %= p
    if gcd(base, p) != 1:
        raise InvalidParameterError(f"{base} is not invertible modulo {p}")
    m = isqrt(p) + 1
    baby: dict[int, int] = {}
    value = 1
    for j in range(m):
        baby.setdefault(value, j)
        value = value * base % p
    factor = pow(base, (p - 2) * m, p)  # base^{-m} by Fermat
    gamma = target
    for i in range(m + 1):
        if gamma in baby:
            return i * m + baby[gamma]
        gamma = gamma * factor % p
    raise InvalidParameterError(f"no discrete log of {target} base {base} mod {p}")


# Audit registration (REP001): see repro.engine.caches.
register_cache("gf.prime_factorization", prime_factorization)
register_cache("gf.primitive_root", primitive_root)
