"""Linear and affine recurrences over ``GF(q)``: shift-register sequences.

Section 3.1 of the paper constructs cycles in ``B(d, n)`` from sequences
satisfying the linear recurrence (3.1)

    ``c_{n+i} = a_{n-1} c_{n-1+i} + ... + a_0 c_i``

over ``GF(d)``.  When the characteristic polynomial (3.2) is *primitive* the
sequence has period ``d**n - 1`` and yields a **maximal cycle**: a cycle that
visits every node of ``B(d, n)`` except ``0^n``.  Lemma 3.2 shows the shifted
sequence ``s + C`` obeys the *affine* recurrence obtained by adding the
constant ``s·(1 - ω)`` with ``ω = a_0 + ... + a_{n-1}``; this module therefore
implements the general affine recurrence and exposes maximal-cycle and
shifted-cycle constructors on top of it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from .field import GF, GaloisField
from .poly import Poly
from .primitive import find_primitive_polynomial, is_primitive

__all__ = [
    "AffineRecurrence",
    "LinearRecurrence",
    "maximal_cycle",
    "shifted_cycle",
    "sequence_period",
    "default_maximal_cycle_recurrence",
]


@dataclass(frozen=True)
class AffineRecurrence:
    """The affine recurrence ``c_{n+i} = a_{n-1} c_{n-1+i} + ... + a_0 c_i + constant``.

    Attributes
    ----------
    field:
        The coefficient field ``GF(q)``.
    coeffs:
        The recurrence coefficients ``(a_0, a_1, ..., a_{n-1})``.
    constant:
        The affine constant (0 for the plain linear recurrence of the paper's
        equation (3.1); ``s·(1-ω)`` for the shifted sequence of Lemma 3.2).
    """

    field: GaloisField
    coeffs: tuple[int, ...]
    constant: int = 0

    def __post_init__(self) -> None:
        if not self.coeffs:
            raise InvalidParameterError("a recurrence needs at least one coefficient")
        for c in (*self.coeffs, self.constant):
            if not 0 <= c < self.field.order:
                raise InvalidParameterError(
                    f"{c} is not an element of GF({self.field.order})"
                )
        object.__setattr__(self, "coeffs", tuple(int(c) for c in self.coeffs))

    # -- structure ----------------------------------------------------------
    @property
    def order(self) -> int:
        """The recurrence order ``n`` (number of state digits)."""
        return len(self.coeffs)

    @property
    def coefficient_sum(self) -> int:
        """The field element ``ω = a_0 + ... + a_{n-1}`` of Lemma 3.2."""
        return self.field.sum(self.coeffs)

    def characteristic_polynomial(self) -> Poly:
        """Return the characteristic polynomial ``x^n - a_{n-1}x^{n-1} - ... - a_0``."""
        return Poly.from_characteristic(self.field, self.coeffs)

    def shifted(self, s: int) -> "AffineRecurrence":
        """Return the recurrence satisfied by ``s + C`` (Lemma 3.2).

        If ``C`` satisfies this recurrence then the termwise shift ``s + C``
        satisfies the same linear part with the constant increased by
        ``s·(1 - ω)``.
        """
        f = self.field
        extra = f.mul(s, f.sub(f.one, self.coefficient_sum))
        return AffineRecurrence(f, self.coeffs, f.add(self.constant, extra))

    # -- evaluation -----------------------------------------------------------
    def next_digit(self, window: Sequence[int]) -> int:
        """Return the digit following the state ``window`` (length ``n``, oldest first)."""
        if len(window) != self.order:
            raise InvalidParameterError(
                f"window must have length {self.order}, got {len(window)}"
            )
        f = self.field
        return f.add(f.dot(self.coeffs, window), self.constant)

    def sequence(self, initial: Sequence[int], length: int) -> list[int]:
        """Return the first ``length`` terms of the sequence with initial state ``initial``."""
        if length < 0:
            raise InvalidParameterError("length must be >= 0")
        state = [self.field._check(int(c)) for c in initial]
        if len(state) != self.order:
            raise InvalidParameterError(
                f"initial state must have length {self.order}, got {len(state)}"
            )
        out: list[int] = []
        for _ in range(length):
            out.append(state[0])
            state.append(self.next_digit(state))
            state.pop(0)
        return out

    def period(self, initial: Sequence[int], limit: int | None = None) -> int:
        """Return the least ``k > 0`` with ``c_i = c_{i+k}`` for all ``i``.

        The period of a recurrence is the period of its state cycle, so it is
        found by iterating states until the initial state reappears.  ``limit``
        bounds the search (default ``q**n``, an absolute upper bound).
        """
        q = self.field.order
        bound = q**self.order if limit is None else limit
        start = tuple(int(c) for c in initial)
        if len(start) != self.order:
            raise InvalidParameterError(
                f"initial state must have length {self.order}, got {len(start)}"
            )
        state = list(start)
        for step in range(1, bound + 1):
            state.append(self.next_digit(state))
            state.pop(0)
            if tuple(state) == start:
                return step
        raise InvalidParameterError(
            f"period exceeds search limit {bound}; the recurrence may not be purely periodic"
        )


class LinearRecurrence(AffineRecurrence):
    """The plain linear recurrence of the paper's equation (3.1) (zero constant)."""

    def __init__(self, field: GaloisField, coeffs: Sequence[int]) -> None:
        super().__init__(field, tuple(coeffs), field.zero)


def default_maximal_cycle_recurrence(d: int, n: int) -> LinearRecurrence:
    """Return the canonical maximal-cycle recurrence for ``B(d, n)``.

    Deterministically picks the lexicographically smallest primitive
    polynomial of degree ``n`` over ``GF(d)`` so that every component of the
    library (disjoint HCs, edge-fault embedding, benchmarks) agrees on the
    same maximal cycle.
    """
    field = GF(d)
    poly = find_primitive_polynomial(field, n)
    return LinearRecurrence(field, poly.recurrence_coefficients())


def maximal_cycle(
    d: int,
    n: int,
    recurrence: LinearRecurrence | None = None,
    initial: Sequence[int] | None = None,
) -> list[int]:
    """Return a maximal cycle of ``B(d, n)`` as a circular digit sequence.

    The result is the list ``[c_0, c_1, ..., c_{d^n - 2}]`` of length
    ``d**n - 1``; consecutive windows of ``n`` digits (wrapping around) are
    exactly the nodes of ``B(d, n)`` other than ``0^n``, each visited once.

    Parameters
    ----------
    d:
        Alphabet size; must be a prime power.
    n:
        Word length / recurrence order.
    recurrence:
        Optional recurrence to use; must have a primitive characteristic
        polynomial.  Defaults to :func:`default_maximal_cycle_recurrence`.
    initial:
        Optional nonzero initial state; defaults to ``(0, ..., 0, 1)``.
    """
    if recurrence is None:
        recurrence = default_maximal_cycle_recurrence(d, n)
    else:
        if recurrence.field.order != d or recurrence.order != n:
            raise InvalidParameterError(
                "recurrence does not match the requested B(d, n) parameters"
            )
        if recurrence.constant != recurrence.field.zero:
            raise InvalidParameterError("maximal cycles require a linear (not affine) recurrence")
        if not is_primitive(recurrence.characteristic_polynomial()):
            raise InvalidParameterError(
                "maximal cycles require a primitive characteristic polynomial"
            )
    if initial is None:
        initial = (0,) * (n - 1) + (1,)
    if all(c == 0 for c in initial):
        raise InvalidParameterError("maximal cycles require a nonzero initial state")
    return recurrence.sequence(initial, d**n - 1)


def shifted_cycle(cycle: Sequence[int], s: int, field: GaloisField) -> list[int]:
    """Return the termwise field shift ``s + C`` of a circular sequence.

    By Lemma 3.1 the shift of a cycle is again a cycle; by Lemma 3.3 the
    shifts of a maximal cycle by distinct field elements are pairwise
    edge-disjoint.
    """
    field._check(s)
    return [field.add(s, c) for c in cycle]


def sequence_period(seq: Sequence[int]) -> int:
    """Return the period of a finite circular sequence (least rotation fixing it)."""
    n = len(seq)
    if n == 0:
        raise InvalidParameterError("empty sequences have no period")
    seq = tuple(seq)
    for t in range(1, n + 1):
        if n % t == 0 and seq[t:] + seq[:t] == seq:
            return t
    return n  # pragma: no cover
