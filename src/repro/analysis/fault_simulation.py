"""Random-fault simulations reproducing Tables 2.1 and 2.2 (Section 2.5.2).

The paper's procedure: fix a source node ``R`` (``0...01``); for each fault
count ``f`` draw ``f`` faulty processors uniformly at random, remove every
necklace containing one, and record (a) the size of the component containing
``R`` — the length of the fault-free cycle the FFC algorithm would return —
and (b) the eccentricity of ``R`` within that component — the number of
broadcast steps of FFC Step 1.1.  If ``R`` itself lands in a faulty necklace
a neighbouring node is used instead.  Averages, maxima and minima over many
trials give one table row per ``f``, alongside the analytic reference
``d**n - n*f``.

The heavy lifting is done by the shared
:class:`~repro.engine.executor.KernelExecutor`, fronted here by
:class:`FaultSweepRunner` (the row/table conventions of the reproduction).
Both are **topology-generic**: they drive any backend of the
:mod:`repro.topology` registry (``debruijn`` — the default and the
compatibility anchor — ``kautz``, ``hypercube``, ``shuffle_exchange``,
``undirected_debruijn``) through the protocol's precomputed gather tables,
built once and reused across every trial of every row:

* the removed-node mask is the backend's vectorized fault-unit closure
  (one ``isin`` over the necklace-representative table for the De Bruijn
  family, a plain scatter for single-node-unit topologies) instead of a
  Python walk per unit;
* ONE directed BFS from the measurement root yields both the size of the
  root's fault-free broadcast region and the root eccentricity.  For the
  De Bruijn graph removing whole necklaces keeps the digraph *balanced*
  (Section 2.5), so that region IS the component containing ``R`` — the
  paper's measurement, exactly; for undirected backends the same holds
  trivially;
* the per-trial statistics are accumulated into numpy arrays.

On top of the per-trial machinery sits the bit-parallel batch path
(:meth:`FaultSweepRunner.run_trials_batch`): up to 64 trials of one table
row are packed into ``uint64`` lanes — one bit per trial per node — and a
single multi-trial BFS (:mod:`repro.graphs.msbfs`) measures the whole batch
with ``d`` gathers per level instead of one full BFS per trial.  Fault
*sampling* stays strictly per-trial (each trial consumes only its own
seeded stream, via the vectorized :func:`repro.network.faults.sample_node_fault_codes`),
and trials whose root lands in a faulty necklace are peeled onto the scalar
fallback, so batched rows are bit-for-bit identical to scalar rows — the
batching only changes how fast the measurements happen (~10x single-process
on ``B(2, 12)``, pinned by ``benchmarks/test_msbfs.py``).

This is what lets ``simulate_fault_table`` scale from the paper's
``d**n ≈ 1024`` graphs to ``B(4, 10)`` with ~10^6 nodes.  The original
per-trial tuple implementation is preserved in
:mod:`repro.analysis.reference` for cross-validation and benchmarking.

Orchestration lives one layer up: ``simulate_fault_table`` routes through
:class:`repro.engine.sweep.ParallelSweepEngine`, which derives one random
stream per trial from ``numpy.random.SeedSequence(seed)`` — making rows
bit-for-bit identical for any worker count and *any* batch size
(``batch=1`` is the scalar escape hatch), and resumable from JSON
checkpoints.  ``run_row``/``simulate_fault_row`` with an explicit ``rng``
keep the older convention of threading one generator sequentially through
the trials; the frozen reference implementation shares that convention, so
the equivalence benchmarks keep comparing like with like.

The paper does not state its trial count; the default here is 200 trials per
row, configurable, with a seeded generator so every run is reproducible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..engine.cache import LRUCache
from ..engine.caches import register_cache
from ..engine.executor import KernelExecutor, cached_executor
from ..exceptions import InvalidParameterError
from ..graphs.msbfs import WORD_WIDTH
from ..topology import DEFAULT_TOPOLOGY, Topology
from ..words.alphabet import Word

__all__ = [
    "FaultSimulationRow",
    "FaultSweepRunner",
    "simulate_fault_row",
    "simulate_fault_table",
    "PAPER_FAULT_COUNTS",
]

#: The fault counts tabulated by the paper: 0..10 then 20, 30, 40, 50.
PAPER_FAULT_COUNTS: tuple[int, ...] = tuple(range(11)) + (20, 30, 40, 50)


@dataclass(frozen=True)
class FaultSimulationRow:
    """One row of Table 2.1/2.2: statistics over random fault sets for a fixed ``f``."""

    f: int
    trials: int
    avg_size: float
    max_size: int
    min_size: int
    reference_size: int  # d**n - n*f, the paper's analytic column
    avg_ecc: float
    max_ecc: int
    min_ecc: int

    def as_tuple(self) -> tuple:
        return (
            self.f,
            round(self.avg_size, 2),
            self.max_size,
            self.min_size,
            self.reference_size,
            round(self.avg_ecc, 2),
            self.max_ecc,
            self.min_ecc,
        )

    @classmethod
    def from_samples(
        cls,
        d: int,
        n: int,
        f: int,
        sizes: np.ndarray,
        eccs: np.ndarray,
        reference_size: int | None = None,
    ) -> "FaultSimulationRow":
        """Build a row from per-trial samples (the one place the statistics live).

        Both the legacy sequential :meth:`FaultSweepRunner.run_row` and the
        engine's :class:`~repro.engine.sweep.ParallelSweepEngine` aggregate
        through here, so their row statistics can never diverge.
        ``reference_size`` is the topology's analytic column
        (:meth:`repro.topology.base.Topology.reference_size`); omitted, it
        defaults to the paper's De Bruijn ``d**n - n*f``.
        """
        return cls(
            f=f,
            trials=len(sizes),
            avg_size=float(sizes.mean()),
            max_size=int(sizes.max()),
            min_size=int(sizes.min()),
            reference_size=d**n - n * f if reference_size is None else int(reference_size),
            avg_ecc=float(eccs.mean()),
            max_ecc=int(eccs.max()),
            min_ecc=int(eccs.min()),
        )


def _default_root(n: int) -> Word:
    """The paper's De Bruijn measurement root ``R = 0...01``.

    Kept as the frozen-reference convention (:mod:`repro.analysis.reference`);
    topology backends expose their own analog via ``default_root_code``.
    """
    return (0,) * (n - 1) + (1,)


class FaultSweepRunner:
    """Batched fault-sweep API for one topology instance and one root.

    A thin client of the shared :class:`~repro.engine.executor.KernelExecutor`
    (which owns the tables, the kernel scratch and the batch-vs-scalar
    dispatch): the runner contributes only the row/table conventions of the
    Tables 2.1/2.2 reproduction.  The default backend is the paper's
    ``B(d, n)``; any key of the :mod:`repro.topology` registry (or a
    pre-built :class:`~repro.topology.base.Topology`) selects another
    network.  Passing ``executor=`` shares an existing executor (the cached
    process-wide one, usually) instead of constructing a private one.
    """

    def __init__(
        self,
        d: int | None = None,
        n: int | None = None,
        root: Sequence[int] | None = None,
        topology: str | Topology = DEFAULT_TOPOLOGY,
        executor: KernelExecutor | None = None,
    ) -> None:
        if executor is None:
            if d is None or n is None:
                raise InvalidParameterError(
                    "FaultSweepRunner requires d and n (or a pre-built executor=)"
                )
            executor = KernelExecutor(d, n, root=root, topology=topology)
        self.executor = executor
        self.topology = executor.topology
        self.topology_key = executor.topology_key
        self.d, self.n = executor.d, executor.n
        #: the De Bruijn codec where the backend has one (B/UB/shuffle-exchange);
        #: ``None`` for code-native backends like the hypercube
        self.codec = executor.codec
        self.root_code = executor.root_code
        self.root = executor.root

    # -- measurement (delegated to the shared executor) ------------------------
    def run_trial(self, f: int, rng: np.random.Generator) -> tuple[int, int]:
        """Run one random trial: returns ``(region_size, root_eccentricity)``."""
        return self.executor.run_trial(f, rng)

    def measure(self, faults: Iterable[Sequence[int]]) -> tuple[int, int]:
        """Measure region size and eccentricity for an explicit fault set."""
        return self.executor.measure(faults)

    def measure_mask(self, removed: np.ndarray) -> tuple[int, int]:
        """Measure for an explicit removed-node mask (the int-coded hot path)."""
        return self.executor.measure_mask(removed)

    def measure_mask_with_root(self, removed: np.ndarray) -> tuple[int, int, int | None]:
        """Like :meth:`measure_mask`, also returning the measured root's code."""
        return self.executor.measure_mask_with_root(removed)

    def run_trials_batch(
        self, f: int, seed_seqs: Sequence[np.random.SeedSequence]
    ) -> list[tuple[int, int]]:
        """Run up to 64 trials in one bit-parallel sweep; results in trial order.

        See :meth:`repro.engine.executor.KernelExecutor.run_trials_batch`:
        every returned pair is bit-for-bit what :meth:`run_trial` yields for
        the same stream.
        """
        return self.executor.run_trials_batch(f, seed_seqs)

    # -- rows and tables ------------------------------------------------------
    def run_row(
        self, f: int, trials: int = 200, rng: np.random.Generator | None = None
    ) -> FaultSimulationRow:
        """Simulate one table row: ``trials`` random fault sets of size ``f``."""
        if trials < 1:
            raise InvalidParameterError("at least one trial is required")
        if rng is None:
            rng = np.random.default_rng(0)
        sizes = np.empty(trials, dtype=np.int64)
        eccs = np.empty(trials, dtype=np.int64)
        for t in range(trials):
            sizes[t], eccs[t] = self.run_trial(f, rng)
        return FaultSimulationRow.from_samples(
            self.d, self.n, f, sizes, eccs,
            reference_size=self.topology.reference_size(f),
        )

    def run_table(
        self,
        fault_counts: Iterable[int] = PAPER_FAULT_COUNTS,
        trials: int = 200,
        seed: int = 0,
        batch: int = WORD_WIDTH,
    ) -> list[FaultSimulationRow]:
        """Simulate a full table through the sweep engine (inline, this process).

        Delegates to :class:`repro.engine.sweep.ParallelSweepEngine` so that
        every table — serial or parallel, library call or CLI — runs through
        one orchestration path with the same per-trial seed streams.
        ``batch`` sets how many trials each bit-parallel kernel call packs
        (``1`` forces the scalar per-trial path; the rows are identical).
        """
        from ..engine.sweep import ParallelSweepEngine

        # the engine adopts this runner's backend (registered or not), so no
        # topology key is passed: measurement and aggregation cannot diverge
        engine = ParallelSweepEngine(self.d, self.n, root=self.root, runner=self, batch=batch)
        return engine.run(fault_counts=fault_counts, trials=trials, seed=seed)


#: Bounded, observable runner cache: one entry per ``(topology, d, n, root)``
#: served.  Audited (stats/clear) through :mod:`repro.engine.caches`.  The
#: runners themselves are featherweight — each wraps the process-wide shared
#: :func:`~repro.engine.executor.cached_executor`, so backend tables and
#: kernel scratch exist once per process however many layers ask.
_RUNNER_CACHE = LRUCache(maxsize=8, name="analysis.fault_runners")
register_cache("analysis.fault_runners", _RUNNER_CACHE)


def _cached_runner(
    d: int, n: int, root: Word | None, topology: str = DEFAULT_TOPOLOGY
) -> FaultSweepRunner:
    key = (str(topology), int(d), int(n), root)
    return _RUNNER_CACHE.get_or_create(
        key,
        lambda: FaultSweepRunner(executor=cached_executor(d, n, root, topology)),
    )


def simulate_fault_row(
    d: int,
    n: int,
    f: int,
    trials: int = 200,
    rng: np.random.Generator | None = None,
    root: Sequence[int] | None = None,
    topology: str = DEFAULT_TOPOLOGY,
) -> FaultSimulationRow:
    """Simulate one table row: ``trials`` random fault sets of size ``f``.

    Follows the paper's measurement protocol exactly, including the fallback
    to a neighbouring root when ``R`` falls inside a faulty unit.  Thin
    wrapper over a cached :class:`FaultSweepRunner`; ``topology`` selects
    any registered backend (default: the paper's De Bruijn graph).
    """
    root_key = None if root is None else tuple(int(x) for x in root)
    return _cached_runner(d, n, root_key, topology).run_row(f, trials=trials, rng=rng)


def simulate_fault_table(
    d: int,
    n: int,
    fault_counts: Iterable[int] = PAPER_FAULT_COUNTS,
    trials: int = 200,
    seed: int = 0,
    root: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_path: str | None = None,
    progress: Callable | None = None,
    batch: int = WORD_WIDTH,
    topology: str = DEFAULT_TOPOLOGY,
) -> list[FaultSimulationRow]:
    """Simulate a full table (Table 2.1 with ``d=2, n=10``; Table 2.2 with ``d=4, n=5``).

    Routed through :class:`repro.engine.sweep.ParallelSweepEngine`: the
    random stream of trial ``t`` of row ``r`` is derived from
    ``SeedSequence(seed)`` by spawn index, so the rows are bit-for-bit
    identical whether run inline (``workers=None``, the default), in a
    1-worker pool or across ``workers > 1`` processes.  ``checkpoint_path``
    enables JSON checkpoint/resume for long sweeps and ``progress`` receives
    a :class:`~repro.engine.sweep.SweepProgress` per completed batch.
    ``batch`` sets how many trials each bit-parallel kernel call measures at
    once (default: the full 64-trial word width; ``batch=1`` is the scalar
    escape hatch — every setting produces identical rows).  ``topology``
    selects any registered backend (``kautz``, ``hypercube``,
    ``shuffle_exchange``, ...); the default stays the paper's De Bruijn
    graph, whose rows are bit-for-bit those of the pre-registry engine.
    """
    from ..engine.sweep import ParallelSweepEngine

    root_key = None if root is None else tuple(int(x) for x in root)
    engine = ParallelSweepEngine(
        d,
        n,
        root=root_key,
        workers=workers,
        checkpoint_path=checkpoint_path,
        progress=progress,
        batch=batch,
        topology=topology,
    )
    return engine.run(fault_counts=fault_counts, trials=trials, seed=seed)
