"""Random-fault simulations reproducing Tables 2.1 and 2.2 (Section 2.5.2).

The paper's procedure: fix a source node ``R`` (``0...01``); for each fault
count ``f`` draw ``f`` faulty processors uniformly at random, remove every
necklace containing one, and record (a) the size of the component containing
``R`` — the length of the fault-free cycle the FFC algorithm would return —
and (b) the eccentricity of ``R`` within that component — the number of
broadcast steps of FFC Step 1.1.  If ``R`` itself lands in a faulty necklace
a neighbouring node is used instead.  Averages, maxima and minima over many
trials give one table row per ``f``, alongside the analytic reference
``d**n - n*f``.

The paper does not state its trial count; the default here is 200 trials per
row, configurable, with a seeded generator so every run is reproducible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.components import component_stats_from_root, residual_after_node_faults
from ..network.faults import sample_node_faults
from ..words.alphabet import Word, word_to_int

__all__ = ["FaultSimulationRow", "simulate_fault_row", "simulate_fault_table", "PAPER_FAULT_COUNTS"]

#: The fault counts tabulated by the paper: 0..10 then 20, 30, 40, 50.
PAPER_FAULT_COUNTS: tuple[int, ...] = tuple(range(11)) + (20, 30, 40, 50)


@dataclass(frozen=True)
class FaultSimulationRow:
    """One row of Table 2.1/2.2: statistics over random fault sets for a fixed ``f``."""

    f: int
    trials: int
    avg_size: float
    max_size: int
    min_size: int
    reference_size: int  # d**n - n*f, the paper's analytic column
    avg_ecc: float
    max_ecc: int
    min_ecc: int

    def as_tuple(self) -> tuple:
        return (
            self.f,
            round(self.avg_size, 2),
            self.max_size,
            self.min_size,
            self.reference_size,
            round(self.avg_ecc, 2),
            self.max_ecc,
            self.min_ecc,
        )


def _default_root(n: int) -> Word:
    """The paper's measurement root ``R = 0...01``."""
    return (0,) * (n - 1) + (1,)


def simulate_fault_row(
    d: int,
    n: int,
    f: int,
    trials: int = 200,
    rng: np.random.Generator | None = None,
    root: Sequence[int] | None = None,
) -> FaultSimulationRow:
    """Simulate one table row: ``trials`` random fault sets of size ``f``.

    Follows the paper's measurement protocol exactly, including the fallback
    to a neighbouring root when ``R`` falls inside a faulty necklace.
    """
    if trials < 1:
        raise InvalidParameterError("at least one trial is required")
    if rng is None:
        rng = np.random.default_rng(0)
    root_word = _default_root(n) if root is None else tuple(int(x) for x in root)
    sizes: list[int] = []
    eccs: list[int] = []
    for _ in range(trials):
        faults = sample_node_faults(d, n, f, rng)
        residual = residual_after_node_faults(d, n, faults, remove_whole_necklaces=True)
        measure_root = _live_root(residual, root_word, d, n)
        if measure_root is None:
            # every candidate root died; record the empty component
            sizes.append(0)
            eccs.append(0)
            continue
        stats = component_stats_from_root(residual, measure_root)
        sizes.append(stats.component_size)
        eccs.append(stats.root_eccentricity)
    return FaultSimulationRow(
        f=f,
        trials=trials,
        avg_size=float(np.mean(sizes)),
        max_size=int(np.max(sizes)),
        min_size=int(np.min(sizes)),
        reference_size=d**n - n * f,
        avg_ecc=float(np.mean(eccs)),
        max_ecc=int(np.max(eccs)),
        min_ecc=int(np.min(eccs)),
    )


def simulate_fault_table(
    d: int,
    n: int,
    fault_counts: Iterable[int] = PAPER_FAULT_COUNTS,
    trials: int = 200,
    seed: int = 0,
    root: Sequence[int] | None = None,
) -> list[FaultSimulationRow]:
    """Simulate a full table (Table 2.1 with ``d=2, n=10``; Table 2.2 with ``d=4, n=5``)."""
    rng = np.random.default_rng(seed)
    return [
        simulate_fault_row(d, n, f, trials=trials, rng=rng, root=root) for f in fault_counts
    ]


def _live_root(residual, root_word: Word, d: int, n: int) -> int | None:
    """Return the int encoding of the measurement root, or of a nearby fallback.

    The paper: "If R was in a faulty necklace, a neighboring node was used
    instead."  The fallback scans R's De Bruijn successors and predecessors,
    then the remaining nodes in numeric order.
    """
    root_int = word_to_int(root_word, d)
    if residual.is_alive(root_int):
        return root_int
    # Breadth-first over the *fault-free* graph from R: the closest surviving
    # nodes play the role of "a neighboring node" in the paper's protocol.
    # Among the equally close survivors prefer one in the largest component
    # (a neighbour that happens to be isolated — e.g. 0^n when R's necklace
    # dies — would not be a sensible stand-in for R).
    from ..graphs.components import component_of

    visited = {root_word}
    frontier = [root_word]
    while frontier:
        nxt: list[Word] = []
        alive_here: list[int] = []
        for node in frontier:
            neighbours = [node[1:] + (a,) for a in range(d)] + [(a,) + node[:-1] for a in range(d)]
            for candidate in sorted(neighbours):
                if candidate in visited:
                    continue
                visited.add(candidate)
                value = word_to_int(candidate, d)
                if residual.is_alive(value):
                    alive_here.append(value)
                else:
                    nxt.append(candidate)
        if alive_here:
            return max(alive_here, key=lambda v: len(component_of(residual, v)))
        frontier = nxt
    return None
