"""Random-fault simulations reproducing Tables 2.1 and 2.2 (Section 2.5.2).

The paper's procedure: fix a source node ``R`` (``0...01``); for each fault
count ``f`` draw ``f`` faulty processors uniformly at random, remove every
necklace containing one, and record (a) the size of the component containing
``R`` — the length of the fault-free cycle the FFC algorithm would return —
and (b) the eccentricity of ``R`` within that component — the number of
broadcast steps of FFC Step 1.1.  If ``R`` itself lands in a faulty necklace
a neighbouring node is used instead.  Averages, maxima and minima over many
trials give one table row per ``f``, alongside the analytic reference
``d**n - n*f``.

The heavy lifting is done by :class:`FaultSweepRunner`, which is
**topology-generic**: it drives any backend of the
:mod:`repro.topology` registry (``debruijn`` — the default and the
compatibility anchor — ``kautz``, ``hypercube``, ``shuffle_exchange``,
``undirected_debruijn``) through the protocol's precomputed gather tables,
built once and reused across every trial of every row:

* the removed-node mask is the backend's vectorized fault-unit closure
  (one ``isin`` over the necklace-representative table for the De Bruijn
  family, a plain scatter for single-node-unit topologies) instead of a
  Python walk per unit;
* ONE directed BFS from the measurement root yields both the size of the
  root's fault-free broadcast region and the root eccentricity.  For the
  De Bruijn graph removing whole necklaces keeps the digraph *balanced*
  (Section 2.5), so that region IS the component containing ``R`` — the
  paper's measurement, exactly; for undirected backends the same holds
  trivially;
* the per-trial statistics are accumulated into numpy arrays.

On top of the per-trial machinery sits the bit-parallel batch path
(:meth:`FaultSweepRunner.run_trials_batch`): up to 64 trials of one table
row are packed into ``uint64`` lanes — one bit per trial per node — and a
single multi-trial BFS (:mod:`repro.graphs.msbfs`) measures the whole batch
with ``d`` gathers per level instead of one full BFS per trial.  Fault
*sampling* stays strictly per-trial (each trial consumes only its own
seeded stream, via the vectorized :func:`repro.network.faults.sample_node_fault_codes`),
and trials whose root lands in a faulty necklace are peeled onto the scalar
fallback, so batched rows are bit-for-bit identical to scalar rows — the
batching only changes how fast the measurements happen (~10x single-process
on ``B(2, 12)``, pinned by ``benchmarks/test_msbfs.py``).

This is what lets ``simulate_fault_table`` scale from the paper's
``d**n ≈ 1024`` graphs to ``B(4, 10)`` with ~10^6 nodes.  The original
per-trial tuple implementation is preserved in
:mod:`repro.analysis.reference` for cross-validation and benchmarking.

Orchestration lives one layer up: ``simulate_fault_table`` routes through
:class:`repro.engine.sweep.ParallelSweepEngine`, which derives one random
stream per trial from ``numpy.random.SeedSequence(seed)`` — making rows
bit-for-bit identical for any worker count and *any* batch size
(``batch=1`` is the scalar escape hatch), and resumable from JSON
checkpoints.  ``run_row``/``simulate_fault_row`` with an explicit ``rng``
keep the older convention of threading one generator sequentially through
the trials; the frozen reference implementation shares that convention, so
the equivalence benchmarks keep comparing like with like.

The paper does not state its trial count; the default here is 200 trials per
row, configurable, with a seeded generator so every run is reproducible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..engine.cache import LRUCache
from ..exceptions import InvalidParameterError
from ..graphs.components import bfs_levels_table
from ..graphs.msbfs import (
    WORD_WIDTH,
    batched_root_stats,
    lane_removed_mask,
    pack_fault_lanes,
)
from ..network.faults import sample_code_batch, sample_fault_codes
from ..topology import DEFAULT_TOPOLOGY, Topology, get_topology
from ..words.alphabet import Word

__all__ = [
    "FaultSimulationRow",
    "FaultSweepRunner",
    "simulate_fault_row",
    "simulate_fault_table",
    "PAPER_FAULT_COUNTS",
]

#: The fault counts tabulated by the paper: 0..10 then 20, 30, 40, 50.
PAPER_FAULT_COUNTS: tuple[int, ...] = tuple(range(11)) + (20, 30, 40, 50)


@dataclass(frozen=True)
class FaultSimulationRow:
    """One row of Table 2.1/2.2: statistics over random fault sets for a fixed ``f``."""

    f: int
    trials: int
    avg_size: float
    max_size: int
    min_size: int
    reference_size: int  # d**n - n*f, the paper's analytic column
    avg_ecc: float
    max_ecc: int
    min_ecc: int

    def as_tuple(self) -> tuple:
        return (
            self.f,
            round(self.avg_size, 2),
            self.max_size,
            self.min_size,
            self.reference_size,
            round(self.avg_ecc, 2),
            self.max_ecc,
            self.min_ecc,
        )

    @classmethod
    def from_samples(
        cls,
        d: int,
        n: int,
        f: int,
        sizes: np.ndarray,
        eccs: np.ndarray,
        reference_size: int | None = None,
    ) -> "FaultSimulationRow":
        """Build a row from per-trial samples (the one place the statistics live).

        Both the legacy sequential :meth:`FaultSweepRunner.run_row` and the
        engine's :class:`~repro.engine.sweep.ParallelSweepEngine` aggregate
        through here, so their row statistics can never diverge.
        ``reference_size`` is the topology's analytic column
        (:meth:`repro.topology.base.Topology.reference_size`); omitted, it
        defaults to the paper's De Bruijn ``d**n - n*f``.
        """
        return cls(
            f=f,
            trials=len(sizes),
            avg_size=float(sizes.mean()),
            max_size=int(sizes.max()),
            min_size=int(sizes.min()),
            reference_size=d**n - n * f if reference_size is None else int(reference_size),
            avg_ecc=float(eccs.mean()),
            max_ecc=int(eccs.max()),
            min_ecc=int(eccs.min()),
        )


def _default_root(n: int) -> Word:
    """The paper's De Bruijn measurement root ``R = 0...01``.

    Kept as the frozen-reference convention (:mod:`repro.analysis.reference`);
    topology backends expose their own analog via ``default_root_code``.
    """
    return (0,) * (n - 1) + (1,)


class FaultSweepRunner:
    """Batched fault-sweep engine for one topology instance and one root.

    The default backend is the paper's ``B(d, n)``; any key of the
    :mod:`repro.topology` registry (or a pre-built
    :class:`~repro.topology.base.Topology`) selects another network.
    Construction touches the shared backend instance (cached per
    ``(topology, d, n)``); every precomputed table — gather columns,
    fault-unit closure — is then amortised across all trials of all rows.
    Instances hold no mutable state, so one runner can serve many seeded
    sweeps.
    """

    def __init__(
        self,
        d: int,
        n: int,
        root: Sequence[int] | None = None,
        topology: str | Topology = DEFAULT_TOPOLOGY,
    ) -> None:
        self.topology = get_topology(topology, d, n)
        self.topology_key = self.topology.key
        self.d, self.n = self.topology.d, self.topology.n
        #: the De Bruijn codec where the backend has one (B/UB/shuffle-exchange);
        #: ``None`` for code-native backends like the hypercube
        self.codec = getattr(self.topology, "codec", None)
        if root is None:
            self.root_code = self.topology.default_root_code
        else:
            self.root_code = self.topology.encode(tuple(int(x) for x in root))
        self.root = self.topology.decode(self.root_code)
        self._intact_dist: np.ndarray | None = None

    # -- one trial -----------------------------------------------------------
    def run_trial(self, f: int, rng: np.random.Generator) -> tuple[int, int]:
        """Run one random trial: returns ``(region_size, root_eccentricity)``."""
        codes = sample_fault_codes(self.topology.num_nodes, f, rng)
        fault_codes = np.asarray(codes, dtype=np.int64)
        return self.measure_mask(self.topology.fault_unit_mask(fault_codes))

    def measure(self, faults: Iterable[Sequence[int]]) -> tuple[int, int]:
        """Measure region size and eccentricity for an explicit fault set."""
        fault_codes = np.asarray(
            [self.topology.encode(w) for w in faults], dtype=np.int64
        )
        return self.measure_mask(self.topology.fault_unit_mask(fault_codes))

    def measure_mask(self, removed: np.ndarray) -> tuple[int, int]:
        """Measure for an explicit removed-node mask (the int-coded hot path)."""
        size, ecc, _ = self.measure_mask_with_root(removed)
        return size, ecc

    def measure_mask_with_root(self, removed: np.ndarray) -> tuple[int, int, int | None]:
        """Like :meth:`measure_mask`, also returning the measured root's code.

        The root is the configured ``R`` when it survives, otherwise the
        sweep protocol's neighbouring-root fallback; ``None`` (with a
        ``(0, 0)`` measurement) when every node was removed.  Consumers that
        report the measurement root — e.g.
        :meth:`repro.engine.service.EmbeddingService.measure` — use this
        form so the reported root can never drift from the measured one.
        """
        root = self._measurement_root(removed)
        if root is None:
            return 0, 0, None
        return (*self._measure_from_root(removed, root), int(root))

    def _measure_from_root(self, removed: np.ndarray, root: int) -> tuple[int, int]:
        # One directed BFS gives both the reached region and the eccentricity.
        # For De Bruijn, whole-necklace removal keeps the digraph balanced, so
        # that region is the root's component (the paper's measurement);
        # undirected backends reach their whole component by definition.
        dist = bfs_levels_table(self.topology.successor_table, removed, root)
        return int((dist >= 0).sum()), int(dist.max())

    # -- one batch of trials ---------------------------------------------------
    def run_trials_batch(
        self, f: int, seed_seqs: Sequence[np.random.SeedSequence]
    ) -> list[tuple[int, int]]:
        """Run up to 64 trials in one bit-parallel sweep; results in trial order.

        Each element of ``seed_seqs`` seeds one trial's private stream
        (the engine passes ``SeedSequence(seed, spawn_key=(f, t))``), and
        fault sampling stays strictly per-trial, so every returned pair is
        bit-for-bit what :meth:`run_trial` yields for the same stream — the
        kernel only changes how the ``(component size, eccentricity)``
        measurements are carried out.  Trials whose root lands in a faulty
        necklace are peeled out of the packed sweep and measured by the
        scalar fallback (:meth:`measure_mask`), including the paper's
        neighbouring-root rule and the all-nodes-removed ``(0, 0)`` case.
        """
        batch = len(seed_seqs)
        if not 1 <= batch <= WORD_WIDTH:
            raise InvalidParameterError(
                f"batch size must be in 1..{WORD_WIDTH}, got {batch}"
            )
        rngs = [np.random.default_rng(seq) for seq in seed_seqs]
        codes = sample_code_batch(self.topology.num_nodes, f, rngs)
        lanes = pack_fault_lanes(self.topology, codes)
        stats = batched_root_stats(self.topology, lanes, self.root_code, batch)
        results = list(zip(stats.sizes.tolist(), stats.eccs.tolist()))
        for t, stat in self._batched_fallbacks(lanes, stats.dead_trials()).items():
            results[t] = stat
        return results

    def _batched_fallbacks(
        self, lanes: np.ndarray, dead: Sequence[int]
    ) -> dict[int, tuple[int, int]]:
        """Fallback measurements for the batch's root-dead trials, lane-packed.

        Each dead trial contributes its fallback candidate roots as lanes
        over its own fault mask (a single candidate is just a 1-lane
        segment), so one extra kernel sweep usually resolves every peeled
        trial of the batch at once.  Per trial the result is bit-for-bit
        :meth:`_fallback_stats` (itself bit-for-bit :meth:`measure_mask`);
        a trial with more than 64 candidates falls back to chunked racing.
        """
        out: dict[int, tuple[int, int]] = {}
        pending: list[tuple[int, np.ndarray]] = []
        for t in dead:
            removed = lane_removed_mask(lanes, t)
            if not (~removed).any():
                out[t] = (0, 0)
                continue
            candidates = self._fallback_candidates(removed)
            if candidates.size > WORD_WIDTH:
                out[t] = self._fallback_stats(removed)
            else:
                # single candidates ride along too: a 1-lane segment of the
                # race sweep is exactly that root's BFS
                pending.append((t, candidates))
        group: list[tuple[int, np.ndarray]] = []
        used = 0
        for item in pending:
            if used + len(item[1]) > WORD_WIDTH:
                self._race_candidate_lanes(lanes, group, out)
                group, used = [], 0
            group.append(item)
            used += len(item[1])
        if group:
            self._race_candidate_lanes(lanes, group, out)
        return out

    def _race_candidate_lanes(
        self,
        lanes: np.ndarray,
        group: Sequence[tuple[int, np.ndarray]],
        out: dict[int, tuple[int, int]],
    ) -> None:
        """Race several trials' candidate roots in one multi-root sweep."""
        one = np.uint64(1)
        roots = np.concatenate([c for _, c in group]).astype(np.int64)
        packed = np.zeros(self.topology.num_nodes, dtype=np.uint64)
        pos = 0
        for t, candidates in group:
            # replicate trial t's removed mask into this trial's lane segment
            segment = np.uint64(((1 << len(candidates)) - 1) << pos)
            packed |= ((lanes >> np.uint64(t)) & one) * segment
            pos += len(candidates)
        stats = batched_root_stats(self.topology, packed, roots, len(roots))
        pos = 0
        for t, candidates in group:
            seg_sizes = stats.sizes[pos : pos + len(candidates)]
            # np.argmax returns the FIRST maximum: the ascending-code
            # strict-'>' scan of _measurement_root, lane-parallel.
            i = int(np.argmax(seg_sizes))
            out[t] = (int(seg_sizes[i]), int(stats.eccs[pos + i]))
            pos += len(candidates)

    # -- root fallback --------------------------------------------------------
    def _intact_distances(self) -> np.ndarray:
        """Fault-free hop distances from ``R`` (either direction), cached."""
        if self._intact_dist is None:
            self._intact_dist = bfs_levels_table(
                self.topology.neighbour_table,
                np.zeros(self.topology.num_nodes, dtype=bool),
                self.root_code,
            )
        return self._intact_dist

    def _fallback_candidates(self, removed: np.ndarray) -> np.ndarray:
        """The paper's "neighboring node" candidates: nearest survivors, ascending."""
        alive = ~removed
        dist = self._intact_distances()
        nearest = dist[alive].min()
        return np.flatnonzero(alive & (dist == nearest))

    def _measurement_root(self, removed: np.ndarray) -> int | None:
        """The root ``R``, or the paper's "neighboring node" fallback.

        The fallback takes the surviving nodes closest to ``R`` in the
        fault-free graph (hop distance, either direction) and among those
        prefers one lying in the largest component (ties: smallest code).

        The smallest-code tie-break is a deliberate, deterministic rule; the
        historical implementation (:mod:`repro.analysis.reference`) broke
        such ties by incidental discovery order, which can pick a different
        (equally valid) root when several equally-near survivors tie on
        component size — a configuration requiring the root's necklace *and*
        all of its neighbours to die, far outside the tabulated regimes.
        """
        if not removed[self.root_code]:
            return self.root_code
        if not (~removed).any():
            return None
        candidates = self._fallback_candidates(removed)
        if candidates.size == 1:
            return int(candidates[0])
        best_root, best_size = None, -1
        succ = self.topology.successor_table
        for value in candidates.tolist():
            size = int((bfs_levels_table(succ, removed, value) >= 0).sum())
            if size > best_size:
                best_root, best_size = value, size
        return best_root

    def _fallback_stats(self, removed: np.ndarray) -> tuple[int, int]:
        """Measure a trial whose root ``R`` lies in a faulty necklace.

        Bit-for-bit the result of :meth:`measure_mask` on the same mask, but
        with the tied fallback candidates raced through ONE bit-parallel
        sweep (each candidate root in its own lane over the shared fault
        mask) instead of one scalar BFS per candidate plus a final re-sweep
        of the winner.  The scalar tie-break is preserved exactly: the
        winner is the first maximum over candidates in ascending code order.
        """
        if not (~removed).any():
            return 0, 0
        candidates = self._fallback_candidates(removed)
        if candidates.size == 1:
            return self._measure_from_root(removed, int(candidates[0]))
        best_size, best_ecc = -1, 0
        for start in range(0, candidates.size, WORD_WIDTH):
            chunk = candidates[start : start + WORD_WIDTH]
            lanes = removed.astype(np.uint64) * np.uint64(2 ** len(chunk) - 1)
            stats = batched_root_stats(self.topology, lanes, chunk, len(chunk))
            # np.argmax returns the FIRST maximum: the ascending-code strict-'>'
            # scan of _measurement_root, lane-parallel.
            i = int(np.argmax(stats.sizes))
            if int(stats.sizes[i]) > best_size:
                best_size, best_ecc = int(stats.sizes[i]), int(stats.eccs[i])
        return best_size, best_ecc

    # -- rows and tables ------------------------------------------------------
    def run_row(
        self, f: int, trials: int = 200, rng: np.random.Generator | None = None
    ) -> FaultSimulationRow:
        """Simulate one table row: ``trials`` random fault sets of size ``f``."""
        if trials < 1:
            raise InvalidParameterError("at least one trial is required")
        if rng is None:
            rng = np.random.default_rng(0)
        sizes = np.empty(trials, dtype=np.int64)
        eccs = np.empty(trials, dtype=np.int64)
        for t in range(trials):
            sizes[t], eccs[t] = self.run_trial(f, rng)
        return FaultSimulationRow.from_samples(
            self.d, self.n, f, sizes, eccs,
            reference_size=self.topology.reference_size(f),
        )

    def run_table(
        self,
        fault_counts: Iterable[int] = PAPER_FAULT_COUNTS,
        trials: int = 200,
        seed: int = 0,
        batch: int = WORD_WIDTH,
    ) -> list[FaultSimulationRow]:
        """Simulate a full table through the sweep engine (inline, this process).

        Delegates to :class:`repro.engine.sweep.ParallelSweepEngine` so that
        every table — serial or parallel, library call or CLI — runs through
        one orchestration path with the same per-trial seed streams.
        ``batch`` sets how many trials each bit-parallel kernel call packs
        (``1`` forces the scalar per-trial path; the rows are identical).
        """
        from ..engine.sweep import ParallelSweepEngine

        # the engine adopts this runner's backend (registered or not), so no
        # topology key is passed: measurement and aggregation cannot diverge
        engine = ParallelSweepEngine(self.d, self.n, root=self.root, runner=self, batch=batch)
        return engine.run(fault_counts=fault_counts, trials=trials, seed=seed)


#: Bounded, observable runner cache: one entry per ``(topology, d, n, root)``
#: served.  Audited (stats/clear) through :mod:`repro.engine.caches`; worker
#: processes of the parallel sweep engine reuse it so backend tables are
#: built once per process, not once per shard.
_RUNNER_CACHE = LRUCache(maxsize=8, name="analysis.fault_runners")


def _cached_runner(
    d: int, n: int, root: Word | None, topology: str = DEFAULT_TOPOLOGY
) -> FaultSweepRunner:
    key = (str(topology), int(d), int(n), root)
    return _RUNNER_CACHE.get_or_create(
        key, lambda: FaultSweepRunner(d, n, root=root, topology=topology)
    )


def simulate_fault_row(
    d: int,
    n: int,
    f: int,
    trials: int = 200,
    rng: np.random.Generator | None = None,
    root: Sequence[int] | None = None,
    topology: str = DEFAULT_TOPOLOGY,
) -> FaultSimulationRow:
    """Simulate one table row: ``trials`` random fault sets of size ``f``.

    Follows the paper's measurement protocol exactly, including the fallback
    to a neighbouring root when ``R`` falls inside a faulty unit.  Thin
    wrapper over a cached :class:`FaultSweepRunner`; ``topology`` selects
    any registered backend (default: the paper's De Bruijn graph).
    """
    root_key = None if root is None else tuple(int(x) for x in root)
    return _cached_runner(d, n, root_key, topology).run_row(f, trials=trials, rng=rng)


def simulate_fault_table(
    d: int,
    n: int,
    fault_counts: Iterable[int] = PAPER_FAULT_COUNTS,
    trials: int = 200,
    seed: int = 0,
    root: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_path: str | None = None,
    progress: Callable | None = None,
    batch: int = WORD_WIDTH,
    topology: str = DEFAULT_TOPOLOGY,
) -> list[FaultSimulationRow]:
    """Simulate a full table (Table 2.1 with ``d=2, n=10``; Table 2.2 with ``d=4, n=5``).

    Routed through :class:`repro.engine.sweep.ParallelSweepEngine`: the
    random stream of trial ``t`` of row ``r`` is derived from
    ``SeedSequence(seed)`` by spawn index, so the rows are bit-for-bit
    identical whether run inline (``workers=None``, the default), in a
    1-worker pool or across ``workers > 1`` processes.  ``checkpoint_path``
    enables JSON checkpoint/resume for long sweeps and ``progress`` receives
    a :class:`~repro.engine.sweep.SweepProgress` per completed batch.
    ``batch`` sets how many trials each bit-parallel kernel call measures at
    once (default: the full 64-trial word width; ``batch=1`` is the scalar
    escape hatch — every setting produces identical rows).  ``topology``
    selects any registered backend (``kautz``, ``hypercube``,
    ``shuffle_exchange``, ...); the default stays the paper's De Bruijn
    graph, whose rows are bit-for-bit those of the pre-registry engine.
    """
    from ..engine.sweep import ParallelSweepEngine

    root_key = None if root is None else tuple(int(x) for x in root)
    engine = ParallelSweepEngine(
        d,
        n,
        root=root_key,
        workers=workers,
        checkpoint_path=checkpoint_path,
        progress=progress,
        batch=batch,
        topology=topology,
    )
    return engine.run(fault_counts=fault_counts, trials=trials, seed=seed)
