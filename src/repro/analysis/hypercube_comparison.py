"""The hypercube comparison quoted in the introduction to Chapter 2.

"For example, a fault-free cycle of length 4092 can be found in the
4096-node hypercube when f = 2.  By comparison, when there are two faults in
the 4096-node De Bruijn graph B(4,6), a fault-free cycle of length at least
4084 can be found.  It is worth mentioning that the hypercube has 50% more
edges (24,576) than the De Bruijn graph (16,384) in this instance."

The De Bruijn side of the comparison is also *measured* here by actually
running the FFC algorithm on adversarially and randomly placed faults, so the
benchmark reports both the analytic bounds and achieved cycle lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bounds import hypercube_vs_debruijn, node_fault_cycle_bound, worst_case_fault_placement
from ..core.ffc import find_fault_free_cycle
from ..graphs.hypercube import HypercubeGraph, fault_free_cycle_bound
from ..network.faults import sample_node_faults

__all__ = ["HypercubeComparison", "compare_hypercube_debruijn"]


@dataclass(frozen=True)
class HypercubeComparison:
    """Side-by-side numbers for equally sized hypercube and De Bruijn networks."""

    nodes: int
    f: int
    hypercube_edges: int
    debruijn_edges: int
    hypercube_cycle_bound: int
    debruijn_cycle_bound: int
    debruijn_cycle_worst_case: int
    debruijn_cycle_random_avg: float

    def as_rows(self) -> list[tuple]:
        return [
            ("nodes", self.nodes, self.nodes),
            ("edges", self.hypercube_edges, self.debruijn_edges),
            (f"guaranteed cycle, f={self.f}", self.hypercube_cycle_bound, self.debruijn_cycle_bound),
            ("measured worst-case cycle", "-", self.debruijn_cycle_worst_case),
            ("measured random-fault cycle (avg)", "-", round(self.debruijn_cycle_random_avg, 1)),
        ]


def compare_hypercube_debruijn(
    n_cube: int = 12, d: int = 4, n: int = 6, f: int = 2, trials: int = 5, seed: int = 0
) -> HypercubeComparison:
    """Reproduce the Chapter 2 comparison, measuring the De Bruijn side with the FFC algorithm."""
    bounds = hypercube_vs_debruijn(n_cube=n_cube, d=d, n=n, f=f)
    cube = HypercubeGraph(n_cube)

    worst = find_fault_free_cycle(d, n, worst_case_fault_placement(d, n, f)).length

    rng = np.random.default_rng(seed)
    lengths = []
    for _ in range(trials):
        faults = sample_node_faults(d, n, f, rng)
        lengths.append(find_fault_free_cycle(d, n, faults).length)

    return HypercubeComparison(
        nodes=bounds["nodes"],
        f=f,
        hypercube_edges=cube.num_edges,
        debruijn_edges=bounds["debruijn_edges"],
        hypercube_cycle_bound=fault_free_cycle_bound(n_cube, f),
        debruijn_cycle_bound=node_fault_cycle_bound(d, n, f),
        debruijn_cycle_worst_case=worst,
        debruijn_cycle_random_avg=float(np.mean(lengths)),
    )
