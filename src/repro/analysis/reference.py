"""Reference per-trial fault-sweep implementation (the pre-codec tuple path).

This module freezes the original implementation of
:func:`repro.analysis.fault_simulation.simulate_fault_row` exactly as it
stood before the :class:`~repro.analysis.fault_simulation.FaultSweepRunner`
refactor: the faulty-necklace mask is expanded one necklace member at a time
in Python, the BFS successor/predecessor matrices are rebuilt on every
sweep, the component and the eccentricity are measured by two separate BFS
passes, and the root fallback explores the graph in tuple space.

It exists for cross-validation (the test-suite compares its rows against the
runner's) and as the baseline for ``benchmarks/test_codec_speedup.py``.  Do
not use it for real sweeps — that is the whole point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..network.faults import sample_node_faults
from ..words.alphabet import Word, word_to_int
from ..words.necklaces import faulty_necklaces
from .fault_simulation import FaultSimulationRow, _default_root

__all__ = ["simulate_fault_row_reference"]


def _successor_matrix_ref(d: int, n: int) -> np.ndarray:
    size = d**n
    base = (np.arange(size, dtype=np.int64) * d) % size
    return base[:, None] + np.arange(d, dtype=np.int64)[None, :]


def _predecessor_matrix_ref(d: int, n: int) -> np.ndarray:
    size = d**n
    high = d ** (n - 1)
    base = np.arange(size, dtype=np.int64) // d
    return base[:, None] + np.arange(d, dtype=np.int64)[None, :] * high


def _bfs_levels_ref(
    d: int, n: int, removed_mask: np.ndarray, root: int, direction: str
) -> np.ndarray:
    """The original BFS: matrices rebuilt per call, sort-based frontier dedup."""
    size = d**n
    matrices = []
    if direction in ("out", "both"):
        matrices.append(_successor_matrix_ref(d, n))
    if direction in ("in", "both"):
        matrices.append(_predecessor_matrix_ref(d, n))
    dist = np.full(size, -1, dtype=np.int64)
    dist[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nxt_parts = [m[frontier].ravel() for m in matrices]
        nxt = np.unique(np.concatenate(nxt_parts)) if len(nxt_parts) > 1 else np.unique(nxt_parts[0])
        fresh = nxt[(dist[nxt] == -1) & (~removed_mask[nxt])]
        dist[fresh] = level
        frontier = fresh
    return dist


def _removed_mask_ref(d: int, n: int, faults: list[Word]) -> np.ndarray:
    """The original mask construction: Python expansion of every faulty necklace."""
    mask = np.zeros(d**n, dtype=bool)
    for nk in faulty_necklaces(faults, d):
        for member in nk.node_set:
            mask[word_to_int(member, d)] = True
    return mask


def _live_root_ref(d: int, n: int, removed_mask: np.ndarray, root_word: Word) -> int | None:
    """The original tuple-space fallback to "a neighboring node"."""
    root_int = word_to_int(root_word, d)
    if not removed_mask[root_int]:
        return root_int

    def component_size(value: int) -> int:
        dist = _bfs_levels_ref(d, n, removed_mask, value, "both")
        return int((dist >= 0).sum())

    visited = {root_word}
    frontier = [root_word]
    while frontier:
        nxt: list[Word] = []
        alive_here: list[int] = []
        for node in frontier:
            neighbours = [node[1:] + (a,) for a in range(d)] + [(a,) + node[:-1] for a in range(d)]
            for candidate in sorted(neighbours):
                if candidate in visited:
                    continue
                visited.add(candidate)
                value = word_to_int(candidate, d)
                if not removed_mask[value]:
                    alive_here.append(value)
                else:
                    nxt.append(candidate)
        if alive_here:
            return max(alive_here, key=component_size)
        frontier = nxt
    return None


def simulate_fault_row_reference(
    d: int,
    n: int,
    f: int,
    trials: int = 200,
    rng: np.random.Generator | None = None,
    root: Sequence[int] | None = None,
) -> FaultSimulationRow:
    """One table row via the original per-trial tuple pipeline."""
    if trials < 1:
        raise InvalidParameterError("at least one trial is required")
    if rng is None:
        rng = np.random.default_rng(0)
    root_word = _default_root(n) if root is None else tuple(int(x) for x in root)
    sizes: list[int] = []
    eccs: list[int] = []
    for _ in range(trials):
        faults = sample_node_faults(d, n, f, rng)
        mask = _removed_mask_ref(d, n, faults)
        measure_root = _live_root_ref(d, n, mask, root_word)
        if measure_root is None:
            sizes.append(0)
            eccs.append(0)
            continue
        comp = _bfs_levels_ref(d, n, mask, measure_root, "both") >= 0
        out_dist = _bfs_levels_ref(d, n, mask, measure_root, "out")
        sizes.append(int(comp.sum()))
        eccs.append(int(out_dist[out_dist >= 0].max()))
    return FaultSimulationRow(
        f=f,
        trials=trials,
        avg_size=float(np.mean(sizes)),
        max_size=int(np.max(sizes)),
        min_size=int(np.min(sizes)),
        reference_size=d**n - n * f,
        avg_ecc=float(np.mean(eccs)),
        max_ecc=int(np.max(eccs)),
        min_ecc=int(np.min(eccs)),
    )
