"""The experiment registry: one runnable entry per table/figure of the paper.

Each entry is a callable returning an :class:`ExperimentResult` — a
description, structured ``(headers, rows)`` and the pre-rendered text table
— so one computation serves both the human-readable output and the
``--format csv`` interchange path.  The ``python -m repro experiment`` CLI
(which ``examples/reproduce_paper_tables.py`` delegates to) and the
benchmark suite under ``benchmarks/`` both drive this registry; the
compatibility entry point :func:`run_experiment` keeps returning the
``(description, text)`` pair.

The fault-table entries accept ``workers`` and fan their trials out through
:class:`repro.engine.sweep.ParallelSweepEngine`, whose measurements all
dispatch through the shared :class:`repro.engine.executor.KernelExecutor`
— same rows, any worker count, and bit-for-bit the rows the serving path
would measure for the same fault sets.  Two registry entries are
topology-generic: ``topology_sweep`` runs
a Tables 2.1/2.2-style sweep on any backend of the :mod:`repro.topology`
registry, and ``hypercube_vs_debruijn_sweep`` turns the Chapter 2
hypercube-vs-De Bruijn comparison into a *live* same-kernel fault sweep of
``Q(12)`` against the equally sized ``B(4, 6)``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..core.bounds import table_3_1, table_3_2
from ..core.counting import (
    count_necklaces_by_weight,
    count_necklaces_by_weight_total,
    count_necklaces_of_length,
    count_necklaces_total,
)
from ..core.disjoint_hc import disjoint_hamiltonian_cycles, verify_pairwise_disjoint
from ..core.ffc import find_fault_free_cycle
from ..core.hamiltonian_decomposition import modified_debruijn_decomposition
from ..graphs.undirected import UndirectedDeBruijnGraph, degree_census
from ..topology import get_topology
from .fault_simulation import simulate_fault_table
from .hypercube_comparison import compare_hypercube_debruijn
from .reporting import format_csv, format_fault_table, format_mapping_table, format_table

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_result",
    "available_experiments",
]

#: Fault counts of the live topology experiments: dense over the guaranteed
#: regimes, sparse beyond, small enough to stay interactive on 4096 nodes.
_LIVE_SWEEP_FAULTS = (0, 1, 2, 4, 8, 16)

#: The paper's fault-table column layout (shared with reporting).
_FAULT_HEADERS = (
    "f", "Avg. Size", "Max. Size", "Min. Size", "reference",
    "Avg. Ecc.", "Max. Ecc.", "Min. Ecc.",
)


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's output: description, structured rows, rendered text."""

    description: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    text: str

    def csv(self) -> str:
        """The structured rows as CSV (shared writer: :func:`format_csv`)."""
        return format_csv(self.headers, self.rows)


def _fault_table_result(
    description: str, rows, title: str = "", reference_header: str = "d^n - nf"
) -> ExperimentResult:
    return ExperimentResult(
        description=description,
        headers=_FAULT_HEADERS,
        rows=tuple(row.as_tuple() for row in rows),
        text=format_fault_table(rows, title=title, reference_header=reference_header),
    )


def _table_2_1(trials: int = 200, seed: int = 0, workers: int | None = None) -> ExperimentResult:
    rows = simulate_fault_table(2, 10, trials=trials, seed=seed, workers=workers)
    return _fault_table_result(
        "Table 2.1 — component size / eccentricity of R=0^9 1 in B(2,10) under random faults",
        rows,
    )


def _table_2_2(trials: int = 200, seed: int = 0, workers: int | None = None) -> ExperimentResult:
    rows = simulate_fault_table(4, 5, trials=trials, seed=seed, workers=workers)
    return _fault_table_result(
        "Table 2.2 — component size / eccentricity of R=0^4 1 in B(4,5) under random faults",
        rows,
    )


def _topology_sweep(
    topology: str = "kautz",
    d: int = 2,
    n: int = 8,
    trials: int = 50,
    seed: int = 0,
    workers: int | None = None,
    fault_counts: Sequence[int] = _LIVE_SWEEP_FAULTS,
) -> ExperimentResult:
    """A Tables 2.1/2.2-style sweep on any registered topology backend."""
    topo = get_topology(topology, d, n)
    rows = simulate_fault_table(
        d, n, fault_counts=fault_counts, trials=trials, seed=seed,
        workers=workers, topology=topology,
    )
    return _fault_table_result(
        f"Topology sweep — fault-free region around the root of {topo.name} "
        f"({topo.num_nodes} nodes, {topology} backend) under random faults",
        rows,
        reference_header=topo.reference_label,
    )


def _hypercube_vs_debruijn_sweep(
    trials: int = 20, seed: int = 0, workers: int | None = None
) -> ExperimentResult:
    """The Chapter 2 comparison as a live, same-kernel fault sweep.

    The 4096-node hypercube ``Q(12)`` and the 4096-node De Bruijn graph
    ``B(4, 6)`` are swept with identical fault counts, trial counts and the
    same bit-parallel measurement kernel; the static bound columns sit next
    to the measured sizes.  (The hypercube loses one node per fault, the De
    Bruijn graph up to ``n`` per necklace — and still tracks its bound with
    a third fewer edges, which is the paper's headline argument.)
    """
    cube = get_topology("hypercube", 2, 12)
    deb = get_topology("debruijn", 4, 6)
    kwargs = {"fault_counts": _LIVE_SWEEP_FAULTS, "trials": trials,
              "seed": seed, "workers": workers}
    cube_rows = simulate_fault_table(2, 12, topology="hypercube", **kwargs)
    deb_rows = simulate_fault_table(4, 6, topology="debruijn", **kwargs)
    rows = []
    for f, qr, br in zip(_LIVE_SWEEP_FAULTS, cube_rows, deb_rows):
        q_bound = cube.guarantee_bound(f)
        b_bound = deb.guarantee_bound(f)
        rows.append((
            f,
            round(qr.avg_size, 2), qr.min_size, "-" if q_bound is None else q_bound,
            round(br.avg_size, 2), br.min_size, "-" if b_bound is None else b_bound,
        ))
    headers = (
        "f",
        "Q(12) avg size", "Q(12) min size", "Q(12) bound",
        "B(4,6) avg size", "B(4,6) min size", "B(4,6) bound",
    )
    return ExperimentResult(
        description=(
            "Ch. 2 intro, live — same-kernel random-fault sweep of the 4096-node "
            f"Q(12) ({cube.num_nodes * 12 // 2} edges) vs B(4,6) "
            "(16384 edges, the paper's figure)"
        ),
        headers=headers,
        rows=tuple(rows),
        text=format_table(headers, rows),
    )


def _table_3_1() -> ExperimentResult:
    mapping = table_3_1(38)
    return ExperimentResult(
        description="Table 3.1 — psi(d): guaranteed disjoint Hamiltonian cycles, 2 <= d <= 38",
        headers=("d", "psi(d)"),
        rows=tuple((k, mapping[k]) for k in sorted(mapping)),
        text=format_mapping_table(mapping, "d", "psi(d)"),
    )


def _table_3_2() -> ExperimentResult:
    mapping = table_3_2(35)
    return ExperimentResult(
        description="Table 3.2 — max(psi(d)-1, varphi(d)): tolerated edge faults, 2 <= d <= 35",
        headers=("d", "tolerance"),
        rows=tuple((k, mapping[k]) for k in sorted(mapping)),
        text=format_mapping_table(mapping, "d", "tolerance"),
    )


def _figure_1_graphs() -> ExperimentResult:
    rows = []
    for d, n in [(2, 3), (2, 4)]:
        rows.append((f"B({d},{n})", d**n, d ** (n + 1), "-"))
    ub = UndirectedDeBruijnGraph(2, 3)
    rows.append(("UB(2,3)", ub.num_nodes, ub.num_edges, dict(sorted(degree_census(2, 3).items()))))
    headers = ("graph", "nodes", "edges", "degree census")
    return ExperimentResult(
        description="Figures 1.1/1.2 — node/edge census of B(2,3), B(2,4) and UB(2,3)",
        headers=headers,
        rows=tuple(rows),
        text=format_table(headers, rows),
    )


def _figure_2_ffc_example() -> ExperimentResult:
    result = find_fault_free_cycle(3, 3, [(0, 2, 0), (1, 1, 2)], root_hint=(0, 0, 0))
    cycle = " ".join("".join(map(str, w)) for w in result.cycle)
    rows = (
        ("faulty nodes", "020, 112"),
        ("|B*|", result.bstar.size),
        ("necklaces in N*", len(result.adjacency.necklaces)),
        ("spanning tree edges", len(result.spanning_tree.parent)),
        ("modified tree edges", len(result.modified_tree.edges())),
        ("cycle length", result.length),
        ("cycle", cycle),
    )
    headers = ("quantity", "value")
    return ExperimentResult(
        description="Figures 2.1–2.4 / Example 2.1 — the FFC run on B(3,3) with faults {020, 112}",
        headers=headers,
        rows=rows,
        text=format_table(headers, rows),
    )


def _figure_3_3_decomposition() -> ExperimentResult:
    rows = []
    for d, n in [(2, 3), (3, 3), (5, 2)]:
        dec = modified_debruijn_decomposition(d, n)
        rows.append(
            (
                f"MB({d},{n})",
                len(dec.cycles),
                dec.is_decomposition(),
                dec.undirected_contains_ub(),
            )
        )
    headers = ("graph", "cycles", "is decomposition", "UB subgraph of UMB")
    return ExperimentResult(
        description="Figure 3.3 / §3.2.3 — Hamiltonian decompositions of the modified graph",
        headers=headers,
        rows=tuple(rows),
        text=format_table(headers, rows),
    )


def _disjoint_hc_summary() -> ExperimentResult:
    rows = []
    for d, n in [(4, 2), (5, 2), (8, 2), (9, 2), (13, 2), (6, 2), (12, 2)]:
        cycles = disjoint_hamiltonian_cycles(d, n)
        rows.append((f"B({d},{n})", len(cycles), verify_pairwise_disjoint(cycles, d, n)))
    headers = ("graph", "#cycles (>= psi)", "pairwise disjoint")
    return ExperimentResult(
        description="§3.2 — constructed disjoint Hamiltonian cycle families",
        headers=headers,
        rows=tuple(rows),
        text=format_table(headers, rows),
    )


def _hypercube_comparison() -> ExperimentResult:
    cmp = compare_hypercube_debruijn()
    headers = ("quantity", "hypercube", "De Bruijn")
    rows = tuple(cmp.as_rows())
    return ExperimentResult(
        description="Ch. 2 intro — 4096-node hypercube Q(12) vs De Bruijn B(4,6) with f=2",
        headers=headers,
        rows=rows,
        text=format_table(headers, rows),
    )


def _chapter_4_examples() -> ExperimentResult:
    rows = (
        ("necklaces of length 6 in B(2,12)", 9, count_necklaces_of_length(2, 12, 6)),
        ("necklaces in B(2,12)", 352, count_necklaces_total(2, 12)),
        ("weight-4 necklaces of length 6 in B(2,12)", 2, count_necklaces_by_weight(2, 12, 4, 6)),
        ("weight-4 necklaces in B(2,12)", 43, count_necklaces_by_weight_total(2, 12, 4)),
        ("weight-4 necklaces of length 4 in B(3,4)", 4, count_necklaces_by_weight(3, 4, 4, 4)),
    )
    headers = ("quantity", "paper", "computed")
    return ExperimentResult(
        description="Chapter 4 worked examples — necklace counts (paper value vs computed)",
        headers=headers,
        rows=rows,
        text=format_table(headers, rows),
    )


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table_2_1": _table_2_1,
    "table_2_2": _table_2_2,
    "table_3_1": _table_3_1,
    "table_3_2": _table_3_2,
    "figure_1_graphs": _figure_1_graphs,
    "figure_2_ffc_example": _figure_2_ffc_example,
    "figure_3_3_decomposition": _figure_3_3_decomposition,
    "disjoint_hc_summary": _disjoint_hc_summary,
    "hypercube_comparison": _hypercube_comparison,
    "hypercube_vs_debruijn_sweep": _hypercube_vs_debruijn_sweep,
    "topology_sweep": _topology_sweep,
    "chapter_4_examples": _chapter_4_examples,
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(EXPERIMENTS)


def run_experiment_result(name: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment and return its full structured result."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; choose from {available_experiments()}") from None
    return runner(**kwargs)


def run_experiment(name: str, **kwargs) -> tuple[str, str]:
    """Run one registered experiment and return ``(description, rendered table)``."""
    result = run_experiment_result(name, **kwargs)
    return result.description, result.text
