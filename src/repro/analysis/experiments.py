"""The experiment registry: one runnable entry per table/figure of the paper.

Each entry pairs an experiment identifier (e.g. ``"table_2_1"``) with a
callable returning ``(description, text)`` where ``text`` is the regenerated
table/figure rendered via :mod:`repro.analysis.reporting`.  The
``python -m repro experiment`` CLI (which ``examples/reproduce_paper_tables.py``
delegates to) and the benchmark suite under ``benchmarks/`` both drive this
registry.  The fault-table entries accept ``workers`` and fan their trials
out through :class:`repro.engine.sweep.ParallelSweepEngine` — same rows,
any worker count.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.bounds import table_3_1, table_3_2
from ..core.counting import (
    count_necklaces_by_weight,
    count_necklaces_by_weight_total,
    count_necklaces_of_length,
    count_necklaces_total,
)
from ..core.disjoint_hc import disjoint_hamiltonian_cycles, verify_pairwise_disjoint
from ..core.ffc import find_fault_free_cycle
from ..core.hamiltonian_decomposition import modified_debruijn_decomposition
from ..graphs.undirected import UndirectedDeBruijnGraph, degree_census
from .fault_simulation import simulate_fault_table
from .hypercube_comparison import compare_hypercube_debruijn
from .reporting import format_fault_table, format_mapping_table, format_table

__all__ = ["EXPERIMENTS", "run_experiment", "available_experiments"]


def _table_2_1(trials: int = 200, seed: int = 0, workers: int | None = None) -> tuple[str, str]:
    rows = simulate_fault_table(2, 10, trials=trials, seed=seed, workers=workers)
    return (
        "Table 2.1 — component size / eccentricity of R=0^9 1 in B(2,10) under random faults",
        format_fault_table(rows),
    )


def _table_2_2(trials: int = 200, seed: int = 0, workers: int | None = None) -> tuple[str, str]:
    rows = simulate_fault_table(4, 5, trials=trials, seed=seed, workers=workers)
    return (
        "Table 2.2 — component size / eccentricity of R=0^4 1 in B(4,5) under random faults",
        format_fault_table(rows),
    )


def _table_3_1() -> tuple[str, str]:
    return (
        "Table 3.1 — psi(d): guaranteed disjoint Hamiltonian cycles, 2 <= d <= 38",
        format_mapping_table(table_3_1(38), "d", "psi(d)"),
    )


def _table_3_2() -> tuple[str, str]:
    return (
        "Table 3.2 — max(psi(d)-1, varphi(d)): tolerated edge faults, 2 <= d <= 35",
        format_mapping_table(table_3_2(35), "d", "tolerance"),
    )


def _figure_1_graphs() -> tuple[str, str]:
    rows = []
    for d, n in [(2, 3), (2, 4)]:
        rows.append((f"B({d},{n})", d**n, d ** (n + 1), "-"))
    ub = UndirectedDeBruijnGraph(2, 3)
    rows.append(("UB(2,3)", ub.num_nodes, ub.num_edges, dict(sorted(degree_census(2, 3).items()))))
    return (
        "Figures 1.1/1.2 — node/edge census of B(2,3), B(2,4) and UB(2,3)",
        format_table(["graph", "nodes", "edges", "degree census"], rows),
    )


def _figure_2_ffc_example() -> tuple[str, str]:
    result = find_fault_free_cycle(3, 3, [(0, 2, 0), (1, 1, 2)], root_hint=(0, 0, 0))
    cycle = " ".join("".join(map(str, w)) for w in result.cycle)
    rows = [
        ("faulty nodes", "020, 112"),
        ("|B*|", result.bstar.size),
        ("necklaces in N*", len(result.adjacency.necklaces)),
        ("spanning tree edges", len(result.spanning_tree.parent)),
        ("modified tree edges", len(result.modified_tree.edges())),
        ("cycle length", result.length),
        ("cycle", cycle),
    ]
    return (
        "Figures 2.1–2.4 / Example 2.1 — the FFC run on B(3,3) with faults {020, 112}",
        format_table(["quantity", "value"], rows),
    )


def _figure_3_3_decomposition() -> tuple[str, str]:
    rows = []
    for d, n in [(2, 3), (3, 3), (5, 2)]:
        dec = modified_debruijn_decomposition(d, n)
        rows.append(
            (
                f"MB({d},{n})",
                len(dec.cycles),
                dec.is_decomposition(),
                dec.undirected_contains_ub(),
            )
        )
    return (
        "Figure 3.3 / §3.2.3 — Hamiltonian decompositions of the modified graph",
        format_table(["graph", "cycles", "is decomposition", "UB subgraph of UMB"], rows),
    )


def _disjoint_hc_summary() -> tuple[str, str]:
    rows = []
    for d, n in [(4, 2), (5, 2), (8, 2), (9, 2), (13, 2), (6, 2), (12, 2)]:
        cycles = disjoint_hamiltonian_cycles(d, n)
        rows.append((f"B({d},{n})", len(cycles), verify_pairwise_disjoint(cycles, d, n)))
    return (
        "§3.2 — constructed disjoint Hamiltonian cycle families",
        format_table(["graph", "#cycles (>= psi)", "pairwise disjoint"], rows),
    )


def _hypercube_comparison() -> tuple[str, str]:
    cmp = compare_hypercube_debruijn()
    return (
        "Ch. 2 intro — 4096-node hypercube Q(12) vs De Bruijn B(4,6) with f=2",
        format_table(["quantity", "hypercube", "De Bruijn"], cmp.as_rows()),
    )


def _chapter_4_examples() -> tuple[str, str]:
    rows = [
        ("necklaces of length 6 in B(2,12)", 9, count_necklaces_of_length(2, 12, 6)),
        ("necklaces in B(2,12)", 352, count_necklaces_total(2, 12)),
        ("weight-4 necklaces of length 6 in B(2,12)", 2, count_necklaces_by_weight(2, 12, 4, 6)),
        ("weight-4 necklaces in B(2,12)", 43, count_necklaces_by_weight_total(2, 12, 4)),
        ("weight-4 necklaces of length 4 in B(3,4)", 4, count_necklaces_by_weight(3, 4, 4, 4)),
    ]
    return (
        "Chapter 4 worked examples — necklace counts (paper value vs computed)",
        format_table(["quantity", "paper", "computed"], rows),
    )


EXPERIMENTS: dict[str, Callable[..., tuple[str, str]]] = {
    "table_2_1": _table_2_1,
    "table_2_2": _table_2_2,
    "table_3_1": _table_3_1,
    "table_3_2": _table_3_2,
    "figure_1_graphs": _figure_1_graphs,
    "figure_2_ffc_example": _figure_2_ffc_example,
    "figure_3_3_decomposition": _figure_3_3_decomposition,
    "disjoint_hc_summary": _disjoint_hc_summary,
    "hypercube_comparison": _hypercube_comparison,
    "chapter_4_examples": _chapter_4_examples,
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, **kwargs) -> tuple[str, str]:
    """Run one registered experiment and return ``(description, rendered table)``."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; choose from {available_experiments()}") from None
    return runner(**kwargs)
