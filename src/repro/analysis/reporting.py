"""Plain-text rendering of the reproduced tables and figures.

Every experiment harness in :mod:`repro.analysis` and every benchmark in
``benchmarks/`` funnels its results through these helpers so that the rows
printed next to the paper's tables line up column for column.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .fault_simulation import FaultSimulationRow

__all__ = ["format_table", "format_fault_table", "format_mapping_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list of rows as a fixed-width text table."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_fault_table(rows: Iterable[FaultSimulationRow], title: str = "") -> str:
    """Render Table 2.1/2.2 rows with the paper's column layout."""
    headers = ["f", "Avg. Size", "Max. Size", "Min. Size", "d^n - nf", "Avg. Ecc.", "Max. Ecc.", "Min. Ecc."]
    body = format_table(headers, [row.as_tuple() for row in rows])
    return f"{title}\n{body}" if title else body


def format_mapping_table(mapping: dict, key_header: str, value_header: str) -> str:
    """Render a ``{key: value}`` mapping (e.g. Table 3.1 / 3.2) as two rows."""
    keys = sorted(mapping)
    headers = [key_header] + [str(k) for k in keys]
    row = [value_header] + [str(mapping[k]) for k in keys]
    return format_table(headers, [row])
