"""Plain-text and CSV rendering of the reproduced tables and figures.

Every experiment harness in :mod:`repro.analysis` and every benchmark in
``benchmarks/`` funnels its results through these helpers so that the rows
printed next to the paper's tables line up column for column.  The CSV
writers (:func:`format_csv`, :func:`format_fault_table_csv`) are the single
machine-readable serialisation shared by the ``sweep --format csv`` and
``experiment --format csv`` CLI paths.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from collections.abc import Iterable, Sequence

from .fault_simulation import FaultSimulationRow

__all__ = [
    "format_table",
    "format_fault_table",
    "format_mapping_table",
    "format_csv",
    "format_fault_table_csv",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list of rows as a fixed-width text table."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_fault_table(
    rows: Iterable[FaultSimulationRow],
    title: str = "",
    reference_header: str = "d^n - nf",
) -> str:
    """Render Table 2.1/2.2 rows with the paper's column layout.

    ``reference_header`` labels the analytic reference column — the paper's
    ``d^n - nf`` by default; topology-generic callers pass the backend's
    :attr:`~repro.topology.base.Topology.reference_label`.
    """
    headers = ["f", "Avg. Size", "Max. Size", "Min. Size", reference_header,
               "Avg. Ecc.", "Max. Ecc.", "Min. Ecc."]
    body = format_table(headers, [row.as_tuple() for row in rows])
    return f"{title}\n{body}" if title else body


def format_mapping_table(mapping: dict, key_header: str, value_header: str) -> str:
    """Render a ``{key: value}`` mapping (e.g. Table 3.1 / 3.2) as two rows."""
    keys = sorted(mapping)
    headers = [key_header] + [str(k) for k in keys]
    row = [value_header] + [str(mapping[k]) for k in keys]
    return format_table(headers, [row])


def format_csv(headers: Sequence, rows: Iterable[Sequence]) -> str:
    """Serialise headers + rows as RFC-4180 CSV text (``\\n`` line ends).

    The one CSV writer of the package: the ``sweep`` and ``experiment``
    subcommands and any future machine-readable table all route through it,
    so quoting and line-ending behaviour can never drift between outputs.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([str(h) for h in headers])
    writer.writerows(rows)
    return buffer.getvalue()


def format_fault_table_csv(rows: Iterable[FaultSimulationRow]) -> str:
    """Serialise sweep rows as CSV at full precision (one column per field).

    Unlike :func:`format_fault_table` — which rounds the averages to the
    paper's two decimals for side-by-side reading — this is an interchange
    format: every :class:`FaultSimulationRow` field round-trips exactly.
    """
    fields = [f.name for f in dataclasses.fields(FaultSimulationRow)]
    return format_csv(fields, [dataclasses.astuple(row) for row in rows])
