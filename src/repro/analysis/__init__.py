"""Experiment harnesses reproducing the paper's tables, figures and comparisons."""

from .experiments import EXPERIMENTS, available_experiments, run_experiment
from .fault_simulation import (
    PAPER_FAULT_COUNTS,
    FaultSimulationRow,
    FaultSweepRunner,
    simulate_fault_row,
    simulate_fault_table,
)
from .hypercube_comparison import HypercubeComparison, compare_hypercube_debruijn
from .reporting import format_fault_table, format_mapping_table, format_table

__all__ = [
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "PAPER_FAULT_COUNTS",
    "FaultSimulationRow",
    "FaultSweepRunner",
    "simulate_fault_row",
    "simulate_fault_table",
    "HypercubeComparison",
    "compare_hypercube_debruijn",
    "format_fault_table",
    "format_mapping_table",
    "format_table",
]
