"""Experiment harnesses reproducing the paper's tables, figures and comparisons."""

from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    available_experiments,
    run_experiment,
    run_experiment_result,
)
from .fault_simulation import (
    PAPER_FAULT_COUNTS,
    FaultSimulationRow,
    FaultSweepRunner,
    simulate_fault_row,
    simulate_fault_table,
)
from .hypercube_comparison import HypercubeComparison, compare_hypercube_debruijn
from .reporting import (
    format_csv,
    format_fault_table,
    format_fault_table_csv,
    format_mapping_table,
    format_table,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "available_experiments",
    "run_experiment",
    "run_experiment_result",
    "PAPER_FAULT_COUNTS",
    "FaultSimulationRow",
    "FaultSweepRunner",
    "simulate_fault_row",
    "simulate_fault_table",
    "HypercubeComparison",
    "compare_hypercube_debruijn",
    "format_csv",
    "format_fault_table",
    "format_fault_table_csv",
    "format_mapping_table",
    "format_table",
]
