"""repro.lint — the AST invariant auditor (``python -m repro lint``).

A stdlib-:mod:`ast` static analysis pass enforcing the repo-specific
invariants behind the reproduction's bit-for-bit determinism, cache
hygiene and server concurrency: see :mod:`repro.lint.rules` for the REP
rule catalogue and :mod:`repro.lint.engine` for the visitor framework,
``# repro: noqa[REPxxx]`` suppressions and the baseline workflow.  Wired
into CI as the ``analysis`` job; ``python -m repro lint src`` must stay
clean (empty baseline) at every commit.
"""

from .engine import (
    JSON_SCHEMA_VERSION,
    FileContext,
    Finding,
    LintResult,
    Rule,
    lint_paths,
    lint_source,
    load_baseline,
    parse_codes,
)
from .rules import all_rules

__all__ = [
    "JSON_SCHEMA_VERSION",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_codes",
]
