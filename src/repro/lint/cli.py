"""The ``repro lint`` subcommand: argument surface and report rendering.

Kept separate from :mod:`repro.cli` so the top-level CLI only pays for the
lint machinery when the subcommand actually runs (parity with the other
lazily imported subcommand bodies).
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import lint_paths, load_baseline, parse_codes
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to its subparser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to audit (default: src)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="diagnostic output format (json includes schema_version and "
        "per-rule statistics)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings (suppressed from the "
        "report and the exit code; the committed baseline is empty)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="REP0xx",
        help="run only these rule codes (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="REP0xx",
        help="skip these rule codes (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a findings-per-rule summary after the diagnostics",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``: 0 = clean, 1 = findings, 2 = usage error."""
    rules = all_rules()
    baseline = load_baseline(args.baseline) if args.baseline else set()
    result = lint_paths(
        args.paths,
        rules=rules,
        select=parse_codes(args.select),
        ignore=parse_codes(args.ignore),
        baseline=baseline,
    )

    if args.format == "json":
        print(json.dumps(result.as_dict(rules), indent=2))
    else:
        for finding in result.active:
            print(finding.render())
        summary = (
            f"{len(result.active)} finding(s) in {result.files} file(s)"
        )
        extras = []
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} noqa-suppressed")
        if result.baselined:
            extras.append(f"{len(result.baselined)} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        print(summary, file=sys.stderr)

    if args.statistics and args.format != "json":
        stats = result.statistics()
        by_code = {rule.code: rule for rule in rules}
        for code in sorted(by_code):
            count = stats.get(code, 0)
            print(f"{code} {by_code[code].name:<28} {count}", file=sys.stderr)

    return 1 if result.active else 0
