"""The REP rule catalogue: the reproduction's invariants, one checker each.

Every rule here encodes an invariant that protects the bit-for-bit
reproducibility of Tables 2.1/2.2 (or the liveness of the serving tier) and
that was violated at least once during PRs 2–5:

REP001
    Every :func:`functools.lru_cache` must be *bounded* (an explicit
    ``maxsize``) and *registered* with
    :func:`repro.engine.caches.register_cache` in its defining module, so
    the ``/stats`` cache audit can enumerate, snapshot and clear it.  PR 2
    found formerly unbounded caches across ``gf/`` and ``core/bounds.py``;
    this PR found every bounded one still invisible to the audit.

REP002
    No unseeded ``np.random.default_rng()`` and no legacy
    ``np.random.*`` global-state calls.  Every random stream must descend
    from an explicit seed or generator — the sweep determinism contract
    (identical rows for any worker count / batch width) is only as strong
    as its weakest stream.  ``network/faults.py`` carried unseeded
    fallbacks until this PR.

REP003
    Lazy shared-state initialisation (``if self._x is None: self._x = ...``)
    in server-reachable packages must happen under a held lock, or a cold
    table built concurrently can be observed half-initialised.  PR 5 locked
    ``topology/base.py``; this PR found ``words/codec.py`` and
    ``topology/kautz.py`` still bare.

REP004
    The :class:`~repro.engine.executor.KernelExecutor` is the *sole* owner
    of kernel launches and gather tables: outside the executor (and the
    modules that define/build the tables) nobody may call the ``msbfs``
    kernel entry points or touch ``successor_table``-family attributes.
    ``sweep.py`` carried its own dispatch heuristic until PR 5; this rule
    keeps measurement paths from diverging again.

REP005
    No blocking calls (``time.sleep``, synchronous subprocess/socket/file
    I/O) inside ``async def`` bodies under ``repro/server/`` — one blocked
    event loop stalls every coalesced request in flight.

REP006
    Raw ``assert`` is forbidden in ``src/`` (stripped under ``python -O``;
    a production server launched with ``-O`` would silently drop the
    checks).  Use the typed exceptions of :mod:`repro.exceptions`.

REP007
    Server/engine code must not hand-roll metric aggregation: accumulating
    ``time.perf_counter()`` deltas into ad-hoc instance attributes
    (``self._total += elapsed``, ``self._latencies.append(elapsed)``)
    bypasses :mod:`repro.obs` — the aggregate is unbounded, invisible to
    ``/metrics``, and usually lock-free.  PR 7 replaced three such
    accumulators (gateway latency list, batcher wait list, service latency
    totals) with registry-backed counters/histograms; this rule keeps new
    ones from growing back.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .engine import FileContext, Finding, Rule

__all__ = [
    "all_rules",
    "BoundedRegisteredCacheRule",
    "SeededRngRule",
    "LockedLazyInitRule",
    "ExecutorBypassRule",
    "BlockingInAsyncRule",
    "RawAssertRule",
    "AdHocMetricsRule",
]


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(call: ast.Call) -> str | None:
    return _dotted(call.func)


def _enclosing_function(ctx: FileContext, node: ast.AST) -> ast.AST | None:
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return anc
    return None


class BoundedRegisteredCacheRule(Rule):
    """REP001 — ``lru_cache`` must be bounded and registered with the audit."""

    code = "REP001"
    name = "bounded-registered-cache"
    rationale = (
        "functools.lru_cache must set an explicit maxsize and be registered "
        "via caches.register_cache so the /stats audit sees it"
    )

    _CACHE_DECORATORS = {"lru_cache", "functools.lru_cache"}
    _UNBOUNDED_DECORATORS = {"cache", "functools.cache"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        registered = self._registered_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                yield from self._check_decorator(ctx, node, deco, registered)

    def _registered_names(self, ctx: FileContext) -> set[str]:
        """Function names passed to a ``register_cache(name, fn)`` call."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _call_name(node)
            if callee is None or callee.split(".")[-1] != "register_cache":
                continue
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                names.add(node.args[1].id)
        return names

    def _check_decorator(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        deco: ast.AST,
        registered: set[str],
    ) -> Iterator[Finding]:
        name = _dotted(deco) if not isinstance(deco, ast.Call) else _call_name(deco)
        if name in self._UNBOUNDED_DECORATORS:
            yield self.finding(
                ctx, deco,
                f"functools.cache on {fn.name!r} is unbounded; use "
                "lru_cache(maxsize=...) and register it via caches.register_cache",
            )
            return
        if name not in self._CACHE_DECORATORS:
            return
        if not isinstance(deco, ast.Call):
            # bare @lru_cache: maxsize defaults to 128 (bounded), but an
            # explicit size documents the intended budget — and the paren-
            # less form is one edit away from @cache.
            yield self.finding(
                ctx, deco,
                f"lru_cache on {fn.name!r} must set an explicit maxsize "
                "(bare @lru_cache hides the bound)",
            )
        else:
            maxsize = self._maxsize(deco)
            if maxsize is _MISSING:
                yield self.finding(
                    ctx, deco,
                    f"lru_cache on {fn.name!r} must set an explicit maxsize",
                )
            elif maxsize is None:
                yield self.finding(
                    ctx, deco,
                    f"lru_cache(maxsize=None) on {fn.name!r} is unbounded; "
                    "resident processes must bound every cache",
                )
        if fn.name not in registered:
            yield self.finding(
                ctx, fn,
                f"lru_cache {fn.name!r} is not registered with "
                "caches.register_cache; the /stats audit cannot see it",
            )

    @staticmethod
    def _maxsize(deco: ast.Call) -> object:
        if deco.args:
            first = deco.args[0]
            return first.value if isinstance(first, ast.Constant) else _BOUNDED
        for kw in deco.keywords:
            if kw.arg == "maxsize":
                return kw.value.value if isinstance(kw.value, ast.Constant) else _BOUNDED
        return _MISSING


#: sentinels for :meth:`BoundedRegisteredCacheRule._maxsize`
_MISSING = object()
_BOUNDED = object()  # non-constant expression: assume deliberately bounded


class SeededRngRule(Rule):
    """REP002 — every random stream must descend from an explicit seed."""

    code = "REP002"
    name = "seeded-rng"
    rationale = (
        "no unseeded np.random.default_rng() and no legacy np.random.* "
        "global-state calls: sweep determinism is per-stream"
    )

    #: modules where ambient randomness is acceptable (none today; the
    #: entry stays so future demo-only modules can be sanctioned visibly).
    sanctioned: tuple[str, ...] = ()

    _LEGACY_SAFE = {
        # np.random.X that construct or type explicit streams
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if self.sanctioned and ctx.in_path(*self.sanctioned):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            if name in ("np.random.default_rng", "numpy.random.default_rng",
                        "default_rng"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "unseeded np.random.default_rng(): pass an explicit "
                        "seed or require a Generator from the caller",
                    )
                continue
            for prefix in ("np.random.", "numpy.random."):
                if name.startswith(prefix):
                    attr = name[len(prefix):]
                    if "." not in attr and attr not in self._LEGACY_SAFE:
                        yield self.finding(
                            ctx, node,
                            f"legacy global-state call np.random.{attr}(): "
                            "use an explicit np.random.Generator",
                        )
                    break


class LockedLazyInitRule(Rule):
    """REP003 — lazy shared-state init must happen under a held lock."""

    code = "REP003"
    name = "locked-lazy-init"
    rationale = (
        "lazy `if self._x is None: self._x = ...` builds on server-reachable "
        "shared objects must be lock-guarded"
    )

    #: packages whose instances are shared across server threads (topology
    #: registry singletons, process-wide codecs, the engine/server layers).
    applies_to: tuple[str, ...] = (
        "repro/topology/",
        "repro/words/",
        "repro/engine/",
        "repro/server/",
        "repro/obs/",
        "repro/churn/",
        "repro/analysis/fault_simulation",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_path(*self.applies_to):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            attr = self._lazy_test_attr(node.test)
            if attr is None:
                continue
            for assign in self._self_assignments(node, attr):
                if not self._under_lock(ctx, assign):
                    yield self.finding(
                        ctx, assign,
                        f"lazy initialisation of self.{attr} is not guarded "
                        "by a lock (shared instances race on cold builds)",
                    )

    @staticmethod
    def _lazy_test_attr(test: ast.AST) -> str | None:
        """``self._x`` when the test is exactly ``self._x is None``."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Attribute)
            and isinstance(test.left.value, ast.Name)
            and test.left.value.id == "self"
        ):
            return test.left.attr
        return None

    @staticmethod
    def _self_assignments(branch: ast.If, attr: str) -> Iterator[ast.AST]:
        for node in ast.walk(branch):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == attr
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield node
                    break

    @staticmethod
    def _under_lock(ctx: FileContext, node: ast.AST) -> bool:
        """True when an ancestor ``with`` acquires something lock-like."""
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    name = _dotted(item.context_expr) or _dotted(
                        getattr(item.context_expr, "func", ast.Constant(None))
                    )
                    if name is not None and "lock" in name.lower():
                        return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # don't credit a lock held in an *outer* function scope
                return False
        return False


class ExecutorBypassRule(Rule):
    """REP004 — only the executor may launch kernels or touch gather tables."""

    code = "REP004"
    name = "executor-bypass"
    rationale = (
        "msbfs kernel calls and gather-table access outside "
        "engine/executor.py let measurement paths diverge"
    )

    #: modules that legitimately launch kernels / build or expose tables.
    allowed: tuple[str, ...] = (
        "repro/engine/executor.py",
        "repro/graphs/msbfs.py",
        "repro/graphs/components.py",
        "repro/topology/",
        "repro/words/codec.py",
    )

    _KERNEL_CALLS = {
        "batched_root_stats",
        "pack_fault_lanes",
        "pack_mask_lanes",
        "lane_removed_mask",
        "bfs_levels_table",
    }
    _TABLE_ATTRS = {
        "successor_table",
        "predecessor_table",
        "neighbour_table",
        "predecessor_columns",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_path(*self.allowed):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name is not None and name.split(".")[-1] in self._KERNEL_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"direct kernel call {name.split('.')[-1]}() outside "
                        "engine/executor.py: route measurements through "
                        "KernelExecutor so they cannot diverge",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in self._TABLE_ATTRS
            ):
                yield self.finding(
                    ctx, node,
                    f"gather-table access .{node.attr} outside the executor/"
                    "topology layers: tables are owned by KernelExecutor",
                )


class BlockingInAsyncRule(Rule):
    """REP005 — no blocking calls inside ``async def`` under repro/server/."""

    code = "REP005"
    name = "no-blocking-in-async"
    rationale = (
        "time.sleep / synchronous subprocess, socket and file I/O inside "
        "async def stalls every request coalesced on the event loop"
    )

    applies_to: tuple[str, ...] = ("repro/server/",)

    _BLOCKING = {
        "time.sleep",
        "open",
        "io.open",
        "socket.socket",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "http.client.HTTPConnection",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_path(*self.applies_to):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in self._BLOCKING:
                continue
            fn = _enclosing_function(ctx, node)
            if isinstance(fn, ast.AsyncFunctionDef):
                yield self.finding(
                    ctx, node,
                    f"blocking call {name}() inside async def {fn.name!r}: "
                    "use the asyncio equivalent or run_in_executor",
                )


class RawAssertRule(Rule):
    """REP006 — raw ``assert`` is forbidden in library code."""

    code = "REP006"
    name = "no-raw-assert"
    rationale = (
        "assert is stripped under python -O: enforce contracts with the "
        "typed exceptions of repro.exceptions"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx, node,
                    "raw assert (stripped under -O): raise a typed exception "
                    "from repro.exceptions instead",
                )


class AdHocMetricsRule(Rule):
    """REP007 — no hand-rolled timing accumulators outside ``repro.obs``."""

    code = "REP007"
    name = "no-adhoc-metrics"
    rationale = (
        "perf_counter deltas accumulated into ad-hoc instance attributes "
        "bypass repro.obs: unbounded, lock-free, invisible to /metrics"
    )

    #: the layers whose aggregates must live in the metrics registry.  The
    #: registry itself (``repro/obs/``) is the one place allowed to hold
    #: raw timing state.
    applies_to: tuple[str, ...] = ("repro/server/", "repro/engine/")

    _TIMER_CALLS = {
        "time.perf_counter", "perf_counter",
        "time.perf_counter_ns", "perf_counter_ns",
        "time.monotonic", "monotonic",
        "time.time",
    }
    _SINK_METHODS = {"append", "extend", "add", "insert"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_path(*self.applies_to) or ctx.in_path("repro/obs/"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    # -- per-function taint analysis -------------------------------------------
    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        nodes = list(self._own_nodes(fn))
        tainted = self._tainted_names(nodes)
        for node in nodes:
            if (
                isinstance(node, ast.AugAssign)
                and self._self_attr(node.target) is not None
                and self._expr_tainted(node.value, tainted)
            ):
                attr = self._self_attr(node.target)
                yield self.finding(
                    ctx, node,
                    f"ad-hoc timing accumulator self.{attr} += "
                    "perf_counter delta: record it in a repro.obs "
                    "Counter/Histogram instead",
                )
            elif isinstance(node, ast.Call):
                sink = self._self_sink(node)
                if sink is not None and any(
                    self._expr_tainted(arg, tainted) for arg in node.args
                ):
                    attr, method = sink
                    yield self.finding(
                        ctx, node,
                        f"ad-hoc timing reservoir self.{attr}.{method}"
                        "(perf_counter delta): use a repro.obs Histogram "
                        "(bounded sample window) instead",
                    )

    @staticmethod
    def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """Every node of ``fn``'s own body, not descending into nested defs."""
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _tainted_names(self, nodes: list[ast.AST]) -> set[str]:
        """Local names whose value derives from a monotonic-clock reading.

        Iterated to a fixpoint so chains like ``a = perf_counter()``;
        ``b = a - start``; ``self._x.append(b)`` resolve regardless of the
        order :func:`ast.walk` visits them.
        """
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                if not self._expr_tainted(value, tainted):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in tainted:
                        tainted.add(target.id)
                        changed = True
        return tainted

    def _expr_tainted(self, expr: ast.AST, tainted: set[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in self._TIMER_CALLS:
                    return True
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tainted
            ):
                return True
        return False

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        """``x`` for a ``self.x`` attribute target, else ``None``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _self_sink(self, call: ast.Call) -> tuple[str, str] | None:
        """``(attr, method)`` for ``self.attr.append(...)``-style calls."""
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._SINK_METHODS:
            return None
        attr = self._self_attr(func.value)
        return None if attr is None else (attr, func.attr)


def all_rules() -> list[Rule]:
    """The full catalogue, in code order."""
    return [
        BoundedRegisteredCacheRule(),
        SeededRngRule(),
        LockedLazyInitRule(),
        ExecutorBypassRule(),
        BlockingInAsyncRule(),
        RawAssertRule(),
        AdHocMetricsRule(),
    ]
