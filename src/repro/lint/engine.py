"""The ``repro.lint`` rule engine: parse once, run every rule, report.

The reproduction's correctness story rests on a handful of repo-specific
invariants — seeded RNG streams, bounded *and audited* caches, lock-guarded
lazy shared state, the :class:`~repro.engine.executor.KernelExecutor` as the
sole owner of kernel tables, no blocking work on the server's event loop,
and no ``assert``-enforced contracts that ``python -O`` would strip.  Each
was violated at least once in PRs 2–5 and fixed by hand; this engine checks
them mechanically on every run of ``python -m repro lint``.

Design: plain :mod:`ast`, no third-party dependency.  A
:class:`FileContext` parses one file and precomputes the structures most
rules need (parent links, enclosing-``with`` chains, source lines for
``noqa`` scanning); each :class:`Rule` walks the tree and yields
:class:`Finding` records.  Findings pass through three filters before they
reach the report: ``--select``/``--ignore`` code selection, per-line
``# repro: noqa[REPxxx]`` suppressions, and the committed baseline of
grandfathered findings (:func:`load_baseline`).  The baseline is *empty* at
HEAD — every pre-existing violation was fixed, not grandfathered — but the
mechanism exists so future rules can land before their backlog is burned
down.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any

from ..exceptions import InvalidParameterError

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintResult",
    "load_baseline",
    "lint_paths",
    "lint_source",
    "parse_codes",
    "JSON_SCHEMA_VERSION",
]

#: Version of the ``--format json`` document layout.  Bump on any change to
#: the emitted keys so BENCH-style trend tooling can detect layout drift.
JSON_SCHEMA_VERSION = 1

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[REP001,REP004]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

_CODE_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule code, location, and a one-line message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def key(self) -> str:
        """Stable identity used by baseline matching (line numbers drift on
        unrelated edits, so the baseline should be regenerated — not hand
        -edited — whenever grandfathered files change)."""
        return f"{self.path}:{self.line}:{self.rule}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """One parsed file plus the precomputed lookups rules share.

    ``path`` is the *virtual* posix path rules scope on (suffix matching
    against e.g. ``repro/server/``); fixture tests lint snippet sources
    under virtual paths like ``src/repro/server/example.py`` to exercise a
    rule's scoping without files living there.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = str(PurePosixPath(path))
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- tree navigation -------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors from the immediate parent up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def in_path(self, *suffixes: str) -> bool:
        """True when this file's path contains any of the given fragments."""
        return any(fragment in self.path for fragment in suffixes)

    # -- suppressions ----------------------------------------------------------
    def noqa_codes(self, line: int) -> set[str] | None:
        """Codes suppressed on a physical line.

        Returns ``None`` when there is no ``repro: noqa`` comment, the empty
        set for a bare ``# repro: noqa`` (suppresses every rule), otherwise
        the explicit code set.
        """
        if not 1 <= line <= len(self.lines):
            return None
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return None
        codes = match.group("codes")
        if codes is None:
            return set()
        return {c.strip() for c in codes.split(",") if c.strip()}

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.noqa_codes(finding.line)
        if codes is None:
            return False
        return not codes or finding.rule in codes


class Rule:
    """Base class for one invariant checker.

    Subclasses set ``code`` / ``name`` / ``rationale`` and implement
    :meth:`check`.  Rules must be pure functions of the
    :class:`FileContext`: no filesystem access, no imports of the linted
    code (the auditor must be able to run on files that would not import).
    """

    code: str = ""
    name: str = ""
    #: one-line statement of the invariant, surfaced by ``--statistics``.
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class LintResult:
    """Everything one lint run produced, pre-filtered for reporting."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def active(self) -> list[Finding]:
        """Findings that gate the exit code (parse failures always gate)."""
        return self.parse_errors + self.findings

    def statistics(self) -> dict[str, int]:
        """Per-rule counts over the *active* findings, sorted by code."""
        counts: dict[str, int] = {}
        for f in self.active:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self, rules: Sequence[Rule]) -> dict[str, Any]:
        """The ``--format json`` document (layout: :data:`JSON_SCHEMA_VERSION`)."""
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "repro.lint",
            "files": self.files,
            "rules": {
                r.code: {"name": r.name, "rationale": r.rationale} for r in rules
            },
            "findings": [f.as_dict() for f in self.active],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "statistics": self.statistics(),
        }


def parse_codes(values: Iterable[str]) -> set[str]:
    """Parse ``--select``/``--ignore`` values: repeatable, comma-separated."""
    codes: set[str] = set()
    for value in values:
        for part in value.split(","):
            part = part.strip().upper()
            if not part:
                continue
            if not _CODE_RE.match(part):
                raise InvalidParameterError(
                    f"invalid rule code {part!r}: expected REPxxx (e.g. REP002)"
                )
            codes.add(part)
    return codes


def load_baseline(path: str | Path) -> set[str]:
    """Load the grandfathered finding keys from a baseline JSON file.

    Layout: ``{"schema_version": 1, "entries": ["path:line:RULE", ...]}``.
    An empty entry list (the committed state at HEAD) grandfathers nothing.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "entries" not in data:
        raise InvalidParameterError(
            f"baseline {path}: expected an object with an 'entries' list"
        )
    entries = data["entries"]
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise InvalidParameterError(f"baseline {path}: 'entries' must be strings")
    return set(entries)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            yield path
        else:
            raise InvalidParameterError(f"no such file or directory: {path}")


def _run_rules(
    ctx: FileContext,
    rules: Sequence[Rule],
    result: LintResult,
    baseline: set[str],
) -> None:
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                result.suppressed.append(finding)
            elif finding.key in baseline:
                result.baselined.append(finding)
            else:
                result.findings.append(finding)


def _selected(rules: Sequence[Rule], select: set[str], ignore: set[str]) -> list[Rule]:
    chosen = [r for r in rules if not select or r.code in select]
    chosen = [r for r in chosen if r.code not in ignore]
    unknown = (select | ignore) - {r.code for r in rules}
    if unknown:
        known = ", ".join(sorted(r.code for r in rules))
        raise InvalidParameterError(
            f"unknown rule code(s) {', '.join(sorted(unknown))}; known: {known}"
        )
    return chosen


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
    baseline: set[str] | None = None,
) -> LintResult:
    """Lint one in-memory source under a virtual path (the fixture-test API)."""
    from .rules import all_rules

    result = LintResult(files=1)
    active_rules = list(rules) if rules is not None else all_rules()
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        result.parse_errors.append(
            Finding("REP000", str(PurePosixPath(path)), exc.lineno or 1,
                    (exc.offset or 0) + 1, f"file does not parse: {exc.msg}")
        )
        return result
    _run_rules(ctx, active_rules, result, baseline or set())
    return result


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    baseline: set[str] | None = None,
) -> LintResult:
    """Lint files/directories and return the aggregated :class:`LintResult`."""
    from .rules import all_rules

    active_rules = _selected(
        list(rules) if rules is not None else all_rules(),
        select or set(),
        ignore or set(),
    )
    result = LintResult()
    baseline_keys = baseline or set()
    for file_path in iter_python_files(paths):
        result.files += 1
        virtual = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = FileContext(virtual, source)
        except SyntaxError as exc:
            result.parse_errors.append(
                Finding("REP000", virtual, exc.lineno or 1, (exc.offset or 0) + 1,
                        f"file does not parse: {exc.msg}")
            )
            continue
        _run_rules(ctx, active_rules, result, baseline_keys)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.parse_errors.sort(key=lambda f: (f.path, f.line))
    return result
