"""Words over the alphabet ``Z_d`` and conversions between encodings.

The nodes of the De Bruijn graph ``B(d, n)`` are the ``d**n`` words of length
``n`` over the alphabet ``Z_d = {0, 1, ..., d-1}``.  Throughout the package a
*word* is represented in one of two interchangeable encodings:

``tuple`` encoding
    A tuple of ``n`` Python ints, most-significant digit first, e.g. the node
    ``1120`` of ``B(3, 4)`` is ``(1, 1, 2, 0)``.  This is the readable,
    reference encoding used by the algorithmic (Chapter 2/3) code.

``int`` encoding
    The value of the word read as a base-``d`` number,
    ``x_1 d^{n-1} + ... + x_n``, i.e. ``1120 -> 1*27 + 1*9 + 2*3 + 0 = 42``.
    This is the compact encoding used by the vectorized (numpy) fast paths in
    :mod:`repro.graphs` and :mod:`repro.analysis`.

The paper orders words "by viewing them as base-d numbers"; the int encoding
therefore realises exactly the order used to pick canonical necklace
representatives and to order necklaces inside the modified tree ``D``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import AlphabetError, InvalidParameterError

__all__ = [
    "Word",
    "validate_alphabet",
    "validate_word",
    "word_to_int",
    "int_to_word",
    "all_words",
    "iter_words",
    "random_word",
    "words_as_array",
    "weight",
    "letter_count",
    "constant_word",
    "alternating_word",
]

#: Type alias used throughout the package for tuple-encoded words.
Word = tuple[int, ...]


def validate_alphabet(d: int) -> int:
    """Validate an alphabet size ``d`` and return it.

    Parameters
    ----------
    d:
        The alphabet size.  Must be an integer ``>= 2``.

    Raises
    ------
    InvalidParameterError
        If ``d`` is not an integer at least 2.
    """
    if not isinstance(d, (int, np.integer)) or isinstance(d, bool):
        raise InvalidParameterError(f"alphabet size must be an int, got {d!r}")
    if d < 2:
        raise InvalidParameterError(
            f"alphabet size must be >= 2, got {d} "
            f"(B(1, n) degenerates to a single self-loop node; the encoding "
            f"helpers word_to_int/int_to_word still accept d = 1 directly)"
        )
    return int(d)


def validate_word(word: Sequence[int], d: int) -> Word:
    """Validate that ``word`` is a word over ``Z_d`` and return it as a tuple.

    Raises
    ------
    AlphabetError
        If any digit lies outside ``{0, ..., d-1}``.
    InvalidParameterError
        If the word is empty.
    """
    d = validate_alphabet(d)
    w = tuple(int(x) for x in word)
    if len(w) == 0:
        raise InvalidParameterError("words must be non-empty")
    for x in w:
        if not 0 <= x < d:
            raise AlphabetError(f"digit {x} outside alphabet Z_{d} in word {w}")
    return w


def word_to_int(word: Sequence[int], d: int) -> int:
    """Return the int encoding of ``word`` (base-``d``, most-significant first).

    Accepts the degenerate unary alphabet ``d = 1`` (every word encodes to
    ``0``).  Digits outside ``{0, ..., d-1}`` raise :class:`AlphabetError`
    rather than silently producing the encoding of a different word, and the
    empty word is rejected — there is no length-0 node in any ``B(d, n)``.

    >>> word_to_int((1, 1, 2, 0), 3)
    42
    """
    if d < 1:
        raise InvalidParameterError(f"alphabet size must be >= 1, got {d}")
    value = 0
    count = 0
    for x in word:
        x = int(x)
        if not 0 <= x < d:
            raise AlphabetError(f"digit {x} outside alphabet Z_{d} in word {tuple(word)}")
        value = value * d + x
        count += 1
    if count == 0:
        raise InvalidParameterError("words must be non-empty")
    return value


def int_to_word(value: int, d: int, n: int) -> Word:
    """Return the tuple encoding of the length-``n`` word with int encoding ``value``.

    >>> int_to_word(42, 3, 4)
    (1, 1, 2, 0)
    """
    if d < 1:
        raise InvalidParameterError(f"alphabet size must be >= 1, got {d}")
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    if value < 0 or value >= d**n:
        raise InvalidParameterError(
            f"value {value} is not a valid encoding of a length-{n} word over Z_{d}"
        )
    digits = [0] * n
    for i in range(n - 1, -1, -1):
        digits[i] = value % d
        value //= d
    return tuple(digits)


def iter_words(d: int, n: int) -> Iterator[Word]:
    """Iterate over all ``d**n`` words of length ``n`` in base-``d`` numeric order."""
    d = validate_alphabet(d)
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    word = [0] * n
    total = d**n
    for _ in range(total):
        yield tuple(word)
        # increment the base-d counter, least-significant digit last
        i = n - 1
        while i >= 0:
            word[i] += 1
            if word[i] < d:
                break
            word[i] = 0
            i -= 1


def all_words(d: int, n: int) -> list[Word]:
    """Return the list of all words of length ``n`` over ``Z_d`` in numeric order."""
    return list(iter_words(d, n))


def words_as_array(d: int, n: int) -> np.ndarray:
    """Return all words as a ``(d**n, n)`` uint8/int array of digits.

    Row ``i`` contains the digits of the word with int encoding ``i``.  The
    construction is fully vectorized and is the preferred way to materialise
    the node set for large graphs.
    """
    d = validate_alphabet(d)
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    values = np.arange(d**n, dtype=np.int64)
    powers = d ** np.arange(n - 1, -1, -1, dtype=np.int64)
    digits = (values[:, None] // powers[None, :]) % d
    dtype = np.uint8 if d <= 255 else np.int64
    return digits.astype(dtype)


def random_word(d: int, n: int, rng: np.random.Generator | int) -> Word:
    """Return a uniformly random word of length ``n`` over ``Z_d``.

    ``rng`` is required — a Generator or an explicit integer seed.  The
    historical unseeded fallback broke the package's determinism contract
    (every random stream descends from an explicit seed; REP002).
    """
    d = validate_alphabet(d)
    if not isinstance(rng, np.random.Generator):
        if not isinstance(rng, (int, np.integer)):
            raise InvalidParameterError(
                "random_word requires an explicit np.random.Generator or seed"
            )
        rng = np.random.default_rng(int(rng))
    return tuple(int(x) for x in rng.integers(0, d, size=n))


def weight(word: Sequence[int]) -> int:
    """Return ``wt(x)``: the sum of the digits of ``word`` (paper §1.4)."""
    return int(sum(word))


def letter_count(word: Sequence[int], letter: int) -> int:
    """Return ``wt_a(x)``: the number of occurrences of ``letter`` in ``word``."""
    return sum(1 for x in word if x == letter)


def constant_word(letter: int, n: int) -> Word:
    """Return the word ``letter**n`` (written ``a^n`` in the paper)."""
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    return (int(letter),) * n


def alternating_word(a: int, b: int, n: int) -> Word:
    """Return the alternating word ``abab...`` of length ``n``.

    This is the word written ``\\widehat{ab}`` in Section 3.2.3 of the paper:
    ``ab...ab`` when ``n`` is even and ``ab...aba`` when ``n`` is odd.
    """
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    return tuple(int(a) if i % 2 == 0 else int(b) for i in range(n))


def as_int_iterable(words: Iterable[Sequence[int]], d: int) -> list[int]:
    """Convert an iterable of tuple-encoded words to their int encodings."""
    return [word_to_int(w, d) for w in words]
