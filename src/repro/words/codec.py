"""Integer-coded word kernel: O(1) word algebra for the hot paths.

Every hot path of the package — necklace enumeration, ``B*`` construction,
FFC successor computation, the fault sweeps of Tables 2.1/2.2 — ultimately
manipulates length-``n`` words over ``Z_d``.  The readable tuple encoding
costs ``O(n)`` per rotation/comparison, which caps fault sweeps at a few
thousand nodes.  :class:`WordCodec` replaces that with base-``d`` integer
codes plus a handful of precomputed whole-graph tables, so that the word
operations the algorithms actually perform become O(1) integer arithmetic or
single array lookups:

``rotate1``
    ``rotate1[x]`` is the code of the left rotation ``pi(x)`` — the necklace
    successor of ``x`` (Chapter 2's default FFC successor).
``rep``
    ``rep[x]`` is the code of the canonical (numerically minimal) necklace
    representative ``[x]``; two words lie on the same necklace iff their
    ``rep`` entries agree.  This realises the necklace partition of Chapter 2
    as one vectorized table.
``periods``
    ``periods[x]`` is the period of ``x`` (= the length of its necklace).

De Bruijn successor/predecessor moves need no table at all — they are the
arithmetic ``(x*d + a) mod d**n`` and ``x // d + a * d**(n-1)`` — but the
codec also caches the ``(d**n, d)`` successor/predecessor matrices used by
the vectorized BFS sweeps in :mod:`repro.graphs.components`.

Tuples remain the public boundary type everywhere; :meth:`WordCodec.encode`
and :meth:`WordCodec.decode` convert at the edges.  Codecs are cached by
``(d, n)`` via :func:`get_codec`, so the tables are built once per graph and
amortised across trials, protocol runs and benchmark iterations.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from functools import lru_cache

import numpy as np

from ..engine.caches import register_cache
from ..exceptions import InvalidParameterError
from .alphabet import Word, int_to_word, validate_alphabet, word_to_int

__all__ = ["WordCodec", "get_codec"]


class WordCodec:
    """Base-``d`` integer codec for the words of ``B(d, n)``.

    The instance precomputes the rotation, necklace-representative and period
    tables for all ``d**n`` words (a few vectorized numpy passes, ``O(n)``
    sweeps over an array of size ``d**n``) and caches the De Bruijn
    successor/predecessor matrices on first use.

    Examples
    --------
    >>> codec = get_codec(3, 4)
    >>> codec.encode((1, 1, 2, 0))
    42
    >>> codec.decode(42)
    (1, 1, 2, 0)
    >>> codec.decode(codec.rotate1[42])  # pi(1120) = 1201
    (1, 2, 0, 1)
    >>> codec.decode(codec.rep[42])      # [1120] = 0112
    (0, 1, 1, 2)
    """

    def __init__(self, d: int, n: int) -> None:
        self.d = validate_alphabet(d)
        if n < 1:
            raise InvalidParameterError(f"word length must be >= 1, got {n}")
        self.n = int(n)
        self.size = self.d**self.n
        #: ``d**(n-1)``: the place value of the leading digit.  ``x % high``
        #: is the length-``(n-1)`` suffix of ``x`` and ``x // high`` its
        #: leading digit — the ``alpha``/``w`` split of the paper's ``alpha w``.
        self.high = self.d ** (self.n - 1)
        dtype = np.int64 if self.size > np.iinfo(np.int32).max else np.int32
        self.dtype = dtype

        codes = np.arange(self.size, dtype=dtype)
        #: left-rotation-by-one table: ``rotate1[x] = pi(x)``.
        self.rotate1 = (codes % self.high) * self.d + codes // self.high
        self.rotate1.flags.writeable = False

        # Necklace representative: minimum over all n rotations, accumulated
        # with n-1 vectorized passes through the rotation table.  Period: the
        # first t with pi^t(x) = x, recorded during the same walk.
        rep = codes.copy()
        periods = np.zeros(self.size, dtype=np.int16)
        r = codes
        for t in range(1, self.n):
            r = self.rotate1[r]  # r = pi^t applied elementwise
            np.minimum(rep, r, out=rep)
            periods[(r == codes) & (periods == 0)] = t
        periods[periods == 0] = self.n
        #: necklace representative table: ``rep[x]`` = code of ``[x]``.
        self.rep = rep
        self.rep.flags.writeable = False
        #: period table: ``periods[x]`` = period of ``x`` (necklace length).
        self.periods = periods
        self.periods.flags.writeable = False

        self._powers = self.d ** np.arange(self.n - 1, -1, -1, dtype=np.int64)
        self._succ: np.ndarray | None = None
        self._pred: np.ndarray | None = None
        self._both: np.ndarray | None = None
        self._pred_cols: tuple[np.ndarray, ...] | None = None
        self._necklace_reps: np.ndarray | None = None
        # codecs are shared process-wide (get_codec's lru_cache) and the
        # server touches cold instances from several threads at once: the
        # lazy table builds below are lock-guarded so no reader ever sees a
        # half-built table (REP003).  RLock: neighbour_table composes the
        # successor/predecessor builds under the same guard.
        self._tables_lock = threading.RLock()

    # -- scalar word algebra -------------------------------------------------
    def encode(self, word: Sequence[int]) -> int:
        """Return the base-``d`` code of a tuple word (O(n), boundary only)."""
        return word_to_int(word, self.d)

    def decode(self, code: int) -> Word:
        """Return the tuple word of a code (O(n), boundary only)."""
        return int_to_word(int(code), self.d, self.n)

    def rotate(self, code: int, i: int = 1) -> int:
        """Return the code of ``pi^i(x)`` by pure arithmetic (no table walk)."""
        i %= self.n
        if i == 0:
            return int(code)
        highpow = self.d ** (self.n - i)
        head, tail = divmod(int(code), highpow)
        return tail * (self.d**i) + head

    def suffix(self, code: int) -> int:
        """The length-``(n-1)`` suffix ``w`` of ``x = alpha w``, as an int."""
        return int(code) % self.high

    def prefix(self, code: int) -> int:
        """The length-``(n-1)`` prefix ``w`` of ``x = w alpha``, as an int."""
        return int(code) // self.d

    def first_digit(self, code: int) -> int:
        """The leading digit ``alpha`` of ``x = alpha w``."""
        return int(code) // self.high

    def last_digit(self, code: int) -> int:
        """The trailing digit ``alpha`` of ``x = w alpha``."""
        return int(code) % self.d

    def successor(self, code: int, a: int) -> int:
        """The De Bruijn successor ``x_2...x_n a``: ``(x*d + a) mod d**n``."""
        return (int(code) * self.d + int(a)) % self.size

    def predecessor(self, code: int, a: int) -> int:
        """The De Bruijn predecessor ``a x_1...x_{n-1}``: ``x // d + a*d**(n-1)``."""
        return int(code) // self.d + int(a) * self.high

    # -- vectorized conversions ---------------------------------------------
    def encode_many(self, words: Iterable[Sequence[int]]) -> np.ndarray:
        """Encode an iterable of tuple words into an int array of codes."""
        arr = np.asarray([tuple(int(x) for x in w) for w in words], dtype=np.int64)
        if arr.size == 0:
            return np.empty(0, dtype=self.dtype)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise InvalidParameterError(
                f"expected length-{self.n} words, got shape {arr.shape}"
            )
        if arr.min() < 0 or arr.max() >= self.d:
            raise InvalidParameterError(f"digits outside alphabet Z_{self.d}")
        return (arr @ self._powers).astype(self.dtype)

    def decode_many(self, codes: np.ndarray) -> list[Word]:
        """Decode an array of codes into tuple words (vectorized digit split)."""
        values = np.asarray(codes, dtype=np.int64).reshape(-1)
        digits = (values[:, None] // self._powers[None, :]) % self.d
        return [tuple(row) for row in digits.tolist()]

    # -- cached De Bruijn move tables ----------------------------------------
    @property
    def successor_table(self) -> np.ndarray:
        """The read-only ``(d**n, d)`` successor matrix ``S[x, a] = (x*d + a) mod d**n``."""
        if self._succ is None:
            with self._tables_lock:
                if self._succ is None:
                    codes = np.arange(self.size, dtype=self.dtype)
                    base = (codes * self.d) % self.size
                    succ = base[:, None] + np.arange(self.d, dtype=self.dtype)[None, :]
                    succ.flags.writeable = False
                    self._succ = succ
        return self._succ

    @property
    def predecessor_table(self) -> np.ndarray:
        """The read-only ``(d**n, d)`` predecessor matrix ``P[x, a] = x // d + a*d**(n-1)``."""
        if self._pred is None:
            with self._tables_lock:
                if self._pred is None:
                    codes = np.arange(self.size, dtype=self.dtype)
                    base = codes // self.d
                    pred = (
                        base[:, None]
                        + np.arange(self.d, dtype=self.dtype)[None, :] * self.high
                    )
                    pred.flags.writeable = False
                    self._pred = pred
        return self._pred

    @property
    def neighbour_table(self) -> np.ndarray:
        """The read-only ``(d**n, 2d)`` matrix of successors and predecessors.

        Used by undirected (weak-connectivity) BFS sweeps, which would
        otherwise concatenate the two tables on every frontier expansion.
        """
        if self._both is None:
            with self._tables_lock:
                if self._both is None:
                    both = np.hstack([self.successor_table, self.predecessor_table])
                    both.flags.writeable = False
                    self._both = both
        return self._both

    @property
    def predecessor_columns(self) -> tuple[np.ndarray, ...]:
        """The ``d`` columns of the predecessor matrix as contiguous arrays.

        The bit-parallel BFS kernel (:mod:`repro.graphs.msbfs`) expands a
        directed frontier by gathering once per in-digit; column slices of
        the ``(d**n, d)`` matrix are strided, so the gathers run measurably
        faster on these cached contiguous copies.
        """
        if self._pred_cols is None:
            with self._tables_lock:
                if self._pred_cols is None:
                    pred = self.predecessor_table
                    cols = tuple(
                        np.ascontiguousarray(pred[:, a]) for a in range(self.d)
                    )
                    for col in cols:
                        col.flags.writeable = False
                    self._pred_cols = cols
        return self._pred_cols

    def necklace_member_matrix(self, codes: np.ndarray) -> np.ndarray:
        """All rotations of each code: shape ``(n,) + codes.shape``.

        Row ``i`` holds ``pi^i`` applied elementwise, so the flattened result
        is exactly the union of the necklaces of ``codes`` (with repeats for
        periodic words).  This is the scatter-friendly dual of
        :meth:`faulty_necklace_mask`: marking these members removed produces
        the identical mask, but for a *batch* of small fault sets it costs
        ``n`` tiny gathers instead of one ``isin`` over all ``d**n`` codes
        per fault set — the form the bit-packed fault lanes are built from.
        """
        codes = np.asarray(codes, dtype=np.int64)
        members = np.empty((self.n,) + codes.shape, dtype=np.int64)
        members[0] = codes
        for i in range(1, self.n):
            members[i] = self.rotate1[members[i - 1]]
        return members

    # -- necklace machinery ---------------------------------------------------
    def necklace_reps(self) -> np.ndarray:
        """Codes of all necklace representatives, ascending (read-only, cached)."""
        if self._necklace_reps is None:
            with self._tables_lock:
                if self._necklace_reps is None:
                    codes = np.arange(self.size, dtype=self.dtype)
                    reps = codes[self.rep == codes]
                    reps.flags.writeable = False
                    self._necklace_reps = reps
        return self._necklace_reps

    def necklace_members(self, code: int) -> list[int]:
        """The distinct rotations of ``code`` (its necklace), in traversal order."""
        members = [int(code)]
        current = int(self.rotate1[int(code)])
        while current != int(code):
            members.append(current)
            current = int(self.rotate1[current])
        return members

    def faulty_necklace_mask(self, fault_codes: np.ndarray | Sequence[int]) -> np.ndarray:
        """Boolean mask over all codes: True where the word's necklace contains a fault.

        This is the paper's "a necklace is deemed faulty if it contains a
        faulty node", evaluated for the whole graph with one ``isin`` over the
        representative table instead of a Python walk per necklace.
        """
        faults = np.asarray(fault_codes, dtype=self.dtype).reshape(-1)
        if faults.size == 0:
            return np.zeros(self.size, dtype=bool)
        if faults.min() < 0 or faults.max() >= self.size:
            raise InvalidParameterError("fault code outside node range")
        return np.isin(self.rep, self.rep[faults])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WordCodec(d={self.d}, n={self.n}, size={self.size})"


@lru_cache(maxsize=6)
def get_codec(d: int, n: int) -> WordCodec:
    """Return the cached :class:`WordCodec` for ``B(d, n)``.

    The cache is deliberately small: each codec holds ``O(d**n)`` table
    entries, and the workloads of interest (a fault sweep, a benchmark run)
    revisit the same one or two graphs thousands of times.
    """
    return WordCodec(int(d), int(n))


register_cache("words.get_codec", get_codec)
