"""Necklaces: the rotation cycles ``N(x)`` that partition the De Bruijn graph.

Chapter 2 of the paper partitions the nodes of ``B(d, n)`` into *necklaces*:
``N(x)`` is the cycle obtained by repeatedly rotating the digits of ``x``
left by one position.  Each necklace is a directed cycle of ``B(d, n)`` whose
length equals the period of any of its members and therefore divides ``n``.
The fault-free-cycle algorithm of Chapter 2 operates on necklaces (a necklace
is "faulty" when any of its nodes is faulty) and the counting results of
Chapter 4 count them.

This module provides a small value class :class:`Necklace`, constructors from
arbitrary member words, and enumeration of all necklaces of ``B(d, n)`` using
the Fredricksen–Kessler–Maiorana (FKM) algorithm referenced by the paper
([FM78]).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import total_ordering

from ..exceptions import InvalidParameterError
from .alphabet import Word, validate_alphabet, validate_word, word_to_int
from .rotation import distinct_rotations, min_rotation, period

__all__ = [
    "Necklace",
    "necklace_of",
    "iter_necklaces",
    "all_necklaces",
    "necklace_partition",
    "faulty_necklaces",
    "necklace_lengths_histogram",
    "iter_necklace_representatives",
]


@total_ordering
@dataclass(frozen=True)
class Necklace:
    """The necklace ``[x]`` of ``B(d, n)``: a rotation cycle of words.

    Attributes
    ----------
    representative:
        The canonical (numerically minimal) member, written ``[x]`` in the
        paper.  Two necklaces are equal iff their representatives are equal.
    d:
        Alphabet size of the ambient De Bruijn graph.

    Examples
    --------
    >>> nk = necklace_of((1, 1, 2, 0), 3)
    >>> nk.representative
    (0, 1, 1, 2)
    >>> nk.nodes
    ((1, 1, 2, 0), (1, 2, 0, 1), (2, 0, 1, 1), (0, 1, 1, 2))
    >>> len(nk)
    4
    """

    representative: Word
    d: int

    def __post_init__(self) -> None:
        rep = validate_word(self.representative, self.d)
        if rep != min_rotation(rep):
            raise InvalidParameterError(
                f"{rep} is not the minimal rotation of its necklace; "
                f"use necklace_of() to construct a Necklace from any member"
            )
        object.__setattr__(self, "representative", rep)

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        """The necklace length (= period of its members); always divides ``n``."""
        return period(self.representative)

    def __iter__(self) -> Iterator[Word]:
        return iter(self.nodes)

    def __contains__(self, word: object) -> bool:
        if not isinstance(word, tuple):
            return False
        return word in self.nodes

    def __lt__(self, other: "Necklace") -> bool:
        if not isinstance(other, Necklace):
            return NotImplemented
        return self.representative < other.representative

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        digits = "".join(str(x) for x in self.representative)
        return f"Necklace([{digits}], d={self.d})"

    # -- derived views ----------------------------------------------------
    @property
    def n(self) -> int:
        """Word length of the ambient De Bruijn graph ``B(d, n)``."""
        return len(self.representative)

    @property
    def nodes(self) -> tuple[Word, ...]:
        """The member words in De Bruijn traversal order, ending at the representative.

        The ordering starts from the left rotation of the representative so
        that the tuple reads exactly like the paper's example
        ``N(1120) = [0112] = (1120, 1201, 2011, 0112)``.
        """
        rots = distinct_rotations(self.representative)
        # distinct_rotations yields rep, pi(rep), ...; shift so rep comes last.
        return tuple(rots[1:] + rots[:1])

    @property
    def node_set(self) -> frozenset[Word]:
        """The member words as a frozenset (order-free membership checks)."""
        return frozenset(distinct_rotations(self.representative))

    @property
    def representative_int(self) -> int:
        """Int encoding of the canonical representative (used for ordering)."""
        return word_to_int(self.representative, self.d)

    def successor_in_necklace(self, word: Sequence[int]) -> Word:
        """Return the necklace successor of ``word``: its left rotation.

        The necklace successor of ``alpha w`` is ``w alpha`` — the default
        successor used by Step 3 of the FFC algorithm when no modified-tree
        edge diverts the cycle to another necklace.
        """
        w = validate_word(word, self.d)
        if w not in self.node_set:
            raise InvalidParameterError(f"{w} is not a member of {self!r}")
        return w[1:] + w[:1] if len(self) > 1 else w

    def contains_any(self, words: Iterable[Sequence[int]]) -> bool:
        """Return True if any of ``words`` lies on this necklace."""
        members = self.node_set
        return any(tuple(w) in members for w in words)


def necklace_of(word: Sequence[int], d: int) -> Necklace:
    """Return the necklace ``N(word)`` containing ``word`` in ``B(d, n)``."""
    w = validate_word(word, d)
    return Necklace(min_rotation(w), validate_alphabet(d))


def iter_necklace_representatives(d: int, n: int) -> Iterator[Word]:
    """Yield the canonical representative of every necklace of ``B(d, n)``.

    Uses the FKM (Fredricksen–Kessler–Maiorana) algorithm, which generates
    all *prenecklaces* in lexicographic order in amortised O(1) per word and
    emits a word exactly when its length ``n`` completion is the minimal
    rotation of its necklace.  Representatives are produced in increasing
    numeric order.
    """
    d = validate_alphabet(d)
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")

    a = [0] * (n + 1)
    results: list[Word] = []

    def gen(t: int, p: int) -> None:
        if t > n:
            if n % p == 0:
                results.append(tuple(a[1 : n + 1]))
        else:
            a[t] = a[t - p]
            gen(t + 1, p)
            for j in range(a[t - p] + 1, d):
                a[t] = j
                gen(t + 1, t)

    gen(1, 1)
    yield from results


def iter_necklaces(d: int, n: int) -> Iterator[Necklace]:
    """Yield every necklace of ``B(d, n)`` in increasing representative order."""
    for rep in iter_necklace_representatives(d, n):
        yield Necklace(rep, d)


def all_necklaces(d: int, n: int) -> list[Necklace]:
    """Return the list of all necklaces of ``B(d, n)``."""
    return list(iter_necklaces(d, n))


def necklace_partition(d: int, n: int) -> dict[Word, Necklace]:
    """Return a mapping from every word of ``B(d, n)`` to its necklace.

    The mapping realises the partition of the ``d**n`` nodes into disjoint
    rotation cycles on which the whole of Chapter 2 rests.
    """
    partition: dict[Word, Necklace] = {}
    for nk in iter_necklaces(d, n):
        for node in nk.node_set:
            partition[node] = nk
    return partition


def faulty_necklaces(faults: Iterable[Sequence[int]], d: int) -> set[Necklace]:
    """Return the set of necklaces containing at least one of ``faults``.

    This realises the paper's convention that "a necklace is deemed faulty if
    it contains a faulty node".
    """
    return {necklace_of(f, d) for f in faults}


def necklace_lengths_histogram(d: int, n: int) -> dict[int, int]:
    """Return ``{length: count}`` over all necklaces of ``B(d, n)``.

    Cross-checked in the test-suite against the closed-form counts of
    Chapter 4 (:mod:`repro.core.counting`).
    """
    hist: dict[int, int] = {}
    for rep in iter_necklace_representatives(d, n):
        t = period(rep)
        hist[t] = hist.get(t, 0) + 1
    return hist
