"""Word and necklace algebra over the alphabet ``Z_d``.

This subpackage is the lowest layer of the library: plain combinatorics on
d-ary words (rotations, periods, canonical forms, necklace enumeration) with
no graph machinery.  Everything in :mod:`repro.graphs` and :mod:`repro.core`
builds on it.
"""

from .alphabet import (
    Word,
    all_words,
    alternating_word,
    constant_word,
    int_to_word,
    iter_words,
    letter_count,
    random_word,
    validate_alphabet,
    validate_word,
    weight,
    word_to_int,
    words_as_array,
)
from .codec import WordCodec, get_codec
from .necklaces import (
    Necklace,
    all_necklaces,
    faulty_necklaces,
    iter_necklace_representatives,
    iter_necklaces,
    necklace_lengths_histogram,
    necklace_of,
    necklace_partition,
)
from .rotation import (
    all_rotations,
    aperiodic_root,
    concatenation_power,
    distinct_rotations,
    is_aperiodic,
    min_rotation,
    min_rotation_index,
    period,
    rotate_left,
    rotate_left_int,
    rotate_right,
    rotate_right_int,
)

__all__ = [
    "Word",
    "all_words",
    "alternating_word",
    "constant_word",
    "int_to_word",
    "iter_words",
    "letter_count",
    "random_word",
    "validate_alphabet",
    "validate_word",
    "weight",
    "word_to_int",
    "words_as_array",
    "WordCodec",
    "get_codec",
    "Necklace",
    "all_necklaces",
    "faulty_necklaces",
    "iter_necklace_representatives",
    "iter_necklaces",
    "necklace_lengths_histogram",
    "necklace_of",
    "necklace_partition",
    "all_rotations",
    "aperiodic_root",
    "concatenation_power",
    "distinct_rotations",
    "is_aperiodic",
    "min_rotation",
    "min_rotation_index",
    "period",
    "rotate_left",
    "rotate_left_int",
    "rotate_right",
    "rotate_right_int",
]
