"""Rotation algebra on words: the operator ``pi^i`` of the paper.

The paper (Section 4.1) writes ``pi^i(x)`` for the left rotation of the word
``x`` by ``i`` positions, e.g. ``pi^2(0001) = 0100``.  Rotations generate the
*necklace* containing a word (Chapter 2), determine the butterfly partition
map (Section 3.4) and underpin the counting results of Chapter 4.

The fundamental facts implemented and tested here are:

* ``pi^{i+j}(x) = pi^i(pi^j(x))`` — rotations compose additively.
* The *period* of ``x`` is the least ``t > 0`` with ``pi^t(x) = x``; it always
  divides ``len(x)``.
* ``x`` has period ``t`` iff ``x = w^{n/t}`` for an *aperiodic* word ``w`` of
  length ``t`` (the Observation of Section 4.1).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import InvalidParameterError
from .alphabet import Word

__all__ = [
    "rotate_left",
    "rotate_right",
    "all_rotations",
    "distinct_rotations",
    "period",
    "is_aperiodic",
    "min_rotation",
    "min_rotation_index",
    "aperiodic_root",
    "rotate_left_int",
    "rotate_right_int",
    "concatenation_power",
]


def rotate_left(word: Sequence[int], i: int = 1) -> Word:
    """Return ``pi^i(word)``: the left rotation of ``word`` by ``i`` positions.

    >>> rotate_left((0, 0, 0, 1), 2)
    (0, 1, 0, 0)
    """
    w = tuple(word)
    n = len(w)
    if n == 0:
        raise InvalidParameterError("cannot rotate an empty word")
    i %= n
    return w[i:] + w[:i]


def rotate_right(word: Sequence[int], i: int = 1) -> Word:
    """Return ``pi^{-i}(word)``: the right rotation of ``word`` by ``i`` positions."""
    w = tuple(word)
    n = len(w)
    if n == 0:
        raise InvalidParameterError("cannot rotate an empty word")
    return rotate_left(w, n - (i % n))


def all_rotations(word: Sequence[int]) -> list[Word]:
    """Return the ``n`` left rotations ``[pi^0(x), pi^1(x), ..., pi^{n-1}(x)]``.

    The list may contain repeats when ``word`` is periodic; use
    :func:`distinct_rotations` for the set of distinct rotations (the nodes of
    the necklace ``N(x)``).
    """
    w = tuple(word)
    return [rotate_left(w, i) for i in range(len(w))]


def distinct_rotations(word: Sequence[int]) -> list[Word]:
    """Return the distinct rotations of ``word`` in traversal order.

    The result lists ``pi^0(x), pi^1(x), ..., pi^{t-1}(x)`` where ``t`` is the
    period of ``x``; these are exactly the nodes of the necklace ``N(x)`` in
    the order in which the De Bruijn cycle visits them.
    """
    w = tuple(word)
    return [rotate_left(w, i) for i in range(period(w))]


def period(word: Sequence[int]) -> int:
    """Return the period of ``word``: the least ``t > 0`` with ``pi^t(x) = x``.

    The period always divides ``len(word)``; the implementation only probes
    the divisors of ``n`` rather than all shifts.
    """
    w = tuple(word)
    n = len(w)
    if n == 0:
        raise InvalidParameterError("the empty word has no period")
    for t in _sorted_divisors(n):
        if w[t:] + w[:t] == w:
            return t
    return n  # unreachable: t = n always satisfies the condition


def is_aperiodic(word: Sequence[int]) -> bool:
    """Return True if ``word`` is aperiodic (period equals its length)."""
    return period(word) == len(tuple(word))


def min_rotation_index(word: Sequence[int]) -> int:
    """Return the rotation amount ``i`` for which ``pi^i(word)`` is lexicographically least.

    Uses Booth's least-rotation algorithm, which runs in linear time; ties
    (possible only for periodic words) resolve to the smallest index, so the
    result is always in ``range(period(word))``.
    """
    w = tuple(word)
    n = len(w)
    if n == 0:
        raise InvalidParameterError("cannot rotate an empty word")
    s = w + w
    f = [-1] * len(s)
    k = 0
    for j in range(1, len(s)):
        sj = s[j]
        i = f[j - k - 1]
        while i != -1 and sj != s[k + i + 1]:
            if sj < s[k + i + 1]:
                k = j - i - 1
            i = f[i]
        if sj != s[k + i + 1]:
            if sj < s[k]:
                k = j
            f[j - k] = -1
        else:
            f[j - k] = i + 1
    return k % period(w)


def min_rotation(word: Sequence[int]) -> Word:
    """Return the lexicographically (equivalently numerically) least rotation of ``word``.

    Because all rotations have the same length and digits are compared
    position-by-position, lexicographic order over digit tuples coincides with
    the base-``d`` numeric order used by the paper to pick the canonical
    necklace representative ``[x]``.
    """
    return rotate_left(word, min_rotation_index(word))


def aperiodic_root(word: Sequence[int]) -> Word:
    """Return the aperiodic word ``w`` such that ``word = w^{n/t}``.

    This is the word whose existence is asserted by the Observation in
    Section 4.1 of the paper and exploited by the counting arguments of
    Chapter 4.
    """
    w = tuple(word)
    return w[: period(w)]


def concatenation_power(word: Sequence[int], k: int) -> Word:
    """Return ``word`` concatenated with itself ``k`` times (``w^k``)."""
    w = tuple(word)
    if len(w) == 0:
        raise InvalidParameterError("cannot take a concatenation power of the empty word")
    if k < 1:
        raise InvalidParameterError(f"concatenation power must be >= 1, got {k}")
    return w * k


def _check_int_word(value: int, d: int, n: int) -> None:
    if d < 1:
        raise InvalidParameterError(f"alphabet size must be >= 1, got {d}")
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    if not 0 <= value < d**n:
        raise InvalidParameterError(
            f"value {value} is not a valid encoding of a length-{n} word over Z_{d}"
        )


def rotate_left_int(value: int, d: int, n: int, i: int = 1) -> int:
    """Left-rotate the int-encoded length-``n`` word ``value`` by ``i`` positions.

    This is the fast path equivalent of :func:`rotate_left` for int-encoded
    words: digits shifted off the most-significant end re-enter at the
    least-significant end.  Like the tuple functions it accepts any ``i``
    (negative or a multiple of ``n``) and the degenerate ``d = 1`` and
    ``n = 1`` cases; a ``value`` outside ``range(d**n)`` raises instead of
    silently rotating the digits of a different word.
    """
    _check_int_word(value, d, n)
    i %= n
    if i == 0:
        return value
    high = d ** (n - i)
    head, tail = divmod(value, high)
    return tail * (d**i) + head


def rotate_right_int(value: int, d: int, n: int, i: int = 1) -> int:
    """Right-rotate the int-encoded length-``n`` word ``value`` by ``i`` positions.

    The inverse of :func:`rotate_left_int`:
    ``rotate_right_int(rotate_left_int(x, d, n, i), d, n, i) == x``.
    """
    _check_int_word(value, d, n)
    return rotate_left_int(value, d, n, n - (i % n))


def _sorted_divisors(n: int) -> list[int]:
    """Return the divisors of ``n`` in increasing order."""
    small, large = [], []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return small + large[::-1]
