"""repro — Fault-tolerant ring embedding in De Bruijn networks.

A complete, from-scratch reproduction of *Fault-Tolerant Ring Embedding in
De Bruijn Networks* (Rowley & Bose, ICPP 1991 / OSU thesis 1993).

Layered architecture (lowest first):

* :mod:`repro.words` — d-ary word and necklace combinatorics.
* :mod:`repro.gf` — finite fields, primitive polynomials, shift registers.
* :mod:`repro.graphs` — De Bruijn, butterfly, hypercube, Kautz and
  shuffle-exchange topologies plus connectivity analysis.
* :mod:`repro.topology` — the ``Topology`` protocol and string-keyed
  registry (``debruijn``, ``kautz``, ``hypercube``, ``shuffle_exchange``,
  ``undirected_debruijn``) that puts every backend behind one sweep/serve
  API: integer node coding, BFS gather tables, fault-unit closure,
  measurement conventions.
* :mod:`repro.core` — the paper's algorithms: the fault-free-cycle (FFC)
  algorithm for node failures, disjoint Hamiltonian cycles and edge-fault
  Hamiltonian embedding, Hamiltonian decompositions, necklace counting and
  the theoretical bound tables.
* :mod:`repro.network` — a synchronous message-passing simulator and the
  distributed protocols of Section 2.4.
* :mod:`repro.analysis` — experiment harnesses reproducing every table and
  figure of the paper's evaluation.
* :mod:`repro.engine` — the execution/orchestration subsystem: the shared
  :class:`~repro.engine.executor.KernelExecutor` (tables, kernel scratch
  and batch-vs-scalar dispatch in one place), the resident
  :class:`~repro.engine.service.EmbeddingService`, the multiprocess
  :class:`~repro.engine.sweep.ParallelSweepEngine` (deterministic for any
  worker count, JSON checkpoint/resume) and the bounded-cache audit.
* :mod:`repro.server` — the async micro-batching serving front-end
  (``python -m repro serve``): concurrent embed/measure requests coalesced
  into up to 64-lane kernel launches, bounded-queue backpressure and
  ``/stats`` metrics.
* :mod:`repro.cli` — the ``python -m repro`` / ``repro`` command line
  (``experiment``, ``sweep``, ``bench``, ``embed``, ``serve``),
  topology-selectable via ``--topology``.
"""

from ._version import __version__

__all__ = ["__version__"]
