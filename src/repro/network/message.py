"""Messages exchanged by the synchronous network simulator.

The paper's complexity claims are stated in *communication steps* under a
synchronous, multi-port model (Section 2.4): in one step every non-faulty
processor may send a (different) message to each of its De Bruijn successors
and receive from each of its predecessors.  A :class:`Message` records the
sender, receiver, a protocol-defined tag and an arbitrary payload, plus the
round in which it was sent — which is what the simulator's round accounting
and the tests' step-count assertions are based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..words.alphabet import Word

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """A single point-to-point message.

    Attributes
    ----------
    src, dst:
        Sender and receiver node identifiers (tuple-encoded De Bruijn words).
    tag:
        Protocol-defined message kind (e.g. ``"probe"``, ``"broadcast"``).
    payload:
        Arbitrary, protocol-defined content.  Payloads are treated as opaque
        and immutable by the simulator.
    round_sent:
        The simulator round in which the message was handed to the network.
        It is delivered at the beginning of round ``round_sent + 1``.
    """

    src: Word
    dst: Word
    tag: str
    payload: Any
    round_sent: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = "".join(map(str, self.src))
        dst = "".join(map(str, self.dst))
        return f"Message({src}->{dst}, {self.tag!r}, round={self.round_sent})"
