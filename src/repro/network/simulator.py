"""A synchronous, multi-port message-passing simulator for De Bruijn networks.

This is the substitution for the physical multiprocessor the paper assumes:
a round-based SPMD machine whose links are exactly the directed edges of
``B(d, n)``.  In each round every live (non-faulty, non-halted) processor
receives the messages sent to it in the previous round, runs one step of its
program, and may send at most one message per outgoing link (the multi-port
assumption of Section 2.4).  Faulty processors neither compute nor forward —
the "total failure" model of Section 1.1 — and messages addressed to them are
dropped.  Faulty links silently drop the messages crossing them.

The simulator reports the number of rounds executed and the number of
messages delivered, which is what the paper's ``O(K + n)`` complexity claims
(and Tables 2.1/2.2's eccentricity column) are measured in.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import SimulationError
from ..graphs.debruijn import DeBruijnGraph
from ..words.alphabet import Word, validate_word
from .message import Message
from .node import NodeContext, NodeProgram

__all__ = ["SimulationResult", "SynchronousDeBruijnNetwork"]


@dataclass
class SimulationResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed (the paper's "communication steps").
    messages_sent:
        Total number of messages handed to the network by the programs.
    messages_delivered:
        Total number of messages successfully delivered.
    messages_dropped:
        Total messages lost, for any reason (the sum of the three
        ``dropped_*`` counters below).  Conservation holds by construction
        and is asserted by the simulator:
        ``messages_sent == messages_delivered + messages_dropped``.
    dropped_faulty_link:
        Messages lost crossing a faulty link (they die on the wire, whatever
        the state of the addressee).
    dropped_faulty_node:
        Messages that crossed a healthy link but were addressed to a faulty
        processor (the "total failure" model of Section 1.1).
    dropped_no_receiver:
        Messages addressed to a healthy processor that is not participating
        in the current computation (e.g. nodes of faulty necklaces sitting
        out the FFC protocol).
    node_results:
        ``{node: program.result(ctx)}`` for every live node.
    halted:
        True if every live node halted before the round limit.
    """

    rounds: int
    messages_delivered: int
    messages_dropped: int
    node_results: dict[Word, Any]
    halted: bool
    phase_rounds: dict[str, int] = field(default_factory=dict)
    messages_sent: int = 0
    dropped_faulty_link: int = 0
    dropped_faulty_node: int = 0
    dropped_no_receiver: int = 0


class SynchronousDeBruijnNetwork:
    """The simulated machine: one :class:`NodeProgram` instance per processor.

    Parameters
    ----------
    d, n:
        De Bruijn parameters; the network has ``d**n`` processors.
    faulty_nodes:
        Processors that have failed entirely (they never run and never relay).
    faulty_edges:
        Directed links ``(src, dst)`` that drop every message sent across them.
    """

    def __init__(
        self,
        d: int,
        n: int,
        faulty_nodes: Iterable[Sequence[int]] = (),
        faulty_edges: Iterable[tuple[Sequence[int], Sequence[int]]] = (),
    ) -> None:
        self.graph = DeBruijnGraph(d, n)
        self.d, self.n = self.graph.d, self.graph.n
        self.faulty_nodes = frozenset(validate_word(w, d) for w in faulty_nodes)
        self.faulty_edges = frozenset(
            (validate_word(a, d), validate_word(b, d)) for a, b in faulty_edges
        )
        for a, b in self.faulty_edges:
            if not self.graph.has_edge(a, b):
                raise SimulationError(f"({a}, {b}) is not a link of B({d},{n})")

    # -- dynamic faults ----------------------------------------------------------
    def fail_node(self, node: Sequence[int]) -> None:
        """Mark one processor as totally failed (next ``run`` excludes it)."""
        word = validate_word(node, self.d)
        if word in self.faulty_nodes:
            raise SimulationError(f"node {word} is already faulty")
        self.faulty_nodes = self.faulty_nodes | {word}

    def heal_node(self, node: Sequence[int]) -> None:
        """Return one failed processor to service."""
        word = validate_word(node, self.d)
        if word not in self.faulty_nodes:
            raise SimulationError(f"cannot heal node {word}: it is not faulty")
        self.faulty_nodes = self.faulty_nodes - {word}

    def fail_edge(self, src: Sequence[int], dst: Sequence[int]) -> None:
        """Mark one directed link as faulty (it drops every crossing message)."""
        edge = (validate_word(src, self.d), validate_word(dst, self.d))
        if not self.graph.has_edge(*edge):
            raise SimulationError(
                f"({edge[0]}, {edge[1]}) is not a link of B({self.d},{self.n})"
            )
        if edge in self.faulty_edges:
            raise SimulationError(f"link {edge} is already faulty")
        self.faulty_edges = self.faulty_edges | {edge}

    def heal_edge(self, src: Sequence[int], dst: Sequence[int]) -> None:
        """Return one failed link to service (it stops dropping messages)."""
        edge = (validate_word(src, self.d), validate_word(dst, self.d))
        if edge not in self.faulty_edges:
            raise SimulationError(f"cannot heal link {edge}: it is not faulty")
        self.faulty_edges = self.faulty_edges - {edge}

    # -- execution ---------------------------------------------------------------
    def run(
        self,
        program_factory,
        max_rounds: int = 10_000,
        participants: Iterable[Sequence[int]] | None = None,
    ) -> SimulationResult:
        """Execute one program instance per live node until all halt (or the limit).

        Parameters
        ----------
        program_factory:
            Callable ``node -> NodeProgram`` (or a class) instantiated once per
            live processor.
        max_rounds:
            Safety limit on the number of rounds.
        participants:
            Optional subset of nodes that run the program; all other non-faulty
            nodes stay silent (used e.g. when nonfaulty nodes of faulty
            necklaces sit out the FFC computation, as the paper prescribes).
        """
        live_nodes = [w for w in self.graph.nodes() if w not in self.faulty_nodes]
        if participants is not None:
            wanted = {validate_word(w, self.d) for w in participants}
            live_nodes = [w for w in live_nodes if w in wanted]
        contexts: dict[Word, NodeContext] = {}
        programs: dict[Word, NodeProgram] = {}
        for w in live_nodes:
            ctx = NodeContext(
                node=w,
                d=self.d,
                n=self.n,
                successors=tuple(self.graph.successors(w)),
                predecessors=tuple(self.graph.predecessors(w)),
            )
            contexts[w] = ctx
            programs[w] = program_factory(w) if callable(program_factory) else program_factory

        sent = 0
        delivered = 0
        dropped_link = 0
        dropped_node = 0
        dropped_silent = 0
        in_flight: list[Message] = []
        for w in live_nodes:
            programs[w].on_start(contexts[w])
        rounds = 0
        for _ in range(max_rounds):
            # collect messages sent during the previous step
            for w in live_nodes:
                outgoing = contexts[w]._drain_outbox(rounds)
                sent += len(outgoing)
                in_flight.extend(outgoing)
            if not in_flight and all(contexts[w].halted for w in live_nodes):
                break
            # deliver, attributing every loss to a distinct cause: a message
            # crossing a faulty link dies on the wire before the state of the
            # addressee can matter, then a faulty addressee swallows it, then
            # a healthy-but-silent (non-participating) addressee ignores it.
            inboxes: dict[Word, list[Message]] = {w: [] for w in live_nodes}
            for msg in in_flight:
                if (msg.src, msg.dst) in self.faulty_edges:
                    dropped_link += 1
                elif msg.dst in self.faulty_nodes:
                    dropped_node += 1
                elif msg.dst in inboxes:
                    inboxes[msg.dst].append(msg)
                    delivered += 1
                else:
                    dropped_silent += 1
            in_flight = []
            rounds += 1
            progressed = False
            for w in live_nodes:
                ctx = contexts[w]
                if ctx.halted and not inboxes[w]:
                    continue
                programs[w].on_round(ctx, inboxes[w])
                progressed = True
            if not progressed and all(contexts[w].halted for w in live_nodes):
                break
        else:
            raise SimulationError(f"protocol did not terminate within {max_rounds} rounds")

        dropped = dropped_link + dropped_node + dropped_silent
        if sent != delivered + dropped:  # pragma: no cover - accounting invariant
            raise SimulationError(
                f"message conservation violated: sent {sent} != "
                f"delivered {delivered} + dropped {dropped}"
            )
        return SimulationResult(
            rounds=rounds,
            messages_delivered=delivered,
            messages_dropped=dropped,
            node_results={w: programs[w].result(contexts[w]) for w in live_nodes},
            halted=all(contexts[w].halted for w in live_nodes),
            messages_sent=sent,
            dropped_faulty_link=dropped_link,
            dropped_faulty_node=dropped_node,
            dropped_no_receiver=dropped_silent,
        )
