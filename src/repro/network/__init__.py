"""Distributed substrate: synchronous message passing and the Section 2.4 protocols.

The paper analyses a *network-level distributed* reconfiguration algorithm;
this subpackage supplies the machine it runs on (a synchronous, multi-port,
fault-injectable message-passing simulator over the De Bruijn topology) and
the protocols themselves: necklace fault detection, BFS broadcast, the full
distributed fault-free-cycle protocol and the all-to-all broadcast that
motivates disjoint Hamiltonian cycles in Chapter 3.
"""

from .faults import (
    sample_edge_faults,
    sample_fault_code_batch,
    sample_node_fault_codes,
    sample_node_faults,
)
from .message import Message
from .node import NodeContext, NodeProgram
from .protocols.all_to_all import AllToAllStats, all_to_all_cost_model, simulate_all_to_all
from .protocols.broadcast import BroadcastProgram, run_broadcast
from .protocols.ffc_protocol import (
    DistributedFFCResult,
    NecklaceCoordinationProgram,
    run_distributed_ffc,
)
from .protocols.necklace_probe import NecklaceProbeProgram, run_necklace_probe
from .simulator import SimulationResult, SynchronousDeBruijnNetwork

__all__ = [
    "sample_edge_faults",
    "sample_fault_code_batch",
    "sample_node_fault_codes",
    "sample_node_faults",
    "Message",
    "NodeContext",
    "NodeProgram",
    "AllToAllStats",
    "all_to_all_cost_model",
    "simulate_all_to_all",
    "BroadcastProgram",
    "run_broadcast",
    "DistributedFFCResult",
    "NecklaceCoordinationProgram",
    "run_distributed_ffc",
    "NecklaceProbeProgram",
    "run_necklace_probe",
    "SimulationResult",
    "SynchronousDeBruijnNetwork",
]
