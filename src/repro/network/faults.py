"""Random fault injection for the simulations of Section 2.5.2.

The paper's Tables 2.1 and 2.2 are produced by repeatedly drawing ``f``
faulty processors uniformly at random; this module centralises that sampling
(seeded ``numpy`` generators, so every experiment in the benchmark harness is
reproducible) and the equivalent sampling of faulty links for the Chapter 3
experiments.

The node sampler is vectorized with an exact determinism contract: the
rejection sampling that historically drew one value at a time now draws one
*chunk* per round (chunk size = faults still needed), which consumes the
generator stream value-for-value identically — same accepted codes, same
draw count, same generator state afterwards.  Seeded sweeps, the legacy
sequential-rng rows and resumed PR-2-era checkpoints therefore all remain
bit-for-bit reproducible, while the hot path gets whole-batch draws and
never round-trips through the tuple encoding
(:func:`sample_node_fault_codes`); tuples stay the public boundary of
:func:`sample_node_faults`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, int_to_word, word_to_int

__all__ = [
    "sample_node_faults",
    "sample_node_fault_codes",
    "sample_fault_codes",
    "sample_fault_code_batch",
    "sample_code_batch",
    "sample_edge_faults",
]


def _require_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalise the ``rng`` argument: a Generator, or an explicit seed.

    ``None`` is rejected.  Historically these samplers fell back to an
    *unseeded* ``np.random.default_rng()``, which silently broke the
    package-wide determinism contract (every stream descends from an
    explicit seed) for any caller that forgot to pass one — the exact
    failure mode the REP002 lint rule now guards against.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise InvalidParameterError(
        "fault sampling requires an explicit np.random.Generator or integer "
        "seed (rng=None would draw from an unseeded, irreproducible stream)"
    )


def sample_fault_codes(
    total: int,
    f: int,
    rng: np.random.Generator | int | None = None,
    exclude_codes: Sequence[int] = (),
) -> list[int]:
    """Draw ``f`` distinct faulty codes from ``range(total)``, in acceptance order.

    The topology-generic core of :func:`sample_node_fault_codes` (``total``
    is the backend's node count — ``d**n`` in the De Bruijn case, so the
    consumed stream is unchanged): uniform rejection sampling, drawing one
    chunk of ``f - got`` values per generator call.  In the final round
    every remaining draw is accepted (a round of ``r`` draws yields ``r``
    accepts only if none is rejected), so the stream consumption matches the
    one-value-at-a-time loop *exactly* — accepted codes and the generator's
    final state are identical, which is what keeps sequentially-threaded
    generators (the frozen-reference rows) and per-trial streams
    reproducible alike.
    """
    rng = _require_rng(rng)
    total = int(total)
    rejected = set(int(c) for c in exclude_codes)
    if f < 0 or f > total - len(rejected):
        raise InvalidParameterError(f"cannot place {f} faults among {total} nodes")
    if f == 0:
        return []
    draws = rng.integers(0, total, size=f)
    if not rejected and (f == 1 or np.unique(draws).size == f):
        # bulk accept: with no exclusions and no collisions the scalar loop
        # would take these same f draws verbatim
        return draws.tolist()
    codes: list[int] = []
    while True:
        for value in draws.tolist():
            if value in rejected:
                continue
            rejected.add(value)
            codes.append(value)
        if len(codes) == f:
            return codes
        draws = rng.integers(0, total, size=f - len(codes))


def sample_node_fault_codes(
    d: int,
    n: int,
    f: int,
    rng: np.random.Generator | int | None = None,
    exclude_codes: Sequence[int] = (),
) -> list[int]:
    """Draw ``f`` distinct faulty node codes of ``B(d, n)``, in acceptance order.

    The int-coded hot path of :func:`sample_node_faults`; thin De Bruijn
    boundary over :func:`sample_fault_codes` with ``total = d**n``.
    """
    try:
        return sample_fault_codes(d**n, f, rng, exclude_codes=exclude_codes)
    except InvalidParameterError:
        raise InvalidParameterError(f"cannot place {f} faults in B({d},{n})") from None


def sample_code_batch(
    total: int, f: int, rngs: Sequence[np.random.Generator]
) -> np.ndarray:
    """Draw one trial's fault codes per generator: a ``(len(rngs), f)`` array.

    Sampling stays strictly per-trial — trial ``t`` consumes only ``rngs[t]``
    and draws exactly what :func:`sample_fault_codes` would — so the batched
    measurement kernel remains bit-for-bit identical to the scalar path
    however trials are grouped into batches.
    """
    out = np.empty((len(rngs), f), dtype=np.int64)
    for t, rng in enumerate(rngs):
        out[t] = sample_fault_codes(total, f, rng)
    return out


def sample_fault_code_batch(
    d: int, n: int, f: int, rngs: Sequence[np.random.Generator]
) -> np.ndarray:
    """De Bruijn boundary over :func:`sample_code_batch` (``total = d**n``)."""
    return sample_code_batch(d**n, f, rngs)


def sample_node_faults(
    d: int,
    n: int,
    f: int,
    rng: np.random.Generator | int | None = None,
    exclude: tuple[Word, ...] = (),
) -> list[Word]:
    """Draw ``f`` distinct faulty processors of ``B(d, n)`` uniformly at random.

    ``exclude`` lists nodes that must stay healthy (e.g. the measurement root
    when reproducing the paper's tables is *not* excluded — the paper instead
    falls back to a neighbouring root — so the default excludes nothing).
    Tuple boundary over :func:`sample_node_fault_codes`: same draws, with the
    accepted codes decoded to words on the way out.
    """
    rng = _require_rng(rng)
    total = d**n
    excluded = {w for w in exclude}
    if f < 0 or f > total - len(excluded):
        raise InvalidParameterError(f"cannot place {f} faults in B({d},{n})")
    exclude_codes = []
    for w in excluded:
        if len(w) == n and all(0 <= int(x) < d for x in w):
            exclude_codes.append(word_to_int(w, d))
        # words that are not valid B(d, n) nodes can never be drawn, so they
        # are (and always were) excluded vacuously.
    codes = sample_node_fault_codes(d, n, f, rng, exclude_codes=exclude_codes)
    return [int_to_word(value, d, n) for value in codes]


def sample_edge_faults(
    d: int,
    n: int,
    f: int,
    rng: np.random.Generator | int | None = None,
    allow_loops: bool = False,
) -> list[Word]:
    """Draw ``f`` distinct faulty links of ``B(d, n)``, returned as ``(n+1)``-tuple labels.

    Loop edges are excluded by default since no Hamiltonian cycle ever uses
    them (their failure is irrelevant to ring embedding).
    """
    rng = _require_rng(rng)
    total = d ** (n + 1)
    if f < 0 or f > total:
        raise InvalidParameterError(f"cannot place {f} edge faults in B({d},{n})")
    faults: list[Word] = []
    chosen: set[int] = set()
    while len(faults) < f:
        value = int(rng.integers(0, total))
        if value in chosen:
            continue
        label = int_to_word(value, d, n + 1)
        if not allow_loops and len(set(label)) == 1:
            continue
        chosen.add(value)
        faults.append(label)
    return faults
