"""Random fault injection for the simulations of Section 2.5.2.

The paper's Tables 2.1 and 2.2 are produced by repeatedly drawing ``f``
faulty processors uniformly at random; this module centralises that sampling
(seeded ``numpy`` generators, so every experiment in the benchmark harness is
reproducible) and the equivalent sampling of faulty links for the Chapter 3
experiments.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, int_to_word

__all__ = ["sample_node_faults", "sample_edge_faults"]


def sample_node_faults(
    d: int, n: int, f: int, rng: np.random.Generator | None = None, exclude: tuple[Word, ...] = ()
) -> list[Word]:
    """Draw ``f`` distinct faulty processors of ``B(d, n)`` uniformly at random.

    ``exclude`` lists nodes that must stay healthy (e.g. the measurement root
    when reproducing the paper's tables is *not* excluded — the paper instead
    falls back to a neighbouring root — so the default excludes nothing).
    """
    if rng is None:
        rng = np.random.default_rng()
    total = d**n
    excluded = {w for w in exclude}
    if f < 0 or f > total - len(excluded):
        raise InvalidParameterError(f"cannot place {f} faults in B({d},{n})")
    faults: list[Word] = []
    chosen: set[int] = set()
    while len(faults) < f:
        value = int(rng.integers(0, total))
        if value in chosen:
            continue
        word = int_to_word(value, d, n)
        if word in excluded:
            continue
        chosen.add(value)
        faults.append(word)
    return faults


def sample_edge_faults(
    d: int, n: int, f: int, rng: np.random.Generator | None = None, allow_loops: bool = False
) -> list[Word]:
    """Draw ``f`` distinct faulty links of ``B(d, n)``, returned as ``(n+1)``-tuple labels.

    Loop edges are excluded by default since no Hamiltonian cycle ever uses
    them (their failure is irrelevant to ring embedding).
    """
    if rng is None:
        rng = np.random.default_rng()
    total = d ** (n + 1)
    if f < 0 or f > total:
        raise InvalidParameterError(f"cannot place {f} edge faults in B({d},{n})")
    faults: list[Word] = []
    chosen: set[int] = set()
    while len(faults) < f:
        value = int(rng.integers(0, total))
        if value in chosen:
            continue
        label = int_to_word(value, d, n + 1)
        if not allow_loops and len(set(label)) == 1:
            continue
        chosen.add(value)
        faults.append(label)
    return faults
