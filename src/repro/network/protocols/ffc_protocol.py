"""The distributed fault-free-cycle protocol (Section 2.4), end to end.

The computation proceeds in three message-passing stages, mirroring the
paper's Steps 1.1–3 (a global barrier between stages plays the role of the
termination detection the paper leaves implicit):

1. **Necklace probe** (``n`` rounds) — every non-faulty processor passes a
   token around its necklace; processors in faulty necklaces drop out
   (:mod:`repro.network.protocols.necklace_probe`).
2. **Broadcast** (``K`` rounds, ``K`` = eccentricity of the root in ``B*``) —
   the distinguished node ``R`` floods a marker; every reached processor
   learns its level and its minimal first-round predecessor, defining the
   BFS tree ``T'`` (:mod:`repro.network.protocols.broadcast`).
3. **Necklace coordination** (``2n + 1`` rounds) — levels and parents are
   circulated around each necklace (``n`` rounds) so each necklace agrees on
   its earliest member, tree label ``w`` and parent necklace; each child
   necklace's suffix-``w`` member then announces itself along its out-links
   (1 round); the announcements are circulated around each receiving necklace
   (``n`` rounds); after which every processor locally knows the modified
   tree ``D`` edges incident to its necklace and computes its successor in
   the fault-free cycle.

Total: ``K + 3n + 1`` communication steps — the ``O(K + n)`` of the paper.
The assembled cycle is verified in the tests to be *identical* to the output
of the centralized algorithm in :mod:`repro.core.ffc`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ...exceptions import ProtocolError
from ...words.alphabet import Word
from ...words.rotation import distinct_rotations, min_rotation
from ..message import Message
from ..node import NodeContext, NodeProgram
from ..simulator import SynchronousDeBruijnNetwork
from .broadcast import run_broadcast
from .necklace_probe import run_necklace_probe

__all__ = ["DistributedFFCResult", "NecklaceCoordinationProgram", "run_distributed_ffc"]


@dataclass(frozen=True)
class DistributedFFCResult:
    """Outcome of the distributed FFC protocol.

    Attributes
    ----------
    cycle:
        The fault-free cycle assembled from the per-node successor pointers.
    successors:
        ``{node: successor}`` as computed locally by each processor.
    probe_rounds, broadcast_steps, coordination_rounds:
        Logical communication steps of the three stages (``n``, ``K`` and
        ``2n + 1`` respectively).
    messages_delivered:
        Total messages delivered across all stages.
    """

    cycle: tuple[Word, ...]
    successors: dict[Word, Word]
    probe_rounds: int
    broadcast_steps: int
    coordination_rounds: int
    messages_delivered: int

    @property
    def total_steps(self) -> int:
        """Total communication steps, ``K + 3n + 1`` in the worst case."""
        return self.probe_rounds + self.broadcast_steps + self.coordination_rounds


class NecklaceCoordinationProgram(NodeProgram):
    """Stage 3: necklace-level agreement and successor computation.

    Each participating node starts knowing its own broadcast ``level`` and
    ``parent``; the program circulates that information around the necklace,
    performs the one-round announcement of star membership, circulates the
    received announcements, and finally stores the node's successor in the
    fault-free cycle in its state.
    """

    def __init__(self, node: Word, info: dict[Word, dict]) -> None:
        self.info = info  # injected per-node {level, parent} from stage 2

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _rotation_successor(node: Word) -> Word:
        return node[1:] + node[:1]

    def on_start(self, ctx: NodeContext) -> None:
        own = self.info[ctx.node]
        ctx.state.update(
            {
                "round": 0,
                "level": own["level"],
                "parent": own["parent"],
                "necklace_info": {ctx.node: (own["level"], own["parent"])},
                "announcements": [],
                "successor": None,
            }
        )
        # launch the level/parent token around the necklace
        ctx.send(
            self._rotation_successor(ctx.node),
            "levels",
            ((ctx.node, own["level"], own["parent"]),),
        )

    # -- per-round behaviour ---------------------------------------------------------
    def on_round(self, ctx: NodeContext, messages: Sequence[Message]) -> None:
        ctx.state["round"] += 1
        r = ctx.state["round"]
        n = ctx.n

        level_tokens: list[tuple[Word, int | None, Word | None]] = []
        announce_tokens: list[tuple[Word, Word, Word]] = []
        for msg in messages:
            if msg.tag == "levels":
                level_tokens.extend(msg.payload)
            elif msg.tag == "announce":
                announce_tokens.extend(msg.payload)
            elif msg.tag == "announce_circ":
                announce_tokens.extend(msg.payload)

        fresh_levels = []
        for node, level, parent in level_tokens:
            if node not in ctx.state["necklace_info"]:
                ctx.state["necklace_info"][node] = (level, parent)
                fresh_levels.append((node, level, parent))
        for ann in announce_tokens:
            if ann not in ctx.state["announcements"]:
                ctx.state["announcements"].append(ann)

        if r < n:
            # keep circulating level/parent tokens around the necklace
            if fresh_levels:
                ctx.send(self._rotation_successor(ctx.node), "levels", tuple(fresh_levels))
            return

        if r == n:
            # the necklace now agrees on its earliest member and tree label;
            # the suffix-w member of a *child* necklace announces the star.
            label = self._tree_label(ctx)
            if label is not None and ctx.node[1:] == label:
                rep = min_rotation(ctx.node)
                parent_node = self._chosen_parent(ctx)
                ctx.send_to_all_successors("announce", ((label, rep, parent_node),))
            return

        if r < 2 * n + 1:
            # circulate announcements around the necklace so the suffix-w
            # members (which decide the outgoing D-edges) all learn them
            if announce_tokens:
                ctx.send(
                    self._rotation_successor(ctx.node),
                    "announce_circ",
                    tuple(announce_tokens),
                )
            if r == 2 * n:
                ctx.state["successor"] = self._compute_successor(ctx)
                ctx.halt()
            return

        ctx.halt()  # pragma: no cover - defensive

    # -- local decisions (all computed from necklace-circulated data) ------------------
    def _members(self, ctx: NodeContext) -> list[Word]:
        return list(ctx.state["necklace_info"].keys())

    def _chosen_member(self, ctx: NodeContext) -> Word | None:
        """The earliest-received member of this necklace (ties: minimal node)."""
        infos = ctx.state["necklace_info"]
        reached = {node: lvl for node, (lvl, _) in infos.items() if lvl is not None}
        if len(reached) != len(infos) or not reached:
            return None  # necklace not (fully) reached by the broadcast
        return min(reached, key=lambda node: (reached[node], node))

    def _tree_label(self, ctx: NodeContext) -> Word | None:
        """The label ``w`` of this necklace's tree edge (None for the root necklace)."""
        chosen = self._chosen_member(ctx)
        if chosen is None:
            return None
        level, parent = ctx.state["necklace_info"][chosen]
        if parent is None:
            return None  # the root necklace has no tree edge
        return chosen[:-1]

    def _chosen_parent(self, ctx: NodeContext) -> Word | None:
        chosen = self._chosen_member(ctx)
        if chosen is None:
            return None
        return ctx.state["necklace_info"][chosen][1]

    def _compute_successor(self, ctx: NodeContext) -> Word | None:
        """Step 3 of the FFC algorithm, evaluated locally at this node."""
        infos = ctx.state["necklace_info"]
        if any(lvl is None for lvl, _ in infos.values()):
            return None  # outside B*: does not join the cycle
        w = ctx.node[1:]
        my_rep = min_rotation(ctx.node)
        # Reconstruct the star T_w from the label-w announcements.  The
        # height-one property of T_w guarantees all such announcements refer
        # to a single star (one common parent), so the star is simply the set
        # of announced children plus the (unique) announced parent necklace.
        star: set[Word] = set()
        relevant = [a for a in ctx.state["announcements"] if a[0] == w]
        if relevant:
            parent_reps = {min_rotation(pn) for _, _, pn in relevant if pn is not None}
            child_reps = {child for _, child, _ in relevant}
            if my_rep in parent_reps or my_rep in child_reps:
                star = child_reps | parent_reps
        if star and my_rep in star:
            ordered = sorted(star)
            target_rep = ordered[(ordered.index(my_rep) + 1) % len(ordered)]
            if target_rep != my_rep:
                entry = self._entry_node(target_rep, w)
                if entry is not None:
                    return entry
        return self._rotation_successor(ctx.node)

    @staticmethod
    def _entry_node(target_rep: Word, w: Word) -> Word | None:
        """The node ``w beta`` of the target necklace (computed from its representative)."""
        for member in distinct_rotations(target_rep):
            if member[1:] == w:  # member is beta w
                return member[1:] + member[:1]
        return None

    def result(self, ctx: NodeContext) -> dict:
        return {"successor": ctx.state["successor"]}


def run_distributed_ffc(
    d: int,
    n: int,
    faults: Iterable[Sequence[int]] = (),
    root_hint: Sequence[int] | None = None,
) -> DistributedFFCResult:
    """Execute the three-stage distributed FFC protocol and assemble the cycle.

    The root is chosen exactly as in the centralized algorithm (the canonical
    representative of a surviving necklace, honouring ``root_hint``), so the
    two implementations are directly comparable.
    """
    from ...core.necklace_graph import build_bstar

    fault_words = [tuple(int(x) for x in f) for f in faults]
    network = SynchronousDeBruijnNetwork(d, n, faulty_nodes=fault_words)

    # Stage 1: necklace probe among all non-faulty processors.
    probe_result, healthy = run_necklace_probe(network)

    # The distinguished root: same rule as the centralized algorithm.
    bstar = build_bstar(d, n, fault_words, root_hint=root_hint)
    root = bstar.root
    if root not in healthy:  # pragma: no cover - the root's necklace is healthy by construction
        raise ProtocolError("chosen root is not in a healthy necklace")

    # Stage 2: broadcast from the root among the healthy processors.
    bc_result, bc_info = run_broadcast(network, root, healthy)
    reached = {node for node, info in bc_info.items() if info["level"] is not None}
    broadcast_steps = max(bc_info[node]["level"] for node in reached)

    # Stage 3: necklace coordination among the healthy processors.
    coord_result = network.run(
        lambda node: NecklaceCoordinationProgram(node, bc_info),
        participants=healthy,
        max_rounds=2 * n + 5,
    )
    successors = {
        node: info["successor"]
        for node, info in coord_result.node_results.items()
        if info["successor"] is not None
    }

    # Assemble the cycle by following successor pointers from the root.
    cycle = [root]
    current = successors.get(root)
    guard = 0
    while current is not None and current != root:
        cycle.append(current)
        current = successors.get(current)
        guard += 1
        if guard > len(successors) + 1:
            raise ProtocolError("distributed successor pointers do not close into a cycle")
    if current is None:
        raise ProtocolError("distributed successor pointers are incomplete")

    messages = (
        probe_result.messages_delivered
        + bc_result.messages_delivered
        + coord_result.messages_delivered
    )
    return DistributedFFCResult(
        cycle=tuple(cycle),
        successors=successors,
        probe_rounds=n,
        broadcast_steps=broadcast_steps,
        coordination_rounds=coord_result.rounds,
        messages_delivered=messages,
    )
