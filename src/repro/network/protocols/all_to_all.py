"""All-to-all broadcast over one or several embedded rings (Chapter 3 motivation).

The introduction to Chapter 3 motivates disjoint Hamiltonian cycles with the
classic pipelined all-to-all broadcast: on a single ring of ``N`` nodes every
node forwards the message it received in the previous step, so after
``N - 1`` steps everyone holds every message and each link has carried
``N - 1`` messages of full size.  With ``t`` edge-disjoint rings each message
is split into ``t`` parts, one per ring, so the time per step (and the
traffic per link) drops by a factor of ``t`` while the step count stays
``N - 1``.

Two views are provided: an exact step-by-step simulation over explicit ring
embeddings (verifying completeness and measuring per-link traffic) and the
standard ``alpha``–``beta`` cost model used to quote the speed-up.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ...exceptions import InvalidParameterError
from ...words.alphabet import Word

__all__ = ["AllToAllStats", "simulate_all_to_all", "all_to_all_cost_model"]


@dataclass(frozen=True)
class AllToAllStats:
    """Measured outcome of an all-to-all broadcast over ``t`` disjoint rings.

    Attributes
    ----------
    rings:
        Number of rings used.
    steps:
        Communication steps executed (``N - 1``).
    complete:
        True iff every node ended up holding every other node's message.
    per_link_payload:
        Number of message *fragments* carried by the busiest link, where each
        original message is split into ``rings`` fragments (so full-message
        units are ``per_link_payload / rings``).
    total_fragments:
        Total fragments transferred across the network.
    """

    rings: int
    steps: int
    complete: bool
    per_link_payload: int
    total_fragments: int


def simulate_all_to_all(rings: Sequence[Sequence[Word]]) -> AllToAllStats:
    """Simulate the pipelined all-to-all broadcast over edge-disjoint rings.

    Parameters
    ----------
    rings:
        One or more rings given as node sequences; they must all visit the
        same node set (e.g. the disjoint Hamiltonian cycles of Section 3.2 or
        a single fault-free ring from Chapter 2).
    """
    if not rings:
        raise InvalidParameterError("at least one ring is required")
    node_set = set(rings[0])
    for ring in rings:
        if set(ring) != node_set or len(set(ring)) != len(ring):
            raise InvalidParameterError("all rings must be simple cycles over the same node set")
    n_nodes = len(node_set)
    t = len(rings)

    # holdings[node] = set of (origin, ring) fragments already received
    holdings: dict[Word, set[tuple[Word, int]]] = {
        node: {(node, r) for r in range(t)} for node in node_set
    }
    # what each node most recently received on each ring (starts with its own fragment)
    latest: dict[tuple[Word, int], tuple[Word, int]] = {
        (node, r): (node, r) for node in node_set for r in range(t)
    }
    link_load: dict[tuple[Word, Word], int] = {}

    successor = [
        {ring[i]: ring[(i + 1) % n_nodes] for i in range(n_nodes)} for ring in rings
    ]

    steps = n_nodes - 1
    for _ in range(steps):
        new_latest: dict[tuple[Word, int], tuple[Word, int]] = {}
        for r in range(t):
            for node in node_set:
                succ = successor[r][node]
                fragment = latest[(node, r)]
                link = (node, succ)
                link_load[link] = link_load.get(link, 0) + 1
                holdings[succ].add(fragment)
                new_latest[(succ, r)] = fragment
        latest.update(new_latest)

    complete = all(
        len(holdings[node]) == n_nodes * t for node in node_set
    )
    return AllToAllStats(
        rings=t,
        steps=steps,
        complete=complete,
        per_link_payload=max(link_load.values()) if link_load else 0,
        total_fragments=sum(link_load.values()),
    )


def all_to_all_cost_model(
    n_nodes: int, message_size: float, rings: int, alpha: float = 1.0, beta: float = 1.0
) -> float:
    """Return the modelled all-to-all time ``(N - 1) * (alpha + beta * L / t)``.

    ``alpha`` is the per-step start-up latency, ``beta`` the per-unit transfer
    time and ``L`` the full message size; splitting each message over ``t``
    edge-disjoint rings divides the bandwidth term by ``t``.
    """
    if n_nodes < 2 or rings < 1 or message_size < 0:
        raise InvalidParameterError("invalid all-to-all parameters")
    return (n_nodes - 1) * (alpha + beta * message_size / rings)
