"""Message-passing protocols implementing the paper's distributed algorithms."""

from .all_to_all import AllToAllStats, all_to_all_cost_model, simulate_all_to_all
from .broadcast import BroadcastProgram, run_broadcast
from .ffc_protocol import DistributedFFCResult, NecklaceCoordinationProgram, run_distributed_ffc
from .necklace_probe import NecklaceProbeProgram, run_necklace_probe

__all__ = [
    "AllToAllStats",
    "all_to_all_cost_model",
    "simulate_all_to_all",
    "BroadcastProgram",
    "run_broadcast",
    "DistributedFFCResult",
    "NecklaceCoordinationProgram",
    "run_distributed_ffc",
    "NecklaceProbeProgram",
    "run_necklace_probe",
]
