"""Stage 2 of the distributed FFC algorithm: BFS broadcast / spanning tree ``T'``.

Step 1.1 of Section 2.4: the distinguished node ``R`` broadcasts a message
``M``; every participating node records the round in which it first received
``M`` (its *level*, equal to its distance from ``R``) and remembers the
minimal predecessor among those that delivered ``M`` in that round (its
parent in the broadcast tree ``T'``).  The number of communication steps is
the eccentricity of ``R`` within ``B*``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ...exceptions import SimulationError
from ...words.alphabet import Word
from ..message import Message
from ..node import NodeContext, NodeProgram
from ..simulator import SimulationResult, SynchronousDeBruijnNetwork

__all__ = ["BroadcastProgram", "run_broadcast"]


class BroadcastProgram(NodeProgram):
    """Flood a marker from the root, recording level and minimal first-round parent."""

    def __init__(self, node: Word, root: Word, quiet_rounds: int = 2) -> None:
        self.root = tuple(root)
        self.is_root = tuple(node) == self.root
        # halt after this many rounds with nothing new to do
        self.quiet_rounds = quiet_rounds

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["level"] = 0 if self.is_root else None
        ctx.state["parent"] = None
        ctx.state["idle"] = 0
        if self.is_root:
            ctx.send_to_all_successors("broadcast", 0)

    def on_round(self, ctx: NodeContext, messages: Sequence[Message]) -> None:
        arrivals = [m for m in messages if m.tag == "broadcast"]
        if arrivals and ctx.state["level"] is None:
            level = min(m.payload for m in arrivals) + 1
            ctx.state["level"] = level
            ctx.state["parent"] = min(m.src for m in arrivals if m.payload == level - 1)
            ctx.send_to_all_successors("broadcast", level)
            ctx.state["idle"] = 0
        else:
            ctx.state["idle"] += 1
            if ctx.state["idle"] >= self.quiet_rounds:
                ctx.halt()

    def result(self, ctx: NodeContext) -> dict:
        return {"level": ctx.state["level"], "parent": ctx.state["parent"]}


def run_broadcast(
    network: SynchronousDeBruijnNetwork,
    root: Word,
    participants: Iterable[Word],
) -> tuple[SimulationResult, dict[Word, dict]]:
    """Run the broadcast among ``participants``; return per-node ``{level, parent}``.

    The broadcast's logical step count (the eccentricity of the root within
    the reached component) is the maximum recorded level, available from the
    returned per-node results; the simulator's raw round count additionally
    includes the fixed quiet-round shutdown overhead.
    """
    participants = {tuple(w) for w in participants}
    root = tuple(root)
    if root not in participants:
        raise SimulationError("the broadcast root must be one of the participants")
    result = network.run(
        lambda node: BroadcastProgram(node, root),
        participants=participants,
        max_rounds=network.graph.num_nodes + 10,
    )
    return result, dict(result.node_results)
