"""Stage 1 of the distributed FFC algorithm: necklace fault detection.

"Each node can determine if its necklace is faulty by attempting to pass a
message around the necklace.  If a node does not receive its own message in
``n`` or fewer steps the necklace is assumed to be faulty." (Section 2.4.)

Every non-faulty processor launches a token carrying its own identity along
its rotation successor (which is one of its De Bruijn out-links); each round
it forwards the batch of tokens it received.  After ``n`` rounds a processor
has seen its own token iff every node of its necklace is alive, and the
tokens it has seen are exactly its necklace's members in traversal order.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...words.alphabet import Word
from ..message import Message
from ..node import NodeContext, NodeProgram
from ..simulator import SimulationResult, SynchronousDeBruijnNetwork

__all__ = ["NecklaceProbeProgram", "run_necklace_probe"]


class NecklaceProbeProgram(NodeProgram):
    """Pass identity tokens around the necklace for ``n`` rounds."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["round"] = 0
        ctx.state["seen"] = [ctx.node]
        ctx.state["healthy"] = False
        # the token leaves during the first communication step
        ctx.send(self._rotation_successor(ctx), "probe", (ctx.node,))

    def _rotation_successor(self, ctx: NodeContext) -> Word:
        return ctx.node[1:] + ctx.node[:1]

    def on_round(self, ctx: NodeContext, messages: Sequence[Message]) -> None:
        ctx.state["round"] += 1
        incoming: list[Word] = []
        for msg in messages:
            if msg.tag == "probe":
                incoming.extend(msg.payload)
        for token in incoming:
            if token == ctx.node:
                ctx.state["healthy"] = True
            elif token not in ctx.state["seen"]:
                ctx.state["seen"].append(token)
        if ctx.state["round"] >= ctx.n:
            ctx.halt()
            return
        forward = [t for t in incoming if t != ctx.node]
        if forward:
            ctx.send(self._rotation_successor(ctx), "probe", tuple(forward))

    def result(self, ctx: NodeContext) -> dict:
        return {
            "healthy": ctx.state["healthy"],
            "members": tuple(ctx.state["seen"]),
        }


def run_necklace_probe(
    network: SynchronousDeBruijnNetwork,
) -> tuple[SimulationResult, set[Word]]:
    """Run the probe on every non-faulty node; return the healthy participants.

    Returns the raw :class:`SimulationResult` and the set of nodes whose
    necklaces contain no faulty processor — exactly the nodes that take part
    in the rest of the FFC computation.
    """
    result = network.run(lambda node: NecklaceProbeProgram(), max_rounds=network.n + 2)
    healthy = {node for node, info in result.node_results.items() if info["healthy"]}
    return result, healthy
