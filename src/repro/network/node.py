"""Processor model for the synchronous De Bruijn network simulator.

Each processor runs the same program (an SPMD style familiar from MPI): the
simulator calls :meth:`NodeProgram.on_start` once and then
:meth:`NodeProgram.on_round` every synchronous round with the messages that
arrived at the node.  Programs communicate exclusively through the
:class:`NodeContext` handed to them — there is no shared state — so a program
that works on the simulator maps directly onto a real message-passing
machine, which is precisely the level of abstraction the paper's Section 2.4
argues at.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import SimulationError
from ..words.alphabet import Word
from .message import Message

__all__ = ["NodeContext", "NodeProgram"]


@dataclass
class NodeContext:
    """The per-node view of the network handed to a :class:`NodeProgram`.

    Attributes
    ----------
    node:
        This processor's identifier (a De Bruijn word).
    d, n:
        Network parameters.
    successors, predecessors:
        The node's neighbours along outgoing / incoming De Bruijn links.
    state:
        A scratch dict private to this node; survives across rounds.
    """

    node: Word
    d: int
    n: int
    successors: tuple[Word, ...]
    predecessors: tuple[Word, ...]
    state: dict[str, Any] = field(default_factory=dict)
    _outbox: list[tuple[Word, str, Any]] = field(default_factory=list)
    _halted: bool = False

    # -- communication ------------------------------------------------------
    def send(self, dst: Word, tag: str, payload: Any = None) -> None:
        """Queue a message to an out-neighbour for delivery next round.

        The multi-port model allows one message per outgoing link per round;
        exceeding that (or addressing a non-neighbour) raises
        :class:`SimulationError`, surfacing protocol bugs instead of silently
        modelling impossible hardware.
        """
        dst = tuple(dst)
        if dst not in self.successors:
            raise SimulationError(
                f"node {self.node} cannot send to {dst}: not an out-neighbour"
            )
        already = sum(1 for queued_dst, _, _ in self._outbox if queued_dst == dst)
        if already >= 1:
            raise SimulationError(
                f"node {self.node} sent two messages to {dst} in one round "
                f"(multi-port allows one per link per round)"
            )
        self._outbox.append((dst, tag, payload))

    def send_to_all_successors(self, tag: str, payload: Any = None) -> None:
        """Send the same message along every outgoing link (one round, multi-port)."""
        for dst in self.successors:
            if not any(q == dst for q, _, _ in self._outbox):
                self.send(dst, tag, payload)

    # -- control ---------------------------------------------------------------
    def halt(self) -> None:
        """Mark this node as finished; it will no longer be stepped."""
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted

    # -- internal hooks used by the simulator ------------------------------------
    def _drain_outbox(self, round_index: int) -> list[Message]:
        out = [
            Message(src=self.node, dst=dst, tag=tag, payload=payload, round_sent=round_index)
            for dst, tag, payload in self._outbox
        ]
        self._outbox.clear()
        return out


class NodeProgram:
    """Base class for the per-processor programs run by the simulator.

    Subclasses override :meth:`on_start` (round 0 initialisation, may already
    send) and :meth:`on_round` (called once per round with the messages
    delivered this round).  A program signals completion by calling
    ``ctx.halt()``; the simulation ends when every live node has halted or
    the round limit is reached.
    """

    def on_start(self, ctx: NodeContext) -> None:  # pragma: no cover - default no-op
        """Initialise node state; runs before the first round."""

    def on_round(self, ctx: NodeContext, messages: Sequence[Message]) -> None:
        """Process one synchronous round.  Must be overridden."""
        raise NotImplementedError

    def result(self, ctx: NodeContext) -> Any:
        """Return this node's contribution to the protocol's overall output."""
        return ctx.state
