"""Thread-safe metrics: Counter/Gauge/Histogram families with label sets.

The model is the Prometheus client one, cut down to what the serving stack
needs: a :class:`MetricsRegistry` holds metric *families*; a family with
label names holds one *child* per label-value tuple (``labels(...)`` is
get-or-create); children carry the actual numbers behind one lock each, so
concurrent increments from the gateway's worker threads are exact — a
counter bumped ``k`` times by ``t`` threads reads exactly ``k * t``.

:class:`Histogram` serves two consumers at once: cumulative bucket counts +
sum + count for the Prometheus exposition, and a *bounded* deque of recent
samples (``max_samples``, default 4096) for the ``/stats`` p50/p99 fields —
the reservoir that replaced the gateway's previously unbounded latency
list.  Memory is O(buckets + max_samples) regardless of traffic.

Exposition (:meth:`MetricsRegistry.render`) is Prometheus text format
0.0.4: ``# HELP``/``# TYPE`` headers, escaped label values, cumulative
``_bucket{le=...}`` series ending at ``+Inf`` with ``_sum``/``_count``.
:func:`parse_prometheus_text` is the matching reader used by the
``python -m repro stats`` client and the CI scrape assertion.

The ``REPRO_OBS_DISABLED=1`` environment variable (or
:func:`set_obs_disabled` at runtime) turns every ``inc``/``set``/``observe``
into an early-return no-op so benchmarks can price the instrumentation;
families and children still exist, they just stop moving.
"""

from __future__ import annotations

import math
import os
import re
import threading
from bisect import bisect_left
from collections import deque
from collections.abc import Iterable, Sequence

from ..exceptions import InvalidParameterError

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "obs_disabled",
    "parse_prometheus_text",
    "set_obs_disabled",
]

#: Default latency buckets (seconds): sub-millisecond kernel launches up to
#: multi-second cold sweeps, roughly 2.5x apart like the Prometheus default.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _ObsState:
    """Process-wide enable/disable switch (seeded from ``REPRO_OBS_DISABLED``)."""

    __slots__ = ("disabled",)

    def __init__(self) -> None:
        self.disabled = os.environ.get("REPRO_OBS_DISABLED", "") not in ("", "0")


_STATE = _ObsState()


def obs_disabled() -> bool:
    """True when metric mutation is globally disabled."""
    return _STATE.disabled


def set_obs_disabled(disabled: bool) -> None:
    """Override the ``REPRO_OBS_DISABLED`` gate at runtime (benchmarks, tests)."""
    _STATE.disabled = bool(disabled)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_pairs(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class _Child:
    """Base for one labelled series: the lock and the label values."""

    __slots__ = ("_lock", "labelvalues")

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        self._lock = threading.Lock()
        self.labelvalues = labelvalues


class CounterChild(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if _STATE.disabled:
            return
        if amount < 0:
            raise InvalidParameterError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild(_Child):
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self._value = 0.0

    def set(self, value: float) -> None:
        if _STATE.disabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if _STATE.disabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild(_Child):
    """Bucketed distribution + a bounded window of recent raw samples."""

    __slots__ = ("_buckets", "_counts", "_sum", "_count", "_samples")

    def __init__(
        self,
        labelvalues: tuple[str, ...],
        buckets: tuple[float, ...],
        max_samples: int,
    ) -> None:
        super().__init__(labelvalues)
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last bin is the +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._samples: deque[float] = deque(maxlen=max_samples)

    def observe(self, value: float) -> None:
        if _STATE.disabled:
            return
        value = float(value)
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._samples.append(value)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def samples(self) -> list[float]:
        """A copy of the bounded recent-sample window (newest last)."""
        with self._lock:
            return list(self._samples)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending at ``(+Inf, count)``."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        out: list[tuple[float, int]] = []
        running = 0
        for le, c in zip(self._buckets, counts):
            running += c
            out.append((le, running))
        out.append((math.inf, total))
        return out


class _MetricFamily:
    """One named metric: shared help/labelnames, one child per label tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise InvalidParameterError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise InvalidParameterError(f"invalid label name {label!r}")
        self.name = name
        self.help = str(help)
        self.labelnames = tuple(str(x) for x in labelnames)
        self._children: dict[tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()

    def _make_child(self, labelvalues: tuple[str, ...]) -> _Child:
        raise NotImplementedError

    def labels(self, *labelvalues: object) -> _Child:
        """Get-or-create the child for one label-value tuple."""
        values = tuple(str(v) for v in labelvalues)
        if len(values) != len(self.labelnames):
            raise InvalidParameterError(
                f"{self.name} takes labels {self.labelnames}, got {values}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child(values)
                self._children[values] = child
            return child

    def children(self) -> list[_Child]:
        """Every labelled child, sorted by label values (stable exposition)."""
        with self._lock:
            return [self._children[k] for k in sorted(self._children)]

    # label-less convenience: a family without labelnames IS its only child
    def _default(self) -> _Child:
        return self.labels()


class Counter(_MetricFamily):
    """A monotonically increasing counter family."""

    kind = "counter"

    def _make_child(self, labelvalues: tuple[str, ...]) -> CounterChild:
        return CounterChild(labelvalues)

    def labels(self, *labelvalues: object) -> CounterChild:
        child = super().labels(*labelvalues)
        if not isinstance(child, CounterChild):  # pragma: no cover - registry guards
            raise InvalidParameterError(f"{self.name} is not a counter")
        return child

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)  # type: ignore[attr-defined]

    def value(self) -> float:
        return self.labels().value() if not self.labelnames else sum(
            c.value() for c in self.children() if isinstance(c, CounterChild)
        )

    def items(self) -> list[tuple[tuple[str, ...], float]]:
        """``(labelvalues, value)`` per child, sorted by label values."""
        return [
            (c.labelvalues, c.value())
            for c in self.children()
            if isinstance(c, CounterChild)
        ]


class Gauge(_MetricFamily):
    """A gauge family (set/inc/dec)."""

    kind = "gauge"

    def _make_child(self, labelvalues: tuple[str, ...]) -> GaugeChild:
        return GaugeChild(labelvalues)

    def labels(self, *labelvalues: object) -> GaugeChild:
        child = super().labels(*labelvalues)
        if not isinstance(child, GaugeChild):  # pragma: no cover - registry guards
            raise InvalidParameterError(f"{self.name} is not a gauge")
        return child

    def set(self, value: float) -> None:
        self._default().set(value)  # type: ignore[attr-defined]

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)  # type: ignore[attr-defined]

    def value(self) -> float:
        return self.labels().value()


class Histogram(_MetricFamily):
    """A histogram family: buckets + sum/count + bounded sample window."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_samples: int = 4096,
    ) -> None:
        bucket_list = sorted(float(b) for b in buckets)
        if not bucket_list:
            raise InvalidParameterError("histograms need at least one bucket bound")
        if bucket_list[-1] == math.inf:
            bucket_list.pop()  # +Inf is implicit
        if not bucket_list:
            raise InvalidParameterError("histograms need one finite bucket bound")
        if max_samples < 1:
            raise InvalidParameterError(f"max_samples must be >= 1, got {max_samples}")
        self.buckets = tuple(bucket_list)
        self.max_samples = int(max_samples)
        super().__init__(name, help, labelnames)

    def _make_child(self, labelvalues: tuple[str, ...]) -> HistogramChild:
        return HistogramChild(labelvalues, self.buckets, self.max_samples)

    def labels(self, *labelvalues: object) -> HistogramChild:
        child = super().labels(*labelvalues)
        if not isinstance(child, HistogramChild):  # pragma: no cover - registry guards
            raise InvalidParameterError(f"{self.name} is not a histogram")
        return child

    def observe(self, value: float) -> None:
        self._default().observe(value)  # type: ignore[attr-defined]

    @property
    def sum(self) -> float:
        return self.labels().sum if not self.labelnames else math.fsum(
            c.sum for c in self.children() if isinstance(c, HistogramChild)
        )

    @property
    def count(self) -> int:
        return self.labels().count if not self.labelnames else sum(
            c.count for c in self.children() if isinstance(c, HistogramChild)
        )

    def samples(self) -> list[float]:
        return self.labels().samples()


class MetricsRegistry:
    """One namespace of metric families, get-or-create by name.

    ``counter``/``gauge``/``histogram`` return the existing family when the
    name is already registered — with the *same* kind and label names, else
    :class:`~repro.exceptions.InvalidParameterError` — which is what lets
    each instrumented module self-register its handles at import time
    (the :func:`repro.engine.caches.register_cache` idiom).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = str(namespace)
        self._metrics: dict[str, _MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, family: _MetricFamily) -> _MetricFamily:
        with self._lock:
            existing = self._metrics.get(family.name)
            if existing is None:
                self._metrics[family.name] = family
                return family
        if existing.kind != family.kind or existing.labelnames != family.labelnames:
            raise InvalidParameterError(
                f"metric {family.name!r} already registered as {existing.kind} "
                f"with labels {existing.labelnames}, requested {family.kind} "
                f"with {family.labelnames}"
            )
        return existing

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        family = self._get_or_create(Counter(name, help, labelnames))
        if not isinstance(family, Counter):  # pragma: no cover - guarded above
            raise InvalidParameterError(f"{name} is not a counter")
        return family

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        family = self._get_or_create(Gauge(name, help, labelnames))
        if not isinstance(family, Gauge):  # pragma: no cover - guarded above
            raise InvalidParameterError(f"{name} is not a gauge")
        return family

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_samples: int = 4096,
    ) -> Histogram:
        family = self._get_or_create(
            Histogram(name, help, labelnames, buckets=buckets, max_samples=max_samples)
        )
        if not isinstance(family, Histogram):  # pragma: no cover - guarded above
            raise InvalidParameterError(f"{name} is not a histogram")
        return family

    def collect(self) -> list[_MetricFamily]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.collect():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                labels = _label_pairs(family.labelnames, child.labelvalues)
                if isinstance(child, HistogramChild):
                    for le, cumulative in child.cumulative_buckets():
                        le_pair = f'le="{_format_value(le)}"'
                        inner = labels[1:-1] + "," + le_pair if labels else le_pair
                        lines.append(
                            f"{family.name}_bucket{{{inner}}} {cumulative}"
                        )
                    lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{labels} {child.count}")
                elif isinstance(child, (CounterChild, GaugeChild)):
                    lines.append(f"{family.name}{labels} {_format_value(child.value())}")
        return "\n".join(lines) + ("\n" if lines else "")


def render_registries(registries: Iterable[MetricsRegistry]) -> str:
    """Concatenate several registries into one exposition document."""
    return "".join(registry.render() for registry in registries)


#: The process-wide registry backing module-level instrumentation (kernel
#: launches, sweep trials).  Request-scoped owners — one gateway, one
#: service — construct their own :class:`MetricsRegistry` instead, so tests
#: and replicas never share counters.
DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return DEFAULT_REGISTRY


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+\d+)?$"  # optional timestamp, ignored
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition text into ``{name: [(labels, value), ...]}``.

    The inverse of :meth:`MetricsRegistry.render`, used by the
    ``python -m repro stats`` pretty-printer and the CI ``/metrics`` scrape
    assertion.  Histogram series keep their expanded names
    (``X_bucket``/``X_sum``/``X_count``); comment/blank lines are skipped;
    a malformed sample line raises
    :class:`~repro.exceptions.InvalidParameterError`.
    """
    out: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise InvalidParameterError(
                f"line {lineno} is not a valid exposition sample: {raw!r}"
            )
        labels_blob = match.group("labels")
        labels: dict[str, str] = {}
        if labels_blob:
            # walk pair by pair so stray text between pairs is an error, not
            # silently dropped (label VALUES may contain commas and equals)
            pos = 0
            while pos < len(labels_blob):
                pair = _LABEL_PAIR_RE.match(labels_blob, pos)
                if pair is None:
                    raise InvalidParameterError(
                        f"line {lineno} has malformed labels: {raw!r}"
                    )
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                pos = pair.end()
                if pos < len(labels_blob):
                    if labels_blob[pos] != ",":
                        raise InvalidParameterError(
                            f"line {lineno} has malformed labels: {raw!r}"
                        )
                    pos += 1
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise InvalidParameterError(
                f"line {lineno} has a non-numeric value {value_text!r}"
            ) from None
        out.setdefault(match.group("name"), []).append((labels, value))
    return out
