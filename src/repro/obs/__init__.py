"""``repro.obs`` — the unified observability layer of the serving stack.

Three small, dependency-free primitives shared by every layer:

* :mod:`repro.obs.metrics` — a thread-safe metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with label sets)
  with Prometheus text exposition and a parser for it.  The process-wide
  :data:`DEFAULT_REGISTRY` backs the kernel/sweep instrumentation; request
  -scoped owners (a gateway, a service) hold their own
  :class:`MetricsRegistry` so concurrent instances never share counters.
* :mod:`repro.obs.tracing` — request tracing: a :class:`Trace` accumulates
  per-stage :class:`Span` records (queue wait, kernel launch, reply, ...)
  and a bounded :class:`Tracer` ring keeps recently finished traces,
  exportable as JSONL (the gateway's ``GET /traces``).
* the ``REPRO_OBS_DISABLED`` gate — :func:`set_obs_disabled` /
  :func:`obs_disabled` turn every metric mutation into an early-return
  no-op, so the benchmark suite can price the instrumentation itself
  (``python -m repro bench`` records instrumented vs disabled wall times).

The registration idiom mirrors :func:`repro.engine.caches.register_cache`:
each instrumented module creates its metric handles at import time from the
registry it reports to, so the exposition endpoint can enumerate everything
without a central catalogue.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    obs_disabled,
    parse_prometheus_text,
    set_obs_disabled,
)
from .tracing import Span, Trace, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "get_registry",
    "obs_disabled",
    "parse_prometheus_text",
    "set_obs_disabled",
]
