"""Request tracing: per-stage spans with a bounded ring of finished traces.

A :class:`Trace` is minted by a :class:`Tracer` when a request enters the
gateway (or adopted from an ``X-Trace-Id`` header) and rides along with the
request through the micro-batcher and kernel executor.  Each layer records
the stage it owns — ``gateway``, ``queue``, ``kernel``, ``reply``, ... —
either with the :meth:`Trace.span` context manager or by handing absolute
``perf_counter`` readings to :meth:`Trace.add_span`.  Span starts are stored
relative to the trace's own epoch so exported records are self-contained.

Finished traces land in the tracer's bounded ring (newest win) and are
served by the gateway as JSONL via ``GET /traces``.
"""

from __future__ import annotations

import json
import re
import secrets
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

from ..exceptions import InvalidParameterError
from .metrics import obs_disabled

__all__ = ["Span", "Trace", "Tracer", "TRACE_ID_RE"]

#: Accepted shape for externally supplied (``X-Trace-Id``) trace ids.
TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


@dataclass(frozen=True)
class Span:
    """One timed stage of a request.

    ``start_s`` is relative to the owning trace's epoch, so the spans of a
    trace can be laid out on a single timeline without clock context.
    """

    stage: str
    start_s: float
    duration_s: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }


class Trace:
    """A single request's span accumulator.

    Thread-safe: the batcher's dispatch loop and the gateway's request
    handler may record spans for the same trace concurrently.
    """

    __slots__ = ("trace_id", "unix_time", "_t0", "_spans", "_lock", "_tracer")

    def __init__(self, trace_id: str, tracer: "Tracer | None" = None) -> None:
        self.trace_id = trace_id
        self.unix_time = time.time()
        self._t0 = time.perf_counter()
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._tracer = tracer

    @property
    def t0(self) -> float:
        """The trace epoch as an absolute ``perf_counter`` reading."""
        return self._t0

    def span(self, stage: str) -> "_SpanTimer":
        """Context manager timing ``stage`` from entry to exit."""
        return _SpanTimer(self, stage)

    def add_span(self, stage: str, start: float, end: float) -> None:
        """Record a stage from absolute ``perf_counter`` readings."""
        if obs_disabled():
            return
        span = Span(
            stage=stage,
            start_s=max(0.0, start - self._t0),
            duration_s=max(0.0, end - start),
        )
        with self._lock:
            self._spans.append(span)

    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            spans = [s.as_dict() for s in self._spans]
        return {
            "trace_id": self.trace_id,
            "unix_time": self.unix_time,
            "elapsed_s": sum(s["duration_s"] for s in spans),
            "spans": spans,
        }

    def finish(self, elapsed_s: float | None = None) -> dict[str, Any]:
        """Seal the trace and push it into the owning tracer's ring.

        ``elapsed_s`` overrides the span-sum total when the caller measured
        the full request wall time itself (the gateway does).
        """
        record = self.as_dict()
        if elapsed_s is not None:
            record["elapsed_s"] = elapsed_s
        if self._tracer is not None:
            self._tracer._record(record)
        return record


class _SpanTimer:
    __slots__ = ("_trace", "_stage", "_start")

    def __init__(self, trace: Trace, stage: str) -> None:
        self._trace = trace
        self._stage = stage
        self._start = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._trace.add_span(self._stage, self._start, time.perf_counter())


class Tracer:
    """Mints traces and keeps a bounded ring of finished trace records."""

    def __init__(self, max_traces: int = 256) -> None:
        if max_traces < 1:
            raise InvalidParameterError(
                f"max_traces must be >= 1, got {max_traces}"
            )
        self._max_traces = max_traces
        self._records: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def trace(self, trace_id: str | None = None) -> Trace:
        """Start a trace; mints an id unless a valid one is supplied."""
        if trace_id is None:
            trace_id = secrets.token_hex(8)
        elif not TRACE_ID_RE.match(trace_id):
            raise InvalidParameterError(
                "trace id must match [A-Za-z0-9._-]{1,64}, "
                f"got {trace_id!r}"
            )
        return Trace(trace_id, tracer=self)

    def _record(self, record: dict[str, Any]) -> None:
        with self._lock:
            # dicts preserve insertion order; pop-and-reinsert keeps the
            # newest record for a reused trace id at the ring's tail
            self._records.pop(record["trace_id"], None)
            self._records[record["trace_id"]] = record
            while len(self._records) > self._max_traces:
                self._records.pop(next(iter(self._records)))

    def get(self, trace_id: str) -> dict[str, Any] | None:
        with self._lock:
            return self._records.get(trace_id)

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Finished trace records, oldest first."""
        with self._lock:
            records = list(self._records.values())
        if limit is not None:
            records = records[-limit:]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.recent())

    def export_jsonl(self, trace_id: str | None = None) -> str:
        """All finished traces (or one) as JSON Lines, oldest first."""
        if trace_id is not None:
            record = self.get(trace_id)
            records = [record] if record is not None else []
        else:
            records = self.recent()
        return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
