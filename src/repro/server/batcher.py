"""Micro-batching of concurrent measure requests onto the kernel executor.

One :class:`MicroBatcher` fronts one executor shard.  Concurrent callers
``await submit(mask)``; a single flusher task drains the bounded queue and
packs up to ``max_batch`` (<= 64) pending masks into ONE bit-parallel kernel
launch (:meth:`repro.engine.executor.KernelExecutor.measure_masks_batch`),
flushing early when the batch fills and at latest ``max_wait_s`` after the
first request of a batch arrived.  The kernel call runs in a one-thread
executor pool so the event loop keeps accepting requests while a batch
computes — the next batch accumulates during the current launch, which is
what keeps occupancy high under load (the HoneyBadgerMPC program-runner
shape: many concurrent tasks, one shared execution context).

Backpressure is the bounded queue: when ``max_queue`` requests are already
waiting, :meth:`MicroBatcher.submit` raises :class:`QueueFullError`
immediately instead of buffering without limit — the gateway maps that to
HTTP 503 so load sheds at the edge.

Every answer is bit-for-bit what the scalar path
(:meth:`~repro.engine.executor.KernelExecutor.measure_mask_with_root`)
returns for the same mask: batching only changes how many requests share a
sweep, never what any request observes.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from ..graphs.msbfs import WORD_WIDTH
from ..exceptions import DeadlineExceededError, InvalidParameterError
from ..obs import MetricsRegistry
from ..obs.tracing import Trace

if TYPE_CHECKING:
    from ..engine.executor import KernelExecutor

__all__ = ["MicroBatcher", "QueueFullError", "latency_percentiles"]


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the shard's bounded request queue is full."""


def latency_percentiles(samples: Iterable[float]) -> dict[str, float]:
    """``{p50, p99}`` (seconds) of an iterable of latency samples."""
    data = sorted(samples)
    if not data:
        return {"p50_s": 0.0, "p99_s": 0.0}
    return {
        "p50_s": data[len(data) // 2],
        "p99_s": data[min(len(data) - 1, (len(data) * 99) // 100)],
    }


class MicroBatcher:
    """Coalesce concurrent mask measurements into <= 64-lane kernel launches.

    Parameters
    ----------
    executor:
        The :class:`~repro.engine.executor.KernelExecutor` shard this
        batcher dispatches to.
    max_batch:
        Lanes per kernel launch (1..64).  ``1`` serves every request with
        its own launch — the single-query baseline the serve benchmark
        compares against.
    max_wait_s:
        Longest a request may wait for lane-mates after reaching the head
        of a batch (default 2 ms): the latency price of occupancy.
    max_queue:
        Bound on queued requests; beyond it ``submit`` raises
        :class:`QueueFullError` (backpressure).
    registry:
        The :class:`~repro.obs.MetricsRegistry` this shard reports to
        (private by default; the gateway passes its own so every shard
        shows up on ``/metrics`` under its ``shard`` label).
    shard:
        The ``shard`` label value for this batcher's metrics (defaults to
        the executor's topology key).

    Must be used from a running asyncio event loop; the internal queue and
    flusher task bind to the loop of the first ``submit``.
    """

    def __init__(
        self,
        executor: KernelExecutor,
        max_batch: int = WORD_WIDTH,
        max_wait_s: float = 0.002,
        max_queue: int = 1024,
        registry: MetricsRegistry | None = None,
        shard: str | None = None,
    ) -> None:
        if not 1 <= max_batch <= WORD_WIDTH:
            raise InvalidParameterError(
                f"max_batch must be in 1..{WORD_WIDTH}, got {max_batch}"
            )
        if max_wait_s < 0:
            raise InvalidParameterError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_queue < 1:
            raise InvalidParameterError(f"max_queue must be >= 1, got {max_queue}")
        self.executor = executor
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.max_queue = int(max_queue)
        self._queue: asyncio.Queue | None = None
        self._flusher: asyncio.Task | None = None
        # one worker thread per shard: launches on one executor are
        # serialised anyway (shared kernel workspace), so extra threads
        # would only add contention
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"batcher-{executor.topology_key}"
        )
        # -- metrics: one child per shard in the owning registry ---------------
        self.registry = registry if registry is not None else MetricsRegistry()
        self.shard = shard if shard is not None else executor.topology_key
        labels = ("shard",)
        self._obs_launches = self.registry.counter(
            "repro_batcher_launches_total", "Kernel launches dispatched", labels
        ).labels(self.shard)
        self._obs_lanes = self.registry.counter(
            "repro_batcher_lanes_total", "Lanes (requests) dispatched", labels
        ).labels(self.shard)
        self._obs_completed = self.registry.counter(
            "repro_batcher_completed_total", "Requests answered", labels
        ).labels(self.shard)
        self._obs_rejected = self.registry.counter(
            "repro_batcher_rejected_total", "Requests shed by backpressure", labels
        ).labels(self.shard)
        # bounded reservoir replacing the old unbounded latency lists: the
        # p50/p99 the shard reports come from this histogram's sample window
        self._obs_wait_seconds = self.registry.histogram(
            "repro_batcher_wait_seconds",
            "Submit-to-answer wall time per request",
            labels,
        ).labels(self.shard)
        self._obs_expired = self.registry.counter(
            "repro_batcher_deadline_expired_total",
            "Requests that missed their per-request deadline",
            labels,
        ).labels(self.shard)
        self._obs_isolated = self.registry.counter(
            "repro_batcher_isolated_failures_total",
            "Invalid masks failed individually without poisoning their batch",
            labels,
        ).labels(self.shard)
        #: lanes currently inside a kernel launch (drain watches this)
        self._dispatching = 0

    # -- submission ------------------------------------------------------------
    async def submit(
        self,
        mask: np.ndarray,
        trace: Trace | None = None,
        deadline_s: float | None = None,
    ) -> tuple[int, int, int | None]:
        """Measure one request's removed-node mask; resolves when its batch lands.

        Returns ``(region_size, root_eccentricity, measured_root_code)`` —
        bit-for-bit the scalar answer for ``mask`` alone.  Raises
        :class:`QueueFullError` when the shard queue is at capacity.  When a
        ``trace`` rides along it receives ``queue``/``batch`` spans here and
        ``kernel`` (plus ``fallback``) spans from the executor.

        ``deadline_s`` bounds the submit-to-answer wait: when it elapses the
        request fails with :class:`~repro.exceptions.DeadlineExceededError`
        and its mask simply *leaves the batch* — coalesced lane-mates are
        unaffected (the flusher skips expired entries at pack time; a lane
        already inside a kernel launch completes and its late answer is
        discarded).
        """
        if deadline_s is not None and deadline_s <= 0:
            raise InvalidParameterError(
                f"deadline_s must be > 0 when given, got {deadline_s}"
            )
        self._ensure_started()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        deadline = None if deadline_s is None else loop.time() + deadline_s
        try:
            self._queue.put_nowait((mask, future, time.perf_counter(), trace, deadline))
        except asyncio.QueueFull:
            self._obs_rejected.inc()
            raise QueueFullError(
                f"shard queue full ({self.max_queue} requests pending)"
            ) from None
        if deadline_s is None:
            return await future
        try:
            return await asyncio.wait_for(future, deadline_s)
        except asyncio.TimeoutError:
            self._obs_expired.inc()
            raise DeadlineExceededError(
                f"request missed its {deadline_s * 1e3:.0f} ms deadline "
                f"(shard {self.shard})"
            ) from None

    def _ensure_started(self) -> None:
        if self._flusher is None or self._flusher.done():
            self._queue = asyncio.Queue(maxsize=self.max_queue)
            self._flusher = asyncio.get_running_loop().create_task(self._flush_loop())

    # -- the flusher -----------------------------------------------------------
    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.max_wait_s
            while len(batch) < self.max_batch:
                # drain whatever is already queued before sleeping at all
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            await self._dispatch(batch)

    def _mask_error(self, mask: object) -> str | None:
        """Why ``mask`` cannot join a kernel launch (None when it can).

        Per-mask validation is what isolates a poisoned request: one bad
        mask in a 64-lane flush fails alone instead of propagating its
        exception to every coalesced neighbour.  Only shape/type problems
        are knowable here; anything deeper still fails the whole launch.
        """
        if not isinstance(mask, np.ndarray):
            return f"mask must be a numpy bool array, got {type(mask).__name__}"
        if mask.dtype != np.bool_:
            return f"mask dtype must be bool, got {mask.dtype}"
        num_nodes = getattr(
            getattr(self.executor, "topology", None), "num_nodes", None
        )
        if mask.ndim != 1 or (num_nodes is not None and mask.shape != (num_nodes,)):
            expected = "(num_nodes,)" if num_nodes is None else f"({num_nodes},)"
            return f"mask shape must be {expected}, got {mask.shape}"
        return None

    async def _dispatch(
        self,
        batch: list[
            tuple[np.ndarray, asyncio.Future, float, Trace | None, float | None]
        ],
    ) -> None:
        loop = asyncio.get_running_loop()
        dispatch_start = time.perf_counter()
        live: list[
            tuple[np.ndarray, asyncio.Future, float, Trace | None, float | None]
        ] = []
        for entry in batch:
            mask, future, enqueued, trace, deadline = entry
            if future.done():
                continue  # waiter cancelled (e.g. its wait_for already fired)
            if deadline is not None and loop.time() >= deadline:
                # expired while queued: leave the batch, fail only this lane
                self._obs_expired.inc()
                future.set_exception(
                    DeadlineExceededError(
                        f"request expired in queue (shard {self.shard})"
                    )
                )
                continue
            error = self._mask_error(mask)
            if error is not None:
                self._obs_isolated.inc()
                future.set_exception(InvalidParameterError(error))
                continue
            if trace is not None:
                # queue wait: enqueue to the moment its batch was sealed
                trace.add_span("queue", enqueued, dispatch_start)
            live.append(entry)
        if not live:
            return
        masks = [mask for mask, _, _, _, _ in live]
        traces = [trace for _, _, _, trace, _ in live]
        self._dispatching = len(live)
        try:
            call_start = time.perf_counter()
            if any(t is not None for t in traces):
                call = partial(self.executor.measure_masks_batch, masks, traces)
            else:
                # traceless shape: keeps bare-bones test doubles with a
                # (masks)-only signature working
                call = partial(self.executor.measure_masks_batch, masks)
            results = await loop.run_in_executor(self._pool, call)
        except Exception as exc:  # surface the failure on every waiter
            for _, future, _, _, _ in live:
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            self._dispatching = 0
        self._obs_launches.inc()
        self._obs_lanes.inc(len(live))
        now = time.perf_counter()
        for (_, future, enqueued, trace, _), result in zip(live, results):
            self._obs_completed.inc()
            self._obs_wait_seconds.observe(now - enqueued)
            if trace is not None:
                # batch assembly: batch sealed to kernel hand-off
                trace.add_span("batch", dispatch_start, call_start)
            if not future.done():  # the waiter may have been cancelled
                future.set_result(result)

    # -- lifecycle / observability ---------------------------------------------
    async def close(self) -> None:
        """Cancel the flusher, fail any still-queued waiters, release the thread.

        Requests caught in the queue at shutdown get a :class:`QueueFullError`
        ("batcher closed") instead of an eternally pending future — a caller
        awaiting ``submit`` must always resolve.
        """
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        if self._queue is not None:
            while True:
                try:
                    _, future, _, _, _ = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not future.done():
                    future.set_exception(QueueFullError("batcher closed"))
        self._pool.shutdown(wait=False)

    def pending(self) -> int:
        """Requests still in flight: queued plus inside the current launch.

        The gateway's graceful drain polls this to know when the shard has
        flushed everything it accepted.
        """
        queued = self._queue.qsize() if self._queue is not None else 0
        return queued + self._dispatching

    def stats(self) -> dict:
        """Batch-occupancy, queue and latency counters of this shard.

        Every scalar is a view over this shard's children in the metrics
        registry; the key set is the stable ``/stats`` schema.
        """
        launches = int(self._obs_launches.value())
        lanes = int(self._obs_lanes.value())
        stats = {
            "max_batch": self.max_batch,
            "max_wait_s": self.max_wait_s,
            "max_queue": self.max_queue,
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "launches": launches,
            "lanes": lanes,
            "batch_occupancy": lanes / launches if launches else 0.0,
            "completed": int(self._obs_completed.value()),
            "rejected": int(self._obs_rejected.value()),
            "deadline_expired": int(self._obs_expired.value()),
            "isolated_failures": int(self._obs_isolated.value()),
        }
        stats.update(latency_percentiles(self._obs_wait_seconds.samples()))
        return stats
