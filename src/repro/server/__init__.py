"""repro.server — the async micro-batching gateway over the kernel executor.

The :mod:`repro.engine` answers queries one at a time; this subsystem puts a
serving front-end on top, shaped like the HoneyBadgerMPC program-runner
idiom (many concurrent tasks driven through one shared execution context):

* :class:`~repro.server.batcher.MicroBatcher` — coalesces concurrent
  ``measure`` requests into micro-batches of up to 64 fault masks per
  bit-parallel kernel launch (flush on batch-full or a configurable
  max-wait), with a bounded queue for backpressure and batch-occupancy /
  latency metrics;
* :class:`~repro.server.gateway.BatchingGateway` — an asyncio HTTP/1.1
  server (``python -m repro serve``) exposing ``POST /embed``,
  ``POST /measure``, ``GET /stats`` and ``GET /healthz``, with one executor
  shard (and one batcher) per ``(topology, d, n, root)`` served;
* :mod:`~repro.server.client` — a small stdlib-only client
  (:class:`~repro.server.client.ServeClient` for scripts,
  :class:`~repro.server.client.AsyncServeClient` for load generation);
* :mod:`~repro.server.smoke` — the CI smoke driver
  (``python -m repro.server.smoke``): ~200 concurrent requests across two
  topologies, deterministic-answer and batch-occupancy assertions.

Symbols are loaded lazily (PEP 562) so importing :mod:`repro.server` stays
cheap for callers that only want one piece.
"""

from typing import Any

__all__ = [
    "BatchingGateway",
    "GatewayConfig",
    "MicroBatcher",
    "QueueFullError",
    "ServeClient",
    "AsyncServeClient",
]

_LAZY = {
    "BatchingGateway": "gateway",
    "GatewayConfig": "gateway",
    "MicroBatcher": "batcher",
    "QueueFullError": "batcher",
    "ServeClient": "client",
    "AsyncServeClient": "client",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
