"""The asyncio HTTP gateway: ``python -m repro serve``.

A deliberately small stdlib-only HTTP/1.1 server (keep-alive, JSON bodies)
— no web framework is baked into the container, and the surface is four
routes:

``POST /measure``
    ``{"topology": "kautz", "d": 2, "n": 8, "faults": [[0,1,...], ...],
    "root": null}`` — the topology-generic fault-free-region query.
    Requests are normalised to canonical fault-unit representatives (the
    same cache key the :class:`~repro.engine.service.EmbeddingService`
    uses), answered from the gateway's bounded LRU when possible, and
    otherwise coalesced by the shard's
    :class:`~repro.server.batcher.MicroBatcher` into <= 64-lane kernel
    launches.  The response is a
    :class:`~repro.engine.service.MeasureResponse` dict — byte-identical
    fields to the scalar service path.

``POST /embed``
    ``{"d": 2, "n": 10, "faults": [...], "root_hint": null}`` — one FFC
    ring query, served by the shared (thread-safe)
    :class:`~repro.engine.service.EmbeddingService` on a worker thread (the
    FFC construction is scalar; its answer cache still makes hot fault sets
    cheap).  ``"include_cycle": false`` drops the (possibly huge) cycle
    payload.

``GET /stats``
    Request/latency/batch-occupancy metrics per shard, gateway totals, the
    gateway answer cache, and the full engine cache audit
    (:meth:`EmbeddingService.stats`).

``GET /healthz``
    Liveness probe.

``GET /metrics``
    Prometheus text exposition (format 0.0.4) of every metric the process
    holds: the gateway's own registry (requests, errors, latency, per-shard
    batcher counters), the embedding service's, and the process-wide
    default registry (kernel launch/lane/level profiling).  ``python -m
    repro stats`` scrapes and pretty-prints this endpoint.

``GET /traces``
    Recently finished request traces as JSON Lines, one trace per line
    (``?id=<trace_id>`` selects one).  Every ``POST /measure`` is traced:
    the gateway mints a trace id (or adopts a valid ``X-Trace-Id`` header),
    the id is echoed in the response's ``trace_id`` field, and the exported
    spans tile the request — ``gateway`` (parse/normalise/cache lookup),
    ``queue`` (waiting for lane-mates), ``batch`` (assembly), ``kernel``
    (the shared launch), ``fallback`` (root-dead peeling, when taken) and
    ``reply`` (response build).

One executor shard — one :class:`MicroBatcher` over one process-wide
:func:`~repro.engine.executor.cached_executor` — exists per
``(topology, d, n, root)`` served.  Bounded shard queues shed load as HTTP
503; malformed requests are 400s; nothing the client sends can grow server
memory without bound (body size is capped, caches are LRU).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from ..churn.chaos import ChaosConfig, ChaosInjector
from ..engine.cache import LRUCache
from ..engine.service import EmbeddingRequest, EmbeddingService, MeasureResponse
from ..exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    ReproError,
    ServerStateError,
)
from ..graphs.msbfs import WORD_WIDTH
from ..obs import DEFAULT_REGISTRY, MetricsRegistry, Tracer
from ..obs.metrics import render_registries
from ..obs.tracing import Trace
from ..topology import DEFAULT_TOPOLOGY, get_topology
from ..topology.base import Topology
from .batcher import MicroBatcher, QueueFullError, latency_percentiles

__all__ = ["GatewayConfig", "BatchingGateway", "run"]

_MAX_HEADER_BYTES = 64 * 1024

#: Content type of the Prometheus text exposition format.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class _TextResponse:
    """A non-JSON route result (``/metrics`` exposition, ``/traces`` JSONL)."""

    text: str
    content_type: str


class _ChaosDropConnection(Exception):
    """Raised by the chaos middleware to reset the connection unanswered."""


def _query_param(query: str, name: str) -> str | None:
    """The first value of ``name`` in a raw query string (no unquoting:
    trace ids are ``[A-Za-z0-9._-]`` so percent-encoding never applies)."""
    for part in query.split("&"):
        key, sep, value = part.partition("=")
        if sep and key == name:
            return value
    return None


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the serving front-end (see ``python -m repro serve --help``).

    ``max_batch``/``max_wait_ms`` trade latency for kernel occupancy:
    requests wait at most ``max_wait_ms`` for lane-mates before their batch
    launches, and never wait once 64 lanes are full.  ``queue_limit`` bounds
    each shard's pending requests — beyond it the gateway sheds load with
    HTTP 503 instead of buffering unboundedly (backpressure).
    """

    host: str = "127.0.0.1"
    port: int = 8787
    max_batch: int = WORD_WIDTH
    max_wait_ms: float = 2.0
    queue_limit: int = 1024
    max_cached_answers: int = 256
    max_body_bytes: int = 1024 * 1024
    #: default per-request deadline for /measure (0 = none); requests may
    #: override with a "deadline_ms" payload field
    deadline_ms: float = 0.0
    #: serve guarantee-bound-only answers flagged ``degraded: true`` when a
    #: shard queue saturates, instead of a hard 503
    degraded: bool = False
    #: fault-injection middleware knobs (None/disabled = no injection)
    chaos: ChaosConfig | None = None
    #: seconds the graceful drain waits for in-flight batches on SIGTERM
    drain_timeout_s: float = 10.0


class BatchingGateway:
    """The serving process: shards, batchers, HTTP front-end, metrics."""

    def __init__(
        self,
        config: GatewayConfig | None = None,
        service: EmbeddingService | None = None,
    ) -> None:
        self.config = config or GatewayConfig()
        #: this gateway's metrics — the single backing store for /stats and
        #: the gateway/shard portion of /metrics (per-instance so concurrent
        #: gateways in one process never share counters)
        self.registry = MetricsRegistry()
        #: ring of finished request traces served by GET /traces
        self.tracer = Tracer()
        self.service = service or EmbeddingService(
            max_cached_answers=self.config.max_cached_answers,
            registry=self.registry,
        )
        self._batchers: dict[tuple, MicroBatcher] = {}
        self._measure_cache = LRUCache(
            self.config.max_cached_answers, name="server.measure_answers"
        )
        self._server: asyncio.AbstractServer | None = None
        self._started = time.time()
        self._obs_requests = self.registry.counter(
            "repro_gateway_requests_total",
            "HTTP requests received",
            labelnames=("endpoint",),
        )
        self._obs_errors = self.registry.counter(
            "repro_gateway_errors_total", "HTTP responses with status >= 400"
        )
        # bounded reservoir (the old deque, now a histogram sample window):
        # p50/p99 on /stats come from .samples(), the buckets feed /metrics
        self._obs_request_seconds = self.registry.histogram(
            "repro_gateway_request_seconds",
            "End-to-end request wall time at the gateway",
        )
        self._obs_uptime = self.registry.gauge(
            "repro_gateway_uptime_seconds", "Seconds since gateway start"
        )
        self._obs_degraded = self.registry.counter(
            "repro_gateway_degraded_total",
            "Requests answered in graceful-degradation mode (bound-only)",
        )
        self._obs_retried = self.registry.counter(
            "repro_gateway_retried_requests_total",
            "Requests arriving with a nonzero X-Retry-Attempt header",
        )
        self._chaos: ChaosInjector | None = None
        if self.config.chaos is not None and self.config.chaos.enabled:
            self._chaos = ChaosInjector(self.config.chaos, registry=self.registry)

    # -- shards ----------------------------------------------------------------
    @staticmethod
    def _shard_name(key: tuple) -> str:
        """The display/label name of one shard key: ``kautz(2,8)[@root]``."""
        return f"{key[0]}({key[1]},{key[2]})" + (f"@{key[3]}" if key[3] else "")

    def _shard(
        self, topology: str, d: int, n: int, root: tuple[int, ...] | None
    ) -> MicroBatcher:
        """The (lazily created) micro-batcher of one executor shard."""
        from ..engine.executor import cached_executor

        key = (topology, d, n, root)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = MicroBatcher(
                cached_executor(d, n, root, topology),
                max_batch=self.config.max_batch,
                max_wait_s=self.config.max_wait_ms / 1000.0,
                max_queue=self.config.queue_limit,
                registry=self.registry,
                shard=self._shard_name(key),
            )
            self._batchers[key] = batcher
        return batcher

    # -- endpoint implementations ----------------------------------------------
    async def _measure(
        self, payload: dict, trace: Trace | None = None, saturate: bool = False
    ) -> dict:
        start = time.perf_counter()
        topology = str(payload.get("topology", DEFAULT_TOPOLOGY))
        topo = get_topology(topology, int(payload["d"]), int(payload["n"]))
        faults = payload.get("faults") or []
        fault_codes = [topo.encode(tuple(int(x) for x in w)) for w in faults]
        rep_codes = topo.fault_unit_reps(fault_codes)
        root = payload.get("root")
        root_key = None if root is None else tuple(int(x) for x in root)
        batcher = self._shard(topo.key, topo.d, topo.n, root_key)
        key = (topo.key, topo.d, topo.n, tuple(rep_codes), batcher.executor.root_code)

        if saturate:
            # injected saturation models a fully saturated shard: it must
            # bite deterministically, so it is decided before the answer
            # cache can absorb the request
            if not self.config.degraded:
                raise QueueFullError("chaos: injected queue saturation")
            return self._degraded_measure(topo, fault_codes, rep_codes, start, trace)

        measured = self._measure_cache.get(key)
        cached = measured is not None
        gateway_end = time.perf_counter()
        if trace is not None:
            # parse + normalise + cache lookup; the queue/batch/kernel spans
            # (cache misses only) are recorded downstream
            trace.add_span("gateway", start, gateway_end)
        if not cached:
            removed = topo.fault_unit_mask(np.asarray(fault_codes, dtype=np.int64))
            deadline_ms = float(
                payload.get("deadline_ms", self.config.deadline_ms) or 0.0
            )
            try:
                measured = await batcher.submit(
                    removed,
                    trace,
                    deadline_s=deadline_ms / 1000.0 if deadline_ms > 0 else None,
                )
            except QueueFullError:
                if not self.config.degraded:
                    raise
                return self._degraded_measure(topo, fault_codes, rep_codes, start, trace)
            self._measure_cache.put(key, measured)

        reply_start = time.perf_counter()
        size, ecc, measured_root = measured
        data = MeasureResponse(
            topology=topo.key,
            d=topo.d,
            n=topo.n,
            faults=tuple(topo.decode(c) for c in fault_codes),
            fault_units=tuple(topo.decode(c) for c in rep_codes),
            root=None if measured_root is None else topo.decode(measured_root),
            region_size=int(size),
            root_eccentricity=int(ecc),
            reference_size=topo.reference_size(len(set(fault_codes))),
            guarantee_bound=topo.guarantee_bound(len(set(fault_codes))),
            cached=cached,
            elapsed_s=0.0,
        ).as_dict()
        end = time.perf_counter()
        data["elapsed_s"] = end - start
        if trace is not None:
            trace.add_span("reply", reply_start, end)
            trace.finish(elapsed_s=end - start)
            data["trace_id"] = trace.trace_id
        return data

    def _degraded_measure(
        self,
        topo: Topology,
        fault_codes: list[int],
        rep_codes: np.ndarray,
        start: float,
        trace: Trace | None,
    ) -> dict:
        """Guarantee-bound-only answer served when the queue saturates.

        Graceful degradation: instead of a hard 503 the client gets the
        analytic fields that need no kernel time (the reference size and the
        paper's worst-case guarantee bound), with the measured fields null
        and ``degraded: true`` so no caller can mistake it for a real
        measurement.  Never cached.
        """
        self._obs_degraded.inc()
        f = len(set(fault_codes))
        data = {
            "topology": topo.key,
            "d": topo.d,
            "n": topo.n,
            "faults": [list(topo.decode(c)) for c in fault_codes],
            "fault_units": [list(topo.decode(int(c))) for c in rep_codes],
            "root": None,
            "region_size": None,
            "root_eccentricity": None,
            "reference_size": topo.reference_size(f),
            "guarantee_bound": topo.guarantee_bound(f),
            "cached": False,
            "degraded": True,
            "elapsed_s": 0.0,
        }
        end = time.perf_counter()
        data["elapsed_s"] = end - start
        if trace is not None:
            trace.finish(elapsed_s=end - start)
            data["trace_id"] = trace.trace_id
        return data

    async def _embed(self, payload: dict) -> dict:
        request = EmbeddingRequest.make(
            int(payload["d"]),
            int(payload["n"]),
            faults=payload.get("faults") or [],
            root_hint=payload.get("root_hint"),
        )
        # the FFC construction is scalar CPU work: keep the loop responsive
        # by running it on a worker thread (the service is thread-safe)
        response = await asyncio.get_running_loop().run_in_executor(
            None, self.service.submit, request
        )
        return response.as_dict(include_cycle=bool(payload.get("include_cycle", True)))

    async def _churn(self, payload: dict) -> dict:
        """POST /churn: apply one dynamic-fault event to the embedding service.

        ``{"d": 2, "n": 8, "op": "fault"|"heal"|"reset", "node": [...],
        "seq": 0, "root_hint": null, "include_cycle": true}`` — see
        :meth:`EmbeddingService.apply_event` for the incremental
        re-embedding and seq-idempotency contract.  ``op: "reset"`` clears
        the session so a scenario always starts from an empty fault set.
        """
        op = str(payload.get("op", ""))
        d, n = int(payload["d"]), int(payload["n"])
        hint = payload.get("root_hint")
        loop = asyncio.get_running_loop()
        if op == "reset":
            await loop.run_in_executor(
                None, partial(self.service.reset_churn, d, n, hint)
            )
            return {"status": "reset", "d": d, "n": n}
        seq = payload.get("seq")
        call = partial(
            self.service.apply_event,
            d,
            n,
            op,
            payload["node"],
            root_hint=hint,
            seq=None if seq is None else int(seq),
        )
        response = await loop.run_in_executor(None, call)
        data = response.as_dict(include_cycle=bool(payload.get("include_cycle", True)))
        if seq is not None:
            # echoed so a retrying client can pair answer with delivery
            data["seq"] = int(seq)
        return data

    def stats(self) -> dict:
        """Gateway metrics + shard batchers + caches + the engine audit.

        Every scalar is a view over the gateway's metrics registry; the key
        set is the stable PR 5 ``/stats`` schema and must not change.
        """
        shards = {
            self._shard_name(key): b.stats() for key, b in self._batchers.items()
        }
        launches = sum(s["launches"] for s in shards.values())
        lanes = sum(s["lanes"] for s in shards.values())
        server = {
            "uptime_s": time.time() - self._started,
            "requests": {
                labelvalues[0]: int(value)
                for labelvalues, value in self._obs_requests.items()
            },
            "errors": int(self._obs_errors.value()),
            "launches": launches,
            "lanes": lanes,
            "batch_occupancy": lanes / launches if launches else 0.0,
            "rejected": sum(s["rejected"] for s in shards.values()),
            "degraded": int(self._obs_degraded.value()),
            "retried": int(self._obs_retried.value()),
        }
        server.update(latency_percentiles(self._obs_request_seconds.samples()))
        return {
            "server": server,
            "shards": shards,
            "measure_cache": self._measure_cache.stats().as_dict(),
            "service": self.service.stats(),
        }

    def metrics_text(self) -> str:
        """The full Prometheus exposition: gateway + service + process-wide."""
        self._obs_uptime.set(time.time() - self._started)
        registries = [self.registry]
        if self.service.registry is not self.registry:
            registries.append(self.service.registry)
        registries.append(DEFAULT_REGISTRY)
        return render_registries(registries)

    # -- HTTP plumbing ---------------------------------------------------------
    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | _TextResponse]:
        headers = headers or {}
        path, _, query = target.partition("?")
        endpoint = f"{method} {path}"
        self._obs_requests.labels(endpoint).inc()
        try:
            if method == "GET" and path == "/healthz":
                return 200, {"status": "ok"}
            if method == "GET" and path == "/stats":
                return 200, self.stats()
            if method == "GET" and path == "/metrics":
                return 200, _TextResponse(self.metrics_text(), _PROMETHEUS_CONTENT_TYPE)
            if method == "GET" and path == "/traces":
                trace_id = _query_param(query, "id")
                return 200, _TextResponse(
                    self.tracer.export_jsonl(trace_id), "application/x-ndjson"
                )
            if method == "POST" and path in ("/measure", "/embed", "/churn"):
                try:
                    attempt = int(headers.get("x-retry-attempt", "0") or "0")
                except ValueError:
                    attempt = 0
                if attempt > 0:
                    self._obs_retried.inc()
                decision = None if self._chaos is None else self._chaos.decide(endpoint)
                if decision is not None:
                    if decision.kind == "drop":
                        raise _ChaosDropConnection()
                    if decision.kind == "error":
                        return 503, {"error": "chaos: injected error", "retry": True}
                    if decision.kind == "delay":
                        await asyncio.sleep(decision.delay_s)
                try:
                    payload = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    return 400, {"error": f"invalid JSON body: {exc}"}
                if not isinstance(payload, dict):
                    return 400, {"error": "JSON body must be an object"}
                saturate = decision is not None and decision.kind == "saturate"
                if path == "/measure":
                    try:
                        trace = self.tracer.trace(headers.get("x-trace-id"))
                    except InvalidParameterError as exc:
                        return 400, {"error": f"InvalidParameterError: {exc}"}
                    return 200, await self._measure(payload, trace, saturate=saturate)
                if saturate:
                    # /embed and /churn have no bound-only fallback: injected
                    # saturation sheds them as retryable 503s
                    return 503, {"error": "chaos: injected queue saturation",
                                 "retry": True}
                if path == "/churn":
                    return 200, await self._churn(payload)
                return 200, await self._embed(payload)
            return 404, {"error": f"no route {method} {path}"}
        except QueueFullError as exc:
            return 503, {"error": str(exc), "retry": True}
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc), "retry": True}
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # client went away between requests
                except asyncio.LimitOverrunError:
                    await self._respond(writer, 431, {"error": "headers too large"}, True)
                    return
                started = time.perf_counter()
                request_line, _, header_blob = head.partition(b"\r\n")
                try:
                    method, target, version = request_line.decode("latin-1").split(" ", 2)
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad request line"}, True)
                    return
                headers = {}
                for line in header_blob.decode("latin-1").split("\r\n"):
                    name, sep, value = line.partition(":")
                    if sep:
                        headers[name.strip().lower()] = value.strip()
                if "transfer-encoding" in headers:
                    # only Content-Length framing is implemented; ignoring a
                    # chunked body would desync the keep-alive stream, so
                    # refuse loudly and drop the connection
                    await self._respond(
                        writer, 501, {"error": "Transfer-Encoding not supported"}, True
                    )
                    return
                try:
                    length = int(headers.get("content-length", 0))
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad Content-Length"}, True)
                    return
                if length > self.config.max_body_bytes:
                    await self._respond(writer, 413, {"error": "body too large"}, True)
                    return
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload = await self._route(
                        method.upper(), target, body, headers
                    )
                except _ChaosDropConnection:
                    return  # injected connection reset: close without replying
                if status >= 400:
                    self._obs_errors.inc()
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.strip().upper() == "HTTP/1.0"
                )
                self._obs_request_seconds.observe(time.perf_counter() - started)
                await self._respond(writer, status, payload, close)
                if close:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # mid-request disconnects are the client's prerogative
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    _REASONS = {
        200: "OK", 400: "Bad Request", 404: "Not Found", 413: "Payload Too Large",
        431: "Request Header Fields Too Large", 501: "Not Implemented",
        503: "Service Unavailable", 504: "Gateway Timeout",
    }

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | _TextResponse,
        close: bool,
    ) -> None:
        if isinstance(payload, _TextResponse):
            data = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {self._REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle,
            self.config.host,
            self.config.port,
            limit=_MAX_HEADER_BYTES,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is None:
            raise ServerStateError("gateway not started: call start() before address")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServerStateError("gateway not started: call start() before serve_forever()")
        await self._server.serve_forever()

    async def drain(self, timeout_s: float | None = None) -> None:
        """Graceful drain: stop accepting, then flush everything accepted.

        Closes the listener (new connections are refused), then waits — up
        to ``timeout_s`` (default :attr:`GatewayConfig.drain_timeout_s`) —
        until every shard batcher reports no queued or in-flight request.
        In-flight HTTP exchanges on already-open connections complete
        normally; nothing dies mid-batch.
        """
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while any(b.pending() for b in self._batchers.values()):
            if loop.time() >= deadline:
                break
            await asyncio.sleep(0.02)

    async def close(self) -> None:
        """Stop accepting, cancel shard flushers, release worker threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in self._batchers.values():
            await batcher.close()


def run(config: GatewayConfig | None = None) -> int:
    """Blocking entry point for ``python -m repro serve``.

    SIGTERM/SIGINT trigger a graceful drain: the listener closes, in-flight
    batches flush (:meth:`BatchingGateway.drain`), a final ``/stats``
    snapshot lands on stderr as one JSON line, and the process exits 0.
    """

    async def _serve() -> None:
        gateway = BatchingGateway(config)
        await gateway.start()
        host, port = gateway.address
        extras = ""
        if gateway.config.degraded:
            extras += ", degraded-mode"
        if gateway._chaos is not None:
            extras += ", chaos-injection"
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal handlers (e.g. Windows)
        # the banner doubles as the readiness signal: by the time it prints,
        # the listener is bound AND a SIGTERM already drains gracefully
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"(max_batch={gateway.config.max_batch}, "
            f"max_wait={gateway.config.max_wait_ms}ms, "
            f"queue_limit={gateway.config.queue_limit}{extras})",
            flush=True,
        )
        serve_task = asyncio.ensure_future(gateway.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            done, _ = await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop_task in done:
                await gateway.drain()
                # the final observability snapshot of the drained process
                print(json.dumps(gateway.stats()), file=sys.stderr, flush=True)
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await gateway.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0
