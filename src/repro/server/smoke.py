"""CI smoke driver: ``python -m repro.server.smoke --url http://HOST:PORT``.

Fires ``--requests`` (default 200) concurrent ``/measure`` queries across
two topologies (De Bruijn and hypercube) at a running gateway and asserts
the serving contract end to end:

* **determinism** — every served answer is field-identical (modulo the
  ``cached``/``elapsed_s`` bookkeeping) to the scalar
  :meth:`~repro.engine.service.EmbeddingService.measure` answer computed
  locally in this process, and a second identical round returns the same
  payloads;
* **micro-batching engaged** — ``/stats`` reports overall batch occupancy
  > 1 (concurrent requests actually shared kernel launches).

Exits 0 on success, 1 with a diagnostic on any violation — the CI job fails
on regressions in either batching or correctness.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import urllib.parse
from collections.abc import Sequence

import numpy as np

from ..engine.service import EmbeddingService
from .client import AsyncServeClient, fire_measure

#: The two smoke workloads: one necklace-unit backend, one single-node-unit.
WORKLOADS = (
    {"topology": "debruijn", "d": 2, "n": 10},
    {"topology": "hypercube", "d": 2, "n": 10},
)

_TRANSIENT_FIELDS = ("cached", "elapsed_s", "trace_id")


def _comparable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k not in _TRANSIENT_FIELDS}


def _make_requests(total: int, seed: int) -> list[dict]:
    """``total`` measure payloads, alternating topologies, seeded faults."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(total):
        spec = WORKLOADS[i % len(WORKLOADS)]
        f = int(rng.integers(0, 6))
        faults = [
            [int(x) for x in rng.integers(0, spec["d"], size=spec["n"])]
            for _ in range(f)
        ]
        requests.append({**spec, "faults": faults, "root": None})
    return requests


async def _run(host: str, port: int, total: int, concurrency: int, seed: int) -> int:
    payloads = _make_requests(total, seed)

    # expected answers from the scalar in-process path — the ground truth
    # the micro-batched server must reproduce byte for byte
    service = EmbeddingService(max_cached_answers=4 * total)
    expected = [
        _comparable(
            service.measure(
                p["d"], p["n"], faults=p["faults"], topology=p["topology"]
            ).as_dict()
        )
        for p in payloads
    ]

    first, _ = await fire_measure(host, port, payloads, concurrency)
    for i, (got, want) in enumerate(zip(first, expected)):
        if _comparable(got) != want:
            print(f"FAIL: request {i} diverged from the scalar path\n"
                  f"  sent: {payloads[i]}\n  got:  {_comparable(got)}\n"
                  f"  want: {want}", file=sys.stderr)
            return 1

    second, _ = await fire_measure(host, port, payloads, concurrency)
    for i, (a, b) in enumerate(zip(first, second)):
        if _comparable(a) != _comparable(b):
            print(f"FAIL: request {i} non-deterministic across rounds", file=sys.stderr)
            return 1

    client = await AsyncServeClient.open(host, port)
    try:
        status, stats = await client.request("GET", "/stats")
    finally:
        await client.close()
    if status != 200:
        print(f"FAIL: /stats returned HTTP {status}", file=sys.stderr)
        return 1
    occupancy = stats["server"]["batch_occupancy"]
    if not occupancy > 1.0:
        print(f"FAIL: batch occupancy {occupancy:.2f} <= 1 — "
              "micro-batching never engaged", file=sys.stderr)
        return 1

    print(f"smoke OK: {2 * total} requests over {len(WORKLOADS)} topologies, "
          f"all answers deterministic and scalar-identical, "
          f"batch occupancy {occupancy:.1f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8787",
                        help="gateway base URL (default http://127.0.0.1:8787)")
    parser.add_argument("--requests", type=int, default=200,
                        help="concurrent measure requests per round (default 200)")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="persistent client connections (default 32)")
    parser.add_argument("--seed", type=int, default=0, help="fault-sampling seed")
    args = parser.parse_args(argv)
    parsed = urllib.parse.urlsplit(args.url)
    host, port = parsed.hostname or "127.0.0.1", parsed.port or 8787
    return asyncio.run(_run(host, port, args.requests, args.concurrency, args.seed))


if __name__ == "__main__":
    sys.exit(main())
