"""Stdlib-only clients for the serving gateway.

:class:`ServeClient` is the scripting-friendly blocking client (urllib, one
request per call).  :class:`AsyncServeClient` holds ONE persistent HTTP/1.1
connection and issues sequential requests over it — the load-generation
building block: the serve benchmark and the CI smoke driver open many of
them and fire concurrently, which is exactly the traffic shape the
micro-batcher coalesces.

Both clients retry transient failures — HTTP 503 (backpressure, injected
chaos errors) and connection resets/drops — with exponential backoff plus
*seeded* jitter (``random.Random(seed)``: retry schedules replay exactly,
like every other random stream in this repo).  Retried requests carry an
``X-Retry-Attempt`` header so the gateway's
``repro_gateway_retried_requests_total`` counter observes them.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Iterable, Sequence

__all__ = ["ServeClient", "AsyncServeClient", "fire_measure"]

#: HTTP statuses worth retrying: pure load-shedding responses.
_RETRYABLE_STATUSES = (503,)


def _backoff_s(base_s: float, attempt: int, rng: random.Random) -> float:
    """Exponential backoff with multiplicative jitter for retry ``attempt``."""
    return base_s * (2 ** attempt) * (1.0 + rng.random())


class ServeClient:
    """Blocking JSON client: ``ServeClient("http://127.0.0.1:8787")``.

    ``retries`` transient-failure retries per request (0 = fail fast) with
    exponential backoff starting at ``backoff_base_s``, jittered by the
    ``seed``-ed stream.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base_s = float(backoff_base_s)
        self._rng = random.Random(seed)
        #: total retry attempts made by this client (scenario reports read it)
        self.retries_total = 0

    def _request_once(
        self, method: str, path: str, payload: dict | None, attempt: int
    ) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if attempt > 0:
            headers["X-Retry-Attempt"] = str(attempt)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload, attempt)
            except urllib.error.HTTPError as exc:
                if exc.code not in _RETRYABLE_STATUSES or attempt >= self.retries:
                    raise
            except (
                urllib.error.URLError,
                ConnectionError,
                http.client.HTTPException,
            ):
                # connection reset / dropped mid-exchange (chaos "drop")
                if attempt >= self.retries:
                    raise
            self.retries_total += 1
            time.sleep(_backoff_s(self.backoff_base_s, attempt, self._rng))
            attempt += 1

    def measure(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root: Sequence[int] | None = None,
        topology: str = "debruijn",
    ) -> dict:
        return self._request("POST", "/measure", {
            "topology": topology, "d": d, "n": n,
            "faults": [list(w) for w in faults],
            "root": None if root is None else list(root),
        })

    def embed(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root_hint: Sequence[int] | None = None,
        include_cycle: bool = True,
    ) -> dict:
        return self._request("POST", "/embed", {
            "d": d, "n": n, "faults": [list(w) for w in faults],
            "root_hint": None if root_hint is None else list(root_hint),
            "include_cycle": include_cycle,
        })

    def churn(
        self,
        d: int,
        n: int,
        op: str,
        node: Sequence[int] | None = None,
        seq: int | None = None,
        root_hint: Sequence[int] | None = None,
        include_cycle: bool = True,
    ) -> dict:
        """Apply one churn event (``op`` in fault/heal/reset) via POST /churn.

        Safe under this client's retries: the gateway replays the stored
        answer when the same ``seq`` is redelivered.
        """
        return self._request("POST", "/churn", {
            "d": d, "n": n, "op": op,
            "node": None if node is None else list(node),
            "seq": seq,
            "root_hint": None if root_hint is None else list(root_hint),
            "include_cycle": include_cycle,
        })

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def _request_text(self, path: str) -> str:
        request = urllib.request.Request(self.base_url + path, method="GET")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /metrics``."""
        return self._request_text("/metrics")

    def traces(self, trace_id: str | None = None) -> str:
        """The JSONL trace export of ``GET /traces`` (optionally one id)."""
        path = "/traces" if trace_id is None else f"/traces?id={trace_id}"
        return self._request_text(path)


class AsyncServeClient:
    """One persistent keep-alive connection; sequential JSON requests.

    Use ``await AsyncServeClient.open(host, port)`` and ``await close()``.
    Not task-safe: one in-flight request per client (open many clients for
    concurrency — each models one caller of the service).
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                 host: str, port: int, retries: int = 0,
                 backoff_base_s: float = 0.05, seed: int = 0) -> None:
        self._reader = reader
        self._writer = writer
        self._host, self._port = host, port
        self.retries = int(retries)
        self.backoff_base_s = float(backoff_base_s)
        self._rng = random.Random(seed)
        #: total retry attempts made by this client
        self.retries_total = 0

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        seed: int = 0,
    ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host, port, retries=retries,
                   backoff_base_s=backoff_base_s, seed=seed)

    async def _reconnect(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        """Issue one request; returns ``(status, decoded_json)``.

        Retries transient failures (HTTP 503, connection reset/drop — the
        connection is reopened) up to ``self.retries`` times with seeded
        exponential backoff, tagging retried deliveries with
        ``X-Retry-Attempt``.
        """
        attempt = 0
        while True:
            sent = dict(headers or {})
            if attempt > 0:
                sent["X-Retry-Attempt"] = str(attempt)
            try:
                status, _, text = await self.request_raw(method, path, payload, sent)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                IndexError,  # empty status line: server closed mid-exchange
            ):
                if attempt >= self.retries:
                    raise
                await self._reconnect()
            else:
                if status not in _RETRYABLE_STATUSES or attempt >= self.retries:
                    return status, json.loads(text)
            self.retries_total += 1
            await asyncio.sleep(_backoff_s(self.backoff_base_s, attempt, self._rng))
            attempt += 1

    async def request_raw(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, str, str]:
        """Issue one request; returns ``(status, content_type, body_text)``.

        The undecoded variant for the non-JSON routes (``/metrics``
        exposition text, ``/traces`` JSONL); ``headers`` adds extra request
        headers such as ``X-Trace-Id``.
        """
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        length = 0
        content_type = ""
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            elif name.strip().lower() == "content-type":
                content_type = value.strip()
        data = await self._reader.readexactly(length)
        return status, content_type, data.decode("utf-8")

    async def measure(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root: Sequence[int] | None = None,
        topology: str = "debruijn",
    ) -> tuple[int, dict]:
        return await self.request("POST", "/measure", {
            "topology": topology, "d": d, "n": n,
            "faults": [list(w) for w in faults],
            "root": None if root is None else list(root),
        })

    async def stats(self) -> tuple[int, dict]:
        return await self.request("GET", "/stats")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def fire_measure(
    host: str, port: int, payloads: list[dict], concurrency: int
) -> tuple[list[dict], list[float]]:
    """Issue every payload as ``POST /measure`` over ``concurrency`` connections.

    The shared load generator of the serve benchmark and the CI smoke
    driver: each worker holds one persistent connection and pulls payloads
    from a shared queue — ``concurrency`` requests in flight at any moment,
    the traffic shape the micro-batcher coalesces.  Returns the answers (in
    payload order) and the per-request client-side latencies; any non-200
    raises ``AssertionError``.
    """
    queue: asyncio.Queue = asyncio.Queue()
    for item in enumerate(payloads):
        queue.put_nowait(item)
    answers: list[dict | None] = [None] * len(payloads)
    latencies: list[float] = []

    async def worker() -> None:
        client = await AsyncServeClient.open(host, port)
        try:
            while True:
                try:
                    i, payload = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                start = time.perf_counter()
                status, answer = await client.request("POST", "/measure", payload)
                latencies.append(time.perf_counter() - start)
                if status != 200:
                    raise AssertionError(
                        f"request {i} failed: HTTP {status} {answer}"
                    )
                answers[i] = answer
        finally:
            await client.close()

    await asyncio.gather(*[worker() for _ in range(max(1, concurrency))])
    return answers, latencies
