"""Stdlib-only clients for the serving gateway.

:class:`ServeClient` is the scripting-friendly blocking client (urllib, one
request per call).  :class:`AsyncServeClient` holds ONE persistent HTTP/1.1
connection and issues sequential requests over it — the load-generation
building block: the serve benchmark and the CI smoke driver open many of
them and fire concurrently, which is exactly the traffic shape the
micro-batcher coalesces.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.request
from collections.abc import Iterable, Sequence

__all__ = ["ServeClient", "AsyncServeClient", "fire_measure"]


class ServeClient:
    """Blocking JSON client: ``ServeClient("http://127.0.0.1:8787")``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def measure(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root: Sequence[int] | None = None,
        topology: str = "debruijn",
    ) -> dict:
        return self._request("POST", "/measure", {
            "topology": topology, "d": d, "n": n,
            "faults": [list(w) for w in faults],
            "root": None if root is None else list(root),
        })

    def embed(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root_hint: Sequence[int] | None = None,
        include_cycle: bool = True,
    ) -> dict:
        return self._request("POST", "/embed", {
            "d": d, "n": n, "faults": [list(w) for w in faults],
            "root_hint": None if root_hint is None else list(root_hint),
            "include_cycle": include_cycle,
        })

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def _request_text(self, path: str) -> str:
        request = urllib.request.Request(self.base_url + path, method="GET")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /metrics``."""
        return self._request_text("/metrics")

    def traces(self, trace_id: str | None = None) -> str:
        """The JSONL trace export of ``GET /traces`` (optionally one id)."""
        path = "/traces" if trace_id is None else f"/traces?id={trace_id}"
        return self._request_text(path)


class AsyncServeClient:
    """One persistent keep-alive connection; sequential JSON requests.

    Use ``await AsyncServeClient.open(host, port)`` and ``await close()``.
    Not task-safe: one in-flight request per client (open many clients for
    concurrency — each models one caller of the service).
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                 host: str, port: int) -> None:
        self._reader = reader
        self._writer = writer
        self._host, self._port = host, port

    @classmethod
    async def open(cls, host: str, port: int) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host, port)

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        """Issue one request; returns ``(status, decoded_json)``."""
        status, _, text = await self.request_raw(method, path, payload, headers)
        return status, json.loads(text)

    async def request_raw(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, str, str]:
        """Issue one request; returns ``(status, content_type, body_text)``.

        The undecoded variant for the non-JSON routes (``/metrics``
        exposition text, ``/traces`` JSONL); ``headers`` adds extra request
        headers such as ``X-Trace-Id``.
        """
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        length = 0
        content_type = ""
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            elif name.strip().lower() == "content-type":
                content_type = value.strip()
        data = await self._reader.readexactly(length)
        return status, content_type, data.decode("utf-8")

    async def measure(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root: Sequence[int] | None = None,
        topology: str = "debruijn",
    ) -> tuple[int, dict]:
        return await self.request("POST", "/measure", {
            "topology": topology, "d": d, "n": n,
            "faults": [list(w) for w in faults],
            "root": None if root is None else list(root),
        })

    async def stats(self) -> tuple[int, dict]:
        return await self.request("GET", "/stats")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def fire_measure(
    host: str, port: int, payloads: list[dict], concurrency: int
) -> tuple[list[dict], list[float]]:
    """Issue every payload as ``POST /measure`` over ``concurrency`` connections.

    The shared load generator of the serve benchmark and the CI smoke
    driver: each worker holds one persistent connection and pulls payloads
    from a shared queue — ``concurrency`` requests in flight at any moment,
    the traffic shape the micro-batcher coalesces.  Returns the answers (in
    payload order) and the per-request client-side latencies; any non-200
    raises ``AssertionError``.
    """
    queue: asyncio.Queue = asyncio.Queue()
    for item in enumerate(payloads):
        queue.put_nowait(item)
    answers: list[dict | None] = [None] * len(payloads)
    latencies: list[float] = []

    async def worker() -> None:
        client = await AsyncServeClient.open(host, port)
        try:
            while True:
                try:
                    i, payload = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                start = time.perf_counter()
                status, answer = await client.request("POST", "/measure", payload)
                latencies.append(time.perf_counter() - start)
                if status != 200:
                    raise AssertionError(
                        f"request {i} failed: HTTP {status} {answer}"
                    )
                answers[i] = answer
        finally:
            await client.close()

    await asyncio.gather(*[worker() for _ in range(max(1, concurrency))])
    return answers, latencies
