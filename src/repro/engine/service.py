"""The long-lived embedding query service.

The FFC algorithm is, operationally, a *reconfiguration service*: a faulty
``B(d, n)`` network asks "what fault-free ring do I run on now?" and wants
the answer fast, repeatedly, for fault sets that often differ only
cosmetically.  :class:`EmbeddingService` packages the Chapter 2 machinery
behind exactly that API:

* **Canonical normalisation** — the FFC result depends only on *which
  necklaces* are faulty, so every request's fault set is reduced to sorted
  canonical necklace representatives before the cache lookup.  Requests
  whose faults are rotations of each other hit the same entry.
* **Bounded caches** — recent ``(d, n, necklaces, root_hint) -> cycle``
  answers and the per-graph codec tables are held in LRU caches of fixed
  size (see :mod:`repro.engine.cache`), so a resident process serves hot
  traffic from memory without unbounded growth.
* **Counters** — hit/miss rates and latency totals are exposed via
  :meth:`EmbeddingService.stats`, alongside the process-wide cache audit of
  :mod:`repro.engine.caches`.

The guarantee fields are computed per request from the *requested* fault
count (Propositions 2.2/2.3 count faulty processors, not necklaces), so two
requests sharing one cached cycle can still report different bounds.

Next to the ring queries sits the **topology-generic measurement API**:
:meth:`EmbeddingService.measure` answers "how large is the fault-free
region around the root, and how many broadcast steps does it take?" for
*any* backend of the :mod:`repro.topology` registry — De Bruijn, Kautz,
hypercube, shuffle-exchange — normalising the fault set to canonical
fault-unit representatives (necklaces where the backend has them) before
the cache lookup, exactly as the ring cache does.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.ffc import find_fault_free_cycle, guaranteed_cycle_length
from ..exceptions import FaultBudgetExceededError, InvalidParameterError
from ..obs import MetricsRegistry
from ..topology import DEFAULT_TOPOLOGY, get_topology
from ..words.alphabet import Word, validate_word
from ..words.codec import WordCodec, get_codec
from .cache import LRUCache

__all__ = [
    "EmbeddingRequest",
    "EmbeddingResponse",
    "MeasureResponse",
    "EmbeddingService",
]


@dataclass
class _ChurnSession:
    """Mutable per-(d, n, root_hint) state of one dynamic-fault stream.

    ``rep_key`` is the sorted canonical necklace representative set of the
    current faults — the only input the FFC cycle depends on (besides the
    root hint), which is exactly what makes the incremental decision sound:
    an event that leaves ``rep_key`` unchanged provably leaves the cycle
    unchanged, so the previous one is reused bit-for-bit.
    """

    faults: set[Word] = field(default_factory=set)
    rep_key: tuple[int, ...] = ()
    cycle: tuple[Word, ...] = ()
    last_seq: int | None = None
    last_event: "tuple[str, Word] | None" = None
    last_response: "EmbeddingResponse | None" = None
    started: bool = False


@dataclass(frozen=True)
class EmbeddingRequest:
    """One embedding query: which graph, which faulty processors, which root."""

    d: int
    n: int
    faults: tuple[Word, ...] = ()
    root_hint: Word | None = None

    @classmethod
    def make(
        cls,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root_hint: Sequence[int] | None = None,
    ) -> "EmbeddingRequest":
        return cls(
            d=int(d),
            n=int(n),
            faults=tuple(tuple(int(x) for x in w) for w in faults),
            root_hint=None if root_hint is None else tuple(int(x) for x in root_hint),
        )


@dataclass(frozen=True)
class EmbeddingResponse:
    """Everything a reconfiguring network needs from one query.

    Attributes
    ----------
    faulty_necklaces:
        The canonical representatives of the necklaces the faults kill —
        the normalised form actually used as the cache key.
    guarantee_bound:
        The applicable worst-case cycle-length bound (Proposition 2.2/2.3),
        or ``None`` when the fault count is outside every guaranteed regime.
    meets_guarantee:
        ``length >= guarantee_bound`` (vacuously True with no bound: the
        cycle always spans all of ``B*``).
    cached:
        True when the cycle came from the answer cache.
    elapsed_s:
        Wall-clock service time of this request (cache hits included).
    """

    d: int
    n: int
    faults: tuple[Word, ...]
    faulty_necklaces: tuple[Word, ...]
    cycle: tuple[Word, ...]
    length: int
    guarantee_bound: int | None
    meets_guarantee: bool
    cached: bool
    elapsed_s: float

    def as_dict(self, include_cycle: bool = True) -> dict:
        data = {
            "d": self.d,
            "n": self.n,
            "faults": [list(w) for w in self.faults],
            "faulty_necklaces": [list(w) for w in self.faulty_necklaces],
            "length": self.length,
            "guarantee_bound": self.guarantee_bound,
            "meets_guarantee": self.meets_guarantee,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }
        if include_cycle:
            data["cycle"] = [list(w) for w in self.cycle]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EmbeddingResponse":
        """Rebuild a response from :meth:`as_dict` output (e.g. CLI ``--json``).

        Lossless inverse of :meth:`as_dict`: every field round-trips, with
        and without the cycle payload — a dict written with
        ``include_cycle=False`` yields a response whose ``cycle`` is empty
        while ``length`` still reports the true ring length.
        """
        bound = data["guarantee_bound"]
        return cls(
            d=int(data["d"]),
            n=int(data["n"]),
            faults=tuple(tuple(int(x) for x in w) for w in data["faults"]),
            faulty_necklaces=tuple(
                tuple(int(x) for x in w) for w in data["faulty_necklaces"]
            ),
            cycle=tuple(tuple(int(x) for x in w) for w in data.get("cycle", ())),
            length=int(data["length"]),
            guarantee_bound=None if bound is None else int(bound),
            meets_guarantee=bool(data["meets_guarantee"]),
            cached=bool(data["cached"]),
            elapsed_s=float(data["elapsed_s"]),
        )


@dataclass(frozen=True)
class MeasureResponse:
    """One topology-generic measurement: the fault-free region around a root.

    ``region_size`` and ``root_eccentricity`` are exactly the two columns of
    the Tables 2.1/2.2 sweeps (component size and broadcast steps for the De
    Bruijn graph), measured once for an explicit fault set instead of over
    random trials.  ``fault_units`` holds the canonical representatives of
    the removed units — the normalised form used as the cache key.  ``root``
    is the node the measurement actually ran from: the requested (or
    default) root if it survived, otherwise the sweep protocol's
    neighbouring-root fallback; ``None`` when every node was removed.
    """

    topology: str
    d: int
    n: int
    faults: tuple[Word, ...]
    fault_units: tuple[Word, ...]
    root: Word | None
    region_size: int
    root_eccentricity: int
    reference_size: int
    guarantee_bound: int | None
    cached: bool
    elapsed_s: float

    def as_dict(self) -> dict:
        return {
            "topology": self.topology,
            "d": self.d,
            "n": self.n,
            "faults": [list(w) for w in self.faults],
            "fault_units": [list(w) for w in self.fault_units],
            "root": None if self.root is None else list(self.root),
            "region_size": self.region_size,
            "root_eccentricity": self.root_eccentricity,
            "reference_size": self.reference_size,
            "guarantee_bound": self.guarantee_bound,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MeasureResponse":
        """Lossless inverse of :meth:`as_dict`."""
        bound = data["guarantee_bound"]
        return cls(
            topology=str(data["topology"]),
            d=int(data["d"]),
            n=int(data["n"]),
            faults=tuple(tuple(int(x) for x in w) for w in data["faults"]),
            fault_units=tuple(tuple(int(x) for x in w) for w in data["fault_units"]),
            root=None if data["root"] is None else tuple(int(x) for x in data["root"]),
            region_size=int(data["region_size"]),
            root_eccentricity=int(data["root_eccentricity"]),
            reference_size=int(data["reference_size"]),
            guarantee_bound=None if bound is None else int(bound),
            cached=bool(data["cached"]),
            elapsed_s=float(data["elapsed_s"]),
        )


class EmbeddingService:
    """Resident query API over the FFC algorithm (see the module docstring).

    Parameters
    ----------
    max_cached_answers:
        Bound on the ``(d, n, necklaces, root_hint) -> cycle`` LRU.
    max_cached_codecs:
        Bound on the per-graph codec-table LRU.  (The codec module keeps its
        own small global cache; the service-level LRU pins the graphs *this
        service* actually serves and gives them observable hit counters.)
    registry:
        The :class:`~repro.obs.MetricsRegistry` this service reports to.  By
        default each service owns a private registry (exposed as
        :attr:`registry`) so concurrent instances never share counters; the
        server gateway passes its own so ``/metrics`` covers the service.
    """

    def __init__(
        self,
        max_cached_answers: int = 256,
        max_cached_codecs: int = 4,
        registry: MetricsRegistry | None = None,
        max_churn_sessions: int = 32,
    ) -> None:
        self._answers = LRUCache(max_cached_answers, name="engine.embedding_answers")
        self._measurements = LRUCache(
            max_cached_answers, name="engine.measurement_answers"
        )
        self._codecs = LRUCache(max_cached_codecs, name="engine.codec_tables")
        #: per-(d, n, root_hint) dynamic-fault streams (see apply_event);
        #: bounded so abandoned streams age out instead of accumulating
        self._churn_sessions = LRUCache(max_churn_sessions, name="engine.churn_sessions")
        self._churn_lock = threading.RLock()
        #: this service's metrics (request/compute latency histograms) — the
        #: single backing store for the scalar counters :meth:`stats` reports
        self.registry = registry if registry is not None else MetricsRegistry()
        request_seconds = self.registry.histogram(
            "repro_service_request_seconds",
            "End-to-end service time per query (cache hits included)",
            labelnames=("endpoint",),
        )
        compute_seconds = self.registry.histogram(
            "repro_service_compute_seconds",
            "Service time of cache-missing queries only",
            labelnames=("endpoint",),
        )
        self._obs_request_seconds = {
            endpoint: request_seconds.labels(endpoint)
            for endpoint in ("embed", "measure")
        }
        self._obs_compute_seconds = {
            endpoint: compute_seconds.labels(endpoint)
            for endpoint in ("embed", "measure")
        }
        churn_events = self.registry.counter(
            "repro_service_churn_events_total",
            "Churn events applied, by re-embedding decision",
            labelnames=("decision",),
        )
        self._obs_churn = {
            decision: churn_events.labels(decision)
            for decision in ("incremental", "full", "replayed")
        }

    # -- queries --------------------------------------------------------------
    def embed(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root_hint: Sequence[int] | None = None,
    ) -> EmbeddingResponse:
        """Answer one reconfiguration query."""
        return self.submit(EmbeddingRequest.make(d, n, faults, root_hint))

    def embed_batch(self, requests: Iterable[EmbeddingRequest]) -> list[EmbeddingResponse]:
        """Answer a batch of queries (shared caches make repeats nearly free)."""
        return [self.submit(request) for request in requests]

    def submit(self, request: EmbeddingRequest) -> EmbeddingResponse:
        """Answer one pre-built :class:`EmbeddingRequest`."""
        start = time.perf_counter()
        codec = self._codec(request.d, request.n)
        fault_words = self._validated_faults(codec, request.faults)
        rep_codes = sorted({int(codec.rep[codec.encode(w)]) for w in fault_words})
        key = (codec.d, codec.n, tuple(rep_codes), request.root_hint)

        cycle = self._answers.get(key)
        cached = cycle is not None
        if not cached:
            result = find_fault_free_cycle(
                codec.d, codec.n, fault_words, root_hint=request.root_hint
            )
            cycle = result.cycle
            self._answers.put(key, cycle)

        bound = self._guarantee_bound(codec.d, codec.n, len(set(fault_words)))
        elapsed = time.perf_counter() - start
        self._observe("embed", elapsed, cached)
        return EmbeddingResponse(
            d=codec.d,
            n=codec.n,
            faults=tuple(fault_words),
            faulty_necklaces=tuple(codec.decode(code) for code in rep_codes),
            cycle=cycle,
            length=len(cycle),
            guarantee_bound=bound,
            meets_guarantee=True if bound is None else len(cycle) >= bound,
            cached=cached,
            elapsed_s=elapsed,
        )

    # -- dynamic faults (churn) ------------------------------------------------
    def apply_event(
        self,
        d: int,
        n: int,
        op: str,
        node: Sequence[int],
        root_hint: Sequence[int] | None = None,
        seq: int | None = None,
    ) -> EmbeddingResponse:
        """Apply one churn event and return the (possibly repaired) ring.

        The service keeps one session per ``(d, n, root_hint)`` holding the
        current fault set and the previous fault-free cycle.  The FFC cycle
        depends only on the *canonical necklace representative set* of the
        faults (plus the root hint), so an event that leaves that set
        unchanged — faulting another node of an already-faulty necklace, or
        healing a node whose necklace stays faulty through a sibling — is
        answered **incrementally** by reusing the previous cycle, which is
        bit-for-bit what a full recomputation would return.  Any event that
        changes the representative set takes the **full** path through
        :meth:`submit` (the batch recomputation, LRU-backed).  The
        incremental-vs-full decision counters are exported on
        :meth:`stats` under ``churn`` and on ``/metrics`` as
        ``repro_service_churn_events_total``.

        ``seq`` makes event delivery idempotent over lossy transports:
        events must arrive with consecutive sequence numbers (starting at 0
        for a fresh session); redelivering the *last applied* ``seq``
        returns the stored response without re-applying the event, so a
        client may safely retry after a dropped response.  Out-of-order or
        gapped sequence numbers are rejected.
        """
        start = time.perf_counter()
        if op not in ("fault", "heal"):
            raise InvalidParameterError(
                f"churn op must be 'fault' or 'heal', got {op!r}"
            )
        codec = self._codec(d, n)
        (word,) = self._validated_faults(codec, [node])
        hint = None if root_hint is None else tuple(int(x) for x in root_hint)
        key = (codec.d, codec.n, hint)
        with self._churn_lock:
            session = self._churn_sessions.get_or_create(key, _ChurnSession)
            if seq is not None:
                if session.last_seq is not None and seq == session.last_seq:
                    if session.last_response is None:  # pragma: no cover
                        raise InvalidParameterError(
                            f"churn seq {seq} already applied but no stored response"
                        )
                    if session.last_event != (op, word):
                        raise InvalidParameterError(
                            f"churn seq {seq} was already applied with a "
                            f"different event than {(op, word)!r}; replays "
                            "must redeliver the same event"
                        )
                    self._obs_churn["replayed"].inc()
                    return session.last_response
                expected = 0 if session.last_seq is None else session.last_seq + 1
                if seq != expected:
                    raise InvalidParameterError(
                        f"churn event out of order for B({d},{n}) session: "
                        f"got seq {seq}, expected {expected} (replays of seq "
                        f"{session.last_seq} are the only redelivery allowed)"
                    )
            if op == "fault":
                if word in session.faults:
                    raise InvalidParameterError(
                        f"churn fault on {word}: node is already faulty"
                    )
                session.faults.add(word)
            else:
                if word not in session.faults:
                    raise InvalidParameterError(
                        f"churn heal on {word}: node is not faulty"
                    )
                session.faults.discard(word)
            fault_words = sorted(session.faults)
            rep_key = tuple(
                sorted({int(codec.rep[codec.encode(w)]) for w in fault_words})
            )
            if session.started and rep_key == session.rep_key:
                # the representative set is untouched: the previous cycle IS
                # the full recomputation's answer (same cache key), reuse it
                cycle = session.cycle
                bound = self._guarantee_bound(codec.d, codec.n, len(fault_words))
                elapsed = time.perf_counter() - start
                self._observe("embed", elapsed, cached=True)
                response = EmbeddingResponse(
                    d=codec.d,
                    n=codec.n,
                    faults=tuple(fault_words),
                    faulty_necklaces=tuple(codec.decode(c) for c in rep_key),
                    cycle=cycle,
                    length=len(cycle),
                    guarantee_bound=bound,
                    meets_guarantee=True if bound is None else len(cycle) >= bound,
                    cached=True,
                    elapsed_s=elapsed,
                )
                self._obs_churn["incremental"].inc()
            else:
                response = self.submit(
                    EmbeddingRequest(
                        d=codec.d,
                        n=codec.n,
                        faults=tuple(fault_words),
                        root_hint=hint,
                    )
                )
                self._obs_churn["full"].inc()
            session.rep_key = rep_key
            session.cycle = response.cycle
            session.started = True
            if seq is not None:
                session.last_seq = seq
                session.last_event = (op, word)
                session.last_response = response
            return response

    def reset_churn(
        self, d: int, n: int, root_hint: Sequence[int] | None = None
    ) -> None:
        """Drop the churn session of ``(d, n, root_hint)``: next event starts
        from an empty fault set at seq 0."""
        hint = None if root_hint is None else tuple(int(x) for x in root_hint)
        codec = self._codec(d, n)
        with self._churn_lock:
            self._churn_sessions.put((codec.d, codec.n, hint), _ChurnSession())

    def measure(
        self,
        d: int,
        n: int,
        faults: Iterable[Sequence[int]] = (),
        root: Sequence[int] | None = None,
        topology: str = DEFAULT_TOPOLOGY,
    ) -> MeasureResponse:
        """Measure the fault-free region around the root on any topology.

        The fault set is normalised to canonical fault-unit representatives
        (necklace representatives for the De Bruijn family, the nodes
        themselves for single-node-unit backends) before the cache lookup,
        so requests whose faults kill the same units hit the same entry.
        The measurement itself is one dispatch through the process-wide
        shared :class:`~repro.engine.executor.KernelExecutor` and follows
        the sweep protocol exactly, including the neighbouring-root fallback
        when the requested root lies in a faulty unit — the response's
        ``root`` reports the node actually measured from.
        """
        from .executor import cached_executor

        start = time.perf_counter()
        topo = get_topology(topology, d, n)
        fault_codes = [topo.encode(w) for w in faults]
        rep_codes = topo.fault_unit_reps(fault_codes)
        root_key = None if root is None else tuple(int(x) for x in root)
        executor = cached_executor(topo.d, topo.n, root_key, topo.key)
        key = (topo.key, topo.d, topo.n, tuple(rep_codes), executor.root_code)

        measured = self._measurements.get(key)
        cached = measured is not None
        if not cached:
            removed = topo.fault_unit_mask(np.asarray(fault_codes, dtype=np.int64))
            measured = executor.measure_mask_with_root(removed)
            self._measurements.put(key, measured)

        size, ecc, measured_root = measured
        elapsed = time.perf_counter() - start
        self._observe("measure", elapsed, cached)
        return MeasureResponse(
            topology=topo.key,
            d=topo.d,
            n=topo.n,
            faults=tuple(topo.decode(c) for c in fault_codes),
            fault_units=tuple(topo.decode(c) for c in rep_codes),
            root=None if measured_root is None else topo.decode(measured_root),
            region_size=int(size),
            root_eccentricity=int(ecc),
            reference_size=topo.reference_size(len(set(fault_codes))),
            guarantee_bound=topo.guarantee_bound(len(set(fault_codes))),
            cached=cached,
            elapsed_s=elapsed,
        )

    # -- observability ---------------------------------------------------------
    def _observe(self, endpoint: str, elapsed: float, cached: bool) -> None:
        """Record one answered query into this service's registry."""
        self._obs_request_seconds[endpoint].observe(elapsed)
        if not cached:
            self._obs_compute_seconds[endpoint].observe(elapsed)

    def stats(self) -> dict:
        """Service counters plus the bounded-cache audit of this process.

        The scalar counters are *views* over the service's metrics registry
        (the request/compute latency histograms); the key set is the stable
        ``/stats`` schema and must not change.
        """
        from .caches import cache_stats  # local import: caches pulls many modules

        requests = sum(
            child.count for child in self._obs_request_seconds.values()
        )
        total_latency = sum(
            child.sum for child in self._obs_request_seconds.values()
        )
        compute_latency = sum(
            child.sum for child in self._obs_compute_seconds.values()
        )
        return {
            "requests": requests,
            "total_latency_s": total_latency,
            "compute_latency_s": compute_latency,
            "avg_latency_s": total_latency / requests if requests else 0.0,
            "answers": self._answers.stats().as_dict(),
            "measurements": self._measurements.stats().as_dict(),
            "codecs": self._codecs.stats().as_dict(),
            "churn": {
                "incremental": int(self._obs_churn["incremental"].value()),
                "full": int(self._obs_churn["full"].value()),
                "replayed": int(self._obs_churn["replayed"].value()),
                "sessions": len(self._churn_sessions),
            },
            "process_caches": cache_stats(),
        }

    def clear(self, include_process_caches: bool = False) -> None:
        """Evict the service caches (optionally every audited process cache too)."""
        self._answers.clear()
        self._measurements.clear()
        self._codecs.clear()
        with self._churn_lock:
            self._churn_sessions.clear()
        if include_process_caches:
            from .caches import clear_caches

            clear_caches()

    # -- internals -------------------------------------------------------------
    def _codec(self, d: int, n: int) -> WordCodec:
        return self._codecs.get_or_create((int(d), int(n)), lambda: get_codec(d, n))

    def _validated_faults(
        self, codec: WordCodec, faults: Iterable[Sequence[int]]
    ) -> list[Word]:
        words = [validate_word(w, codec.d) for w in faults]
        for w in words:
            if len(w) != codec.n:
                raise InvalidParameterError(
                    f"fault {w} has length {len(w)}, expected {codec.n} "
                    f"for B({codec.d},{codec.n})"
                )
        return words

    @staticmethod
    def _guarantee_bound(d: int, n: int, f: int) -> int | None:
        try:
            return guaranteed_cycle_length(d, n, f)
        except FaultBudgetExceededError:
            return None
