"""repro.engine — the serving and orchestration subsystem.

Three cooperating pieces turn the paper's algorithms into a long-lived
system (the ROADMAP's production north star):

* :class:`~repro.engine.executor.KernelExecutor` — the one owner of
  topology tables, kernel scratch buffers and the batch-vs-scalar dispatch
  heuristic; every other layer (runner, sweep engine, service, the
  :mod:`repro.server` gateway) is a thin client of it.
* :class:`~repro.engine.service.EmbeddingService` — a resident query API
  ``embed(d, n, faults) -> EmbeddingResponse`` with canonical fault
  normalisation, bounded LRU caches and hit/latency counters, plus the
  topology-generic ``measure(...) -> MeasureResponse`` region queries.
* :class:`~repro.engine.sweep.ParallelSweepEngine` — multiprocess sharded
  execution of the Table 2.1/2.2-style fault sweeps (any backend of the
  :mod:`repro.topology` registry) with per-trial ``SeedSequence``-derived
  streams (bit-for-bit identical results for any worker count),
  topology-keyed JSON checkpoint/resume and progress callbacks.
* the ``python -m repro`` CLI (:mod:`repro.cli`) driving both plus the
  experiment registry.

:mod:`repro.engine.cache` provides the bounded-LRU primitive and
:mod:`repro.engine.caches` the process-wide cache audit.

The service/sweep symbols are loaded lazily (PEP 562): the analysis layer
imports :mod:`repro.engine.cache` for its bounded runner cache while the
sweep engine imports the analysis layer, and lazy loading keeps that
mutual dependency acyclic at import time.
"""

from typing import Any

from .cache import CacheStats, LRUCache

__all__ = [
    "CacheStats",
    "LRUCache",
    "cache_stats",
    "clear_caches",
    "register_cache",
    "unregister_cache",
    "KernelExecutor",
    "cached_executor",
    "EmbeddingRequest",
    "EmbeddingResponse",
    "MeasureResponse",
    "EmbeddingService",
    "ParallelSweepEngine",
    "SweepProgress",
    "trial_seed_sequences",
    "SweepBenchResult",
    "ServeBenchResult",
    "run_sweep_bench",
    "run_serve_bench",
    "write_bench_file",
]

_LAZY = {
    "SweepBenchResult": "bench",
    "ServeBenchResult": "bench",
    "run_sweep_bench": "bench",
    "run_serve_bench": "bench",
    "write_bench_file": "bench",
    "cache_stats": "caches",
    "clear_caches": "caches",
    "register_cache": "caches",
    "unregister_cache": "caches",
    "KernelExecutor": "executor",
    "cached_executor": "executor",
    "EmbeddingRequest": "service",
    "EmbeddingResponse": "service",
    "MeasureResponse": "service",
    "EmbeddingService": "service",
    "ParallelSweepEngine": "sweep",
    "SweepProgress": "sweep",
    "trial_seed_sequences": "sweep",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
