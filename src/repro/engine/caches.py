"""Process-wide cache audit: every bounded cache, one stats/clear surface.

A resident engine process memoises in several places: the codec tables
(:func:`repro.words.codec.get_codec`), the fault-sweep runners
(:mod:`repro.analysis.fault_simulation`), and the small number-theoretic
caches under :mod:`repro.gf` and :mod:`repro.core.bounds`.  All of them are
bounded (a PR-2 audit capped the formerly unbounded ones), and this module
is the single place that can enumerate, snapshot and clear them — the
service layer surfaces it through :meth:`EmbeddingService.stats`.

Imports happen lazily inside the registry function so that importing
:mod:`repro.engine` does not drag in the whole package.

Registration is the *single* mechanism: every cache owner calls
:func:`register_cache` at import time next to the cache it defines (the
REP001 lint rule enforces this for every ``functools.lru_cache`` in the
tree).  :func:`_registry` merely imports the known cache-owning modules so
their registrations have run before the audit is enumerated — an audit
that listed caches statically here drifted twice in past PRs when new
caches landed without a registry entry.  Registration mutates shared
module state, and the concurrent server registers/queries from several
threads, so both the registration dict and its enumeration are guarded by
one module lock.
"""

from __future__ import annotations

import threading
from typing import Any

from .cache import LRUCache

__all__ = ["cache_stats", "clear_caches", "register_cache", "unregister_cache"]

#: Dynamically registered caches (name -> cache); guarded by ``_LOCK``.
_REGISTERED: dict[str, Any] = {}
_LOCK = threading.Lock()


def register_cache(name: str, cache: Any) -> None:
    """Add a cache to the process-wide audit under ``name``.

    ``cache`` is an :class:`~repro.engine.cache.LRUCache` or a
    :func:`functools.lru_cache`-wrapped callable.  Re-registering a name
    replaces the entry (module reloads).  Thread-safe: the server and test
    harnesses may register while another thread snapshots the audit.
    """
    with _LOCK:
        _REGISTERED[str(name)] = cache


def unregister_cache(name: str) -> None:
    """Remove a registered cache from the audit (no-op for unknown names).

    The counterpart of :func:`register_cache`, so transient owners — test
    fixtures, short-lived servers — don't pollute the process-wide registry
    for the rest of the process.  Static registry entries cannot be removed.
    """
    with _LOCK:
        _REGISTERED.pop(str(name), None)


def _registry() -> dict[str, Any]:
    """Name -> cache object, for every audited cache in the process.

    Values are either :class:`~repro.engine.cache.LRUCache` instances or
    :func:`functools.lru_cache`-wrapped callables.  The imports below are
    for their side effect only: each module registers its caches via
    :func:`register_cache` at import time, so importing them here
    guarantees the audit is complete even in a process that never touched
    e.g. the ``gf`` layer.
    """
    from ..analysis import fault_simulation  # noqa: F401
    from ..core import bounds  # noqa: F401
    from ..engine import executor  # noqa: F401
    from ..gf import field, modular, primitive  # noqa: F401
    from ..words import codec  # noqa: F401

    with _LOCK:
        return dict(_REGISTERED)


def _snapshot(name: str, cache: Any) -> dict[str, Any]:
    if isinstance(cache, LRUCache):
        return cache.stats().as_dict()
    info = cache.cache_info()  # functools.lru_cache wrapper
    return {
        "name": name,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
        "hits": info.hits,
        "misses": info.misses,
        "evictions": max(0, info.misses - info.currsize) if info.maxsize else 0,
        "hit_rate": round(info.hits / (info.hits + info.misses), 4)
        if (info.hits + info.misses)
        else 0.0,
    }


def cache_stats() -> dict[str, dict[str, Any]]:
    """Snapshot every audited cache: ``{name: {maxsize, currsize, hits, ...}}``."""
    return {name: _snapshot(name, cache) for name, cache in _registry().items()}


def clear_caches() -> None:
    """Evict every audited cache (counters on LRU caches are preserved)."""
    for cache in _registry().values():
        if isinstance(cache, LRUCache):
            cache.clear()
        else:
            cache.cache_clear()
