"""Process-wide cache audit: every bounded cache, one stats/clear surface.

A resident engine process memoises in several places: the codec tables
(:func:`repro.words.codec.get_codec`), the fault-sweep runners
(:mod:`repro.analysis.fault_simulation`), and the small number-theoretic
caches under :mod:`repro.gf` and :mod:`repro.core.bounds`.  All of them are
bounded (a PR-2 audit capped the formerly unbounded ones), and this module
is the single place that can enumerate, snapshot and clear them — the
service layer surfaces it through :meth:`EmbeddingService.stats`.

Imports happen lazily inside the registry function so that importing
:mod:`repro.engine` does not drag in the whole package.

Two kinds of entry coexist: the *static* registry below (caches living in
modules this one would otherwise have to import eagerly) and *registered*
entries added at import time by the cache owners themselves via
:func:`register_cache` (e.g. the kernel-executor cache).  Registration
mutates shared module state, and the concurrent server registers/queries
from several threads, so both the registration dict and its enumeration are
guarded by one module lock.
"""

from __future__ import annotations

import threading
from typing import Any

from .cache import LRUCache

__all__ = ["cache_stats", "clear_caches", "register_cache", "unregister_cache"]

#: Dynamically registered caches (name -> cache); guarded by ``_LOCK``.
_REGISTERED: dict[str, Any] = {}
_LOCK = threading.Lock()


def register_cache(name: str, cache: Any) -> None:
    """Add a cache to the process-wide audit under ``name``.

    ``cache`` is an :class:`~repro.engine.cache.LRUCache` or a
    :func:`functools.lru_cache`-wrapped callable.  Re-registering a name
    replaces the entry (module reloads).  Thread-safe: the server and test
    harnesses may register while another thread snapshots the audit.
    """
    with _LOCK:
        _REGISTERED[str(name)] = cache


def unregister_cache(name: str) -> None:
    """Remove a registered cache from the audit (no-op for unknown names).

    The counterpart of :func:`register_cache`, so transient owners — test
    fixtures, short-lived servers — don't pollute the process-wide registry
    for the rest of the process.  Static registry entries cannot be removed.
    """
    with _LOCK:
        _REGISTERED.pop(str(name), None)


def _registry() -> dict[str, Any]:
    """Name -> cache object, for every audited cache in the process.

    Values are either :class:`~repro.engine.cache.LRUCache` instances or
    :func:`functools.lru_cache`-wrapped callables.
    """
    from ..analysis import fault_simulation
    from ..core import bounds
    from ..gf import field, modular, primitive
    from ..words import codec

    registry = {
        "words.get_codec": codec.get_codec,
        "analysis.fault_runners": fault_simulation._RUNNER_CACHE,
        "gf.GF": field.GF,
        "gf.smallest_irreducible": field._smallest_irreducible,
        "gf.primitive_polynomial_coefficients": primitive.primitive_polynomial_coefficients,
        "gf.prime_factorization": modular.prime_factorization,
        "gf.primitive_root": modular.primitive_root,
        "bounds.strategy_for_prime": bounds.strategy_for_prime,
        "bounds.psi_prime_power": bounds.psi_prime_power,
        "bounds.psi": bounds.psi,
        "bounds.edge_fault_phi": bounds.edge_fault_phi,
    }
    with _LOCK:
        registry.update(_REGISTERED)
    return registry


def _snapshot(name: str, cache: Any) -> dict[str, Any]:
    if isinstance(cache, LRUCache):
        return cache.stats().as_dict()
    info = cache.cache_info()  # functools.lru_cache wrapper
    return {
        "name": name,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
        "hits": info.hits,
        "misses": info.misses,
        "evictions": max(0, info.misses - info.currsize) if info.maxsize else 0,
        "hit_rate": round(info.hits / (info.hits + info.misses), 4)
        if (info.hits + info.misses)
        else 0.0,
    }


def cache_stats() -> dict[str, dict[str, Any]]:
    """Snapshot every audited cache: ``{name: {maxsize, currsize, hits, ...}}``."""
    return {name: _snapshot(name, cache) for name, cache in _registry().items()}


def clear_caches() -> None:
    """Evict every audited cache (counters on LRU caches are preserved)."""
    for cache in _registry().values():
        if isinstance(cache, LRUCache):
            cache.clear()
        else:
            cache.cache_clear()
