"""The shared kernel executor: one owner for tables, scratch and dispatch.

Before this module existed the batch-vs-scalar decision and the measurement
core were duplicated across three layers: ``FaultSweepRunner`` held the
kernel calls and the root-fallback machinery, ``ParallelSweepEngine`` held
the batch-width heuristic (``_measure_chunk``), and ``EmbeddingService``
drove the runner one scalar query at a time.  :class:`KernelExecutor` is the
single extraction point: it owns the topology instance (and through it the
gather tables), the reusable kernel scratch buffers
(:class:`~repro.graphs.msbfs.BatchWorkspace`), the intact-distance cache
behind the paper's neighbouring-root fallback, and the one
batch-vs-scalar dispatch heuristic (:data:`KernelExecutor.MIN_KERNEL_BATCH`).
Every consumer — the sweep runner, the parallel engine's workers, the
embedding service, and the :mod:`repro.server` micro-batching gateway — is a
thin client of this class, so their measurements can never diverge.

Three entry shapes cover every caller:

* **seeded trials** (:meth:`run_trial` / :meth:`run_trials_batch` /
  :meth:`measure_chunk`) — the Tables 2.1/2.2 sweep path: each trial samples
  its own fault set from its own ``SeedSequence`` stream, up to 64 trials
  per bit-parallel launch, bit-for-bit identical at any batch width;
* **explicit masks** (:meth:`measure_mask` / :meth:`measure_mask_with_root`)
  — one removed-node mask, one measurement, including the neighbouring-root
  fallback;
* **mask micro-batches** (:meth:`measure_masks_batch`) — up to 64
  *different requests'* masks packed into one kernel launch (ragged fault
  sets allowed): the serving hot path.  Each lane's answer is bit-for-bit
  what :meth:`measure_mask_with_root` returns for that mask alone.

Executors are thread-safe: the shared scratch workspace and the lazy
intact-distance table are lock-guarded, so the asyncio gateway can dispatch
from worker threads while a sweep uses the same cached executor.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.components import bfs_levels_table
from ..graphs.msbfs import (
    WORD_WIDTH,
    BatchStats,
    BatchWorkspace,
    batched_root_stats,
    lane_removed_mask,
    pack_fault_lanes,
    pack_mask_lanes,
)
from ..network.faults import sample_code_batch, sample_fault_codes
from ..obs import DEFAULT_REGISTRY, obs_disabled
from ..obs.tracing import Trace
from ..topology import DEFAULT_TOPOLOGY, Topology, get_topology
from .cache import LRUCache
from .caches import register_cache

__all__ = ["KernelExecutor", "cached_executor"]

# Process-wide kernel profiling (the register_cache idiom: handles created at
# import, enumerable through the default registry / the gateway's /metrics).
# Lane-occupancy buckets mirror the power-of-two batch widths the dispatch
# heuristic produces; level buckets cover B(2,12)-to-Q(16)-scale diameters.
_KERNEL_LAUNCHES = DEFAULT_REGISTRY.counter(
    "repro_kernel_launches_total",
    "Bit-parallel msbfs kernel launches",
    labelnames=("topology",),
)
_KERNEL_SECONDS = DEFAULT_REGISTRY.histogram(
    "repro_kernel_launch_seconds",
    "Wall time of one bit-parallel kernel launch",
    labelnames=("topology",),
)
_KERNEL_LANES = DEFAULT_REGISTRY.histogram(
    "repro_kernel_lanes",
    "Lane occupancy (trials packed) per kernel launch",
    labelnames=("topology",),
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0),
)
_KERNEL_LEVELS = DEFAULT_REGISTRY.histogram(
    "repro_kernel_levels",
    "BFS frontier expansions (sweep depth) per kernel launch",
    labelnames=("topology",),
    buckets=(2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0),
)
_FALLBACK_SECONDS = DEFAULT_REGISTRY.histogram(
    "repro_executor_fallback_seconds",
    "Wall time of root-fallback racing for peeled micro-batch lanes",
    labelnames=("topology",),
)


class KernelExecutor:
    """Measurement executor for one topology instance and one root.

    The default backend is the paper's ``B(d, n)``; any key of the
    :mod:`repro.topology` registry (or a pre-built
    :class:`~repro.topology.base.Topology`) selects another network.
    Construction touches the shared backend instance (cached per
    ``(topology, d, n)``); every precomputed table — gather columns,
    fault-unit closure — is then amortised across all launches.  The only
    mutable state is scratch (the kernel workspace, the intact-distance
    cache), all lock-guarded, so one executor can serve concurrent callers.
    """

    #: Tail chunks narrower than this run per-trial instead of through the
    #: kernel: a bit-parallel sweep costs roughly one full-graph BFS however
    #: few lanes it carries, so it only pays for itself once several trials
    #: share it (measured crossover ~4 trials on B(4, 10); results are
    #: identical either way, so this is purely a wall-clock heuristic).
    MIN_KERNEL_BATCH = 8

    def __init__(
        self,
        d: int,
        n: int,
        root: Sequence[int] | None = None,
        topology: str | Topology = DEFAULT_TOPOLOGY,
    ) -> None:
        self.topology = get_topology(topology, d, n)
        self.topology_key = self.topology.key
        self.d, self.n = self.topology.d, self.topology.n
        #: the De Bruijn codec where the backend has one (B/UB/shuffle-exchange);
        #: ``None`` for code-native backends like the hypercube
        self.codec = getattr(self.topology, "codec", None)
        if root is None:
            self.root_code = self.topology.default_root_code
        else:
            self.root_code = self.topology.encode(tuple(int(x) for x in root))
        self.root = self.topology.decode(self.root_code)
        self._intact_dist: np.ndarray | None = None
        self._intact_lock = threading.Lock()
        # one reusable sweep workspace per executor; every kernel launch
        # that borrows it is serialised by this lock (concurrent callers —
        # the server's batcher threads vs an inline sweep — must not share
        # the frontier/next/scratch arrays mid-flight)
        self._workspace = BatchWorkspace(self.topology.num_nodes)
        self._kernel_lock = threading.Lock()
        # bound the profiling children once: per-launch cost is then one
        # histogram observe (a bisect + two adds under the child lock)
        self._obs_launches = _KERNEL_LAUNCHES.labels(self.topology_key)
        self._obs_launch_seconds = _KERNEL_SECONDS.labels(self.topology_key)
        self._obs_lanes = _KERNEL_LANES.labels(self.topology_key)
        self._obs_levels = _KERNEL_LEVELS.labels(self.topology_key)
        self._obs_fallback_seconds = _FALLBACK_SECONDS.labels(self.topology_key)

    # -- seeded trials ---------------------------------------------------------
    def run_trial(self, f: int, rng: np.random.Generator) -> tuple[int, int]:
        """Run one random trial: returns ``(region_size, root_eccentricity)``."""
        codes = sample_fault_codes(self.topology.num_nodes, f, rng)
        fault_codes = np.asarray(codes, dtype=np.int64)
        return self.measure_mask(self.topology.fault_unit_mask(fault_codes))

    def run_trials_batch(
        self, f: int, seed_seqs: Sequence[np.random.SeedSequence]
    ) -> list[tuple[int, int]]:
        """Run up to 64 trials in one bit-parallel sweep; results in trial order.

        Each element of ``seed_seqs`` seeds one trial's private stream
        (the engine passes ``SeedSequence(seed, spawn_key=(f, t))``), and
        fault sampling stays strictly per-trial, so every returned pair is
        bit-for-bit what :meth:`run_trial` yields for the same stream — the
        kernel only changes how the ``(component size, eccentricity)``
        measurements are carried out.  Trials whose root lands in a faulty
        necklace are peeled out of the packed sweep and measured by the
        scalar fallback (:meth:`measure_mask`), including the paper's
        neighbouring-root rule and the all-nodes-removed ``(0, 0)`` case.
        """
        batch = len(seed_seqs)
        if not 1 <= batch <= WORD_WIDTH:
            raise InvalidParameterError(
                f"batch size must be in 1..{WORD_WIDTH}, got {batch}"
            )
        rngs = [np.random.default_rng(seq) for seq in seed_seqs]
        codes = sample_code_batch(self.topology.num_nodes, f, rngs)
        lanes = pack_fault_lanes(self.topology, codes)
        stats = self._launch(lanes, self.root_code, batch)
        results = list(zip(stats.sizes.tolist(), stats.eccs.tolist()))
        for t, stat in self._batched_fallbacks(lanes, stats.dead_trials()).items():
            results[t] = stat
        return results

    def measure_chunk(
        self,
        f: int,
        items: Sequence[tuple[int, np.random.SeedSequence]],
        batch: int,
    ) -> list[tuple[int, int, int]]:
        """Measure one chunk of trials, ``batch`` at a time: ``(t, size, ecc)`` list.

        This is the one batch-vs-scalar dispatch heuristic in the codebase
        (formerly duplicated between the sweep engine and the runner):
        ``batch=1`` takes the scalar per-trial path; ``batch>1`` packs up to
        ``batch`` trials per bit-parallel kernel call, with remnants
        narrower than :data:`MIN_KERNEL_BATCH` falling back to the scalar
        path (an explicitly small ``batch`` setting is honoured).  Which
        trials share a kernel call is irrelevant to the results — every
        trial's samples come from its own SeedSequence stream — so serial
        runs, resumed runs with scattered holes and worker shards all
        produce identical measurements.
        """
        if batch <= 1:
            return [
                (t, *self.run_trial(f, np.random.default_rng(seq))) for t, seq in items
            ]
        out: list[tuple[int, int, int]] = []
        min_kernel = min(self.MIN_KERNEL_BATCH, batch)
        for start in range(0, len(items), batch):
            part = items[start : start + batch]
            if len(part) < min_kernel:
                out.extend(
                    (t, *self.run_trial(f, np.random.default_rng(seq)))
                    for t, seq in part
                )
                continue
            stats = self.run_trials_batch(f, [seq for _, seq in part])
            out.extend((t, size, ecc) for (t, _), (size, ecc) in zip(part, stats))
        return out

    # -- explicit masks --------------------------------------------------------
    def measure(self, faults: Iterable[Sequence[int]]) -> tuple[int, int]:
        """Measure region size and eccentricity for an explicit fault set."""
        fault_codes = np.asarray(
            [self.topology.encode(w) for w in faults], dtype=np.int64
        )
        return self.measure_mask(self.topology.fault_unit_mask(fault_codes))

    def measure_mask(self, removed: np.ndarray) -> tuple[int, int]:
        """Measure for an explicit removed-node mask (the int-coded hot path)."""
        size, ecc, _ = self.measure_mask_with_root(removed)
        return size, ecc

    def measure_mask_with_root(self, removed: np.ndarray) -> tuple[int, int, int | None]:
        """Like :meth:`measure_mask`, also returning the measured root's code.

        The root is the configured ``R`` when it survives, otherwise the
        sweep protocol's neighbouring-root fallback; ``None`` (with a
        ``(0, 0)`` measurement) when every node was removed.  Consumers that
        report the measurement root — e.g.
        :meth:`repro.engine.service.EmbeddingService.measure` — use this
        form so the reported root can never drift from the measured one.
        """
        root = self._measurement_root(removed)
        if root is None:
            return 0, 0, None
        return (*self._measure_from_root(removed, root), int(root))

    # -- mask micro-batches (the serving hot path) -----------------------------
    def measure_masks_batch(
        self,
        masks: Sequence[np.ndarray],
        traces: Sequence[Trace | None] | None = None,
    ) -> list[tuple[int, int, int | None]]:
        """Measure up to 64 *different requests'* masks in one kernel launch.

        Each entry of ``masks`` is one request's ``bool[num_nodes]``
        removed-node mask (requests may remove different numbers of fault
        units — the batch is ragged, unlike a sweep row's rectangular trial
        batch).  Lane ``t``'s answer is bit-for-bit
        :meth:`measure_mask_with_root` on ``masks[t]`` alone; requests whose
        root lies in a removed unit are peeled onto the scalar fallback,
        which also reports the fallback root the micro-batched kernel cannot.
        This is the :mod:`repro.server` gateway's dispatch target: one
        full-graph sweep amortised over every coalesced request.

        ``traces[t]`` (when given, aligned with ``masks``) receives a
        ``kernel`` span covering the shared launch and — for peeled lanes —
        a ``fallback`` span covering that request's scalar re-measurement.
        """
        batch = len(masks)
        if not 1 <= batch <= WORD_WIDTH:
            raise InvalidParameterError(
                f"batch size must be in 1..{WORD_WIDTH}, got {batch}"
            )
        if traces is not None and len(traces) != batch:
            raise InvalidParameterError(
                f"got {len(traces)} traces for {batch} masks"
            )
        lanes = pack_mask_lanes(masks, self.topology.num_nodes)
        launch_start = time.perf_counter()
        stats = self._launch(lanes, self.root_code, batch)
        launch_end = time.perf_counter()
        if traces is not None:
            for trace in traces:
                if trace is not None:
                    trace.add_span("kernel", launch_start, launch_end)
        results: list[tuple[int, int, int | None]] = [
            (size, ecc, self.root_code)
            for size, ecc in zip(stats.sizes.tolist(), stats.eccs.tolist())
        ]
        for t in stats.dead_trials():
            # rare in served regimes, and the fallback must report its root:
            # the scalar path answers both
            fb_start = time.perf_counter()
            results[t] = self.measure_mask_with_root(lane_removed_mask(lanes, t))
            fb_end = time.perf_counter()
            if not obs_disabled():
                self._obs_fallback_seconds.observe(fb_end - fb_start)
            lane_trace = traces[t] if traces is not None else None
            if lane_trace is not None:
                lane_trace.add_span("fallback", fb_start, fb_end)
        return results

    # -- kernel launch ---------------------------------------------------------
    def _launch(self, lanes: np.ndarray, root: int | np.ndarray, batch: int) -> BatchStats:
        """One bit-parallel sweep through the executor's shared workspace."""
        with self._kernel_lock:
            if obs_disabled():
                return batched_root_stats(
                    self.topology, lanes, root, batch, workspace=self._workspace
                )
            start = time.perf_counter()
            stats = batched_root_stats(
                self.topology, lanes, root, batch, workspace=self._workspace
            )
            self._obs_launch_seconds.observe(time.perf_counter() - start)
        self._obs_launches.inc()
        self._obs_lanes.observe(float(batch))
        self._obs_levels.observe(float(stats.levels))
        return stats

    def _batched_fallbacks(
        self, lanes: np.ndarray, dead: Sequence[int]
    ) -> dict[int, tuple[int, int]]:
        """Fallback measurements for the batch's root-dead trials, lane-packed.

        Each dead trial contributes its fallback candidate roots as lanes
        over its own fault mask (a single candidate is just a 1-lane
        segment), so one extra kernel sweep usually resolves every peeled
        trial of the batch at once.  Per trial the result is bit-for-bit
        :meth:`_fallback_stats` (itself bit-for-bit :meth:`measure_mask`);
        a trial with more than 64 candidates falls back to chunked racing.
        """
        out: dict[int, tuple[int, int]] = {}
        pending: list[tuple[int, np.ndarray]] = []
        for t in dead:
            removed = lane_removed_mask(lanes, t)
            if not (~removed).any():
                out[t] = (0, 0)
                continue
            candidates = self._fallback_candidates(removed)
            if candidates.size > WORD_WIDTH:
                out[t] = self._fallback_stats(removed)
            else:
                # single candidates ride along too: a 1-lane segment of the
                # race sweep is exactly that root's BFS
                pending.append((t, candidates))
        group: list[tuple[int, np.ndarray]] = []
        used = 0
        for item in pending:
            if used + len(item[1]) > WORD_WIDTH:
                self._race_candidate_lanes(lanes, group, out)
                group, used = [], 0
            group.append(item)
            used += len(item[1])
        if group:
            self._race_candidate_lanes(lanes, group, out)
        return out

    def _race_candidate_lanes(
        self,
        lanes: np.ndarray,
        group: Sequence[tuple[int, np.ndarray]],
        out: dict[int, tuple[int, int]],
    ) -> None:
        """Race several trials' candidate roots in one multi-root sweep."""
        one = np.uint64(1)
        roots = np.concatenate([c for _, c in group]).astype(np.int64)
        packed = np.zeros(self.topology.num_nodes, dtype=np.uint64)
        pos = 0
        for t, candidates in group:
            # replicate trial t's removed mask into this trial's lane segment
            segment = np.uint64(((1 << len(candidates)) - 1) << pos)
            packed |= ((lanes >> np.uint64(t)) & one) * segment
            pos += len(candidates)
        stats = self._launch(packed, roots, len(roots))
        pos = 0
        for t, candidates in group:
            seg_sizes = stats.sizes[pos : pos + len(candidates)]
            # np.argmax returns the FIRST maximum: the ascending-code
            # strict-'>' scan of _measurement_root, lane-parallel.
            i = int(np.argmax(seg_sizes))
            out[t] = (int(seg_sizes[i]), int(stats.eccs[pos + i]))
            pos += len(candidates)

    # -- root fallback ---------------------------------------------------------
    def _measure_from_root(self, removed: np.ndarray, root: int) -> tuple[int, int]:
        # One directed BFS gives both the reached region and the eccentricity.
        # For De Bruijn, whole-necklace removal keeps the digraph balanced, so
        # that region is the root's component (the paper's measurement);
        # undirected backends reach their whole component by definition.
        dist = bfs_levels_table(self.topology.successor_table, removed, root)
        return int((dist >= 0).sum()), int(dist.max())

    def _intact_distances(self) -> np.ndarray:
        """Fault-free hop distances from ``R`` (either direction), cached."""
        with self._intact_lock:
            if self._intact_dist is None:
                self._intact_dist = bfs_levels_table(
                    self.topology.neighbour_table,
                    np.zeros(self.topology.num_nodes, dtype=bool),
                    self.root_code,
                )
            return self._intact_dist

    def _fallback_candidates(self, removed: np.ndarray) -> np.ndarray:
        """The paper's "neighboring node" candidates: nearest survivors, ascending."""
        alive = ~removed
        dist = self._intact_distances()
        nearest = dist[alive].min()
        return np.flatnonzero(alive & (dist == nearest))

    def _measurement_root(self, removed: np.ndarray) -> int | None:
        """The root ``R``, or the paper's "neighboring node" fallback.

        The fallback takes the surviving nodes closest to ``R`` in the
        fault-free graph (hop distance, either direction) and among those
        prefers one lying in the largest component (ties: smallest code).

        The smallest-code tie-break is a deliberate, deterministic rule; the
        historical implementation (:mod:`repro.analysis.reference`) broke
        such ties by incidental discovery order, which can pick a different
        (equally valid) root when several equally-near survivors tie on
        component size — a configuration requiring the root's necklace *and*
        all of its neighbours to die, far outside the tabulated regimes.
        """
        if not removed[self.root_code]:
            return self.root_code
        if not (~removed).any():
            return None
        candidates = self._fallback_candidates(removed)
        if candidates.size == 1:
            return int(candidates[0])
        best_root, best_size = None, -1
        succ = self.topology.successor_table
        for value in candidates.tolist():
            size = int((bfs_levels_table(succ, removed, value) >= 0).sum())
            if size > best_size:
                best_root, best_size = value, size
        return best_root

    def _fallback_stats(self, removed: np.ndarray) -> tuple[int, int]:
        """Measure a trial whose root ``R`` lies in a faulty necklace.

        Bit-for-bit the result of :meth:`measure_mask` on the same mask, but
        with the tied fallback candidates raced through ONE bit-parallel
        sweep (each candidate root in its own lane over the shared fault
        mask) instead of one scalar BFS per candidate plus a final re-sweep
        of the winner.  The scalar tie-break is preserved exactly: the
        winner is the first maximum over candidates in ascending code order.
        """
        if not (~removed).any():
            return 0, 0
        candidates = self._fallback_candidates(removed)
        if candidates.size == 1:
            return self._measure_from_root(removed, int(candidates[0]))
        best_size, best_ecc = -1, 0
        for start in range(0, candidates.size, WORD_WIDTH):
            chunk = candidates[start : start + WORD_WIDTH]
            lanes = removed.astype(np.uint64) * np.uint64(2 ** len(chunk) - 1)
            stats = self._launch(lanes, chunk, len(chunk))
            # np.argmax returns the FIRST maximum: the ascending-code strict-'>'
            # scan of _measurement_root, lane-parallel.
            i = int(np.argmax(stats.sizes))
            if int(stats.sizes[i]) > best_size:
                best_size, best_ecc = int(stats.sizes[i]), int(stats.eccs[i])
        return best_size, best_ecc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelExecutor({self.topology_key!r}, d={self.d}, n={self.n}, "
            f"root={self.root_code})"
        )


#: Bounded, observable executor cache: one entry per ``(topology, d, n, root)``
#: served.  Every layer that needs a shared executor — the sweep engine's
#: worker processes, the embedding service, the server's shards — resolves
#: through here, so the kernel tables and scratch exist once per process.
_EXECUTOR_CACHE = LRUCache(maxsize=8, name="engine.kernel_executors")
register_cache("engine.kernel_executors", _EXECUTOR_CACHE)


def cached_executor(
    d: int,
    n: int,
    root: Sequence[int] | None = None,
    topology: str = DEFAULT_TOPOLOGY,
) -> KernelExecutor:
    """The process-wide shared executor for ``(topology, d, n, root)``."""
    root_key = None if root is None else tuple(int(x) for x in root)
    key = (str(topology), int(d), int(n), root_key)
    return _EXECUTOR_CACHE.get_or_create(
        key, lambda: KernelExecutor(d, n, root=root_key, topology=topology)
    )
