"""``python -m repro bench`` — the tracked performance benchmarks.

Two tracked suites share one history file:

* **sweep** — a Tables 2.1/2.2-style random-fault sweep run twice on the
  same seeds, once through the scalar per-trial path (``batch=1``) and once
  through the bit-parallel 64-trial kernel (:mod:`repro.graphs.msbfs`),
  asserting the rows are bit-for-bit identical and recording wall-times and
  speedups, keyed by topology name (``--topology`` selects a backend's
  tracked configurations);
* **serve** — the :mod:`repro.server` gateway benchmarked end to end over
  real sockets: the same concurrent ``/measure`` workload served once in
  single-query mode (``max_batch=1`` — one kernel launch per request) and
  once micro-batched (``max_batch=64``), recording requests/sec and
  p50/p99 latency for both and asserting the answers are field-identical.

``BENCH_sweep.json`` is an append-only run history (schema 3): every
``python -m repro bench`` invocation appends one run — timestamp, machine,
sweep entries, serve entries — to the ``runs`` list, migrating older
schema-1/2 single-snapshot files into the first history entry, so the
performance trajectory survives across PRs instead of being overwritten.
The latest run's entries stay mirrored at the top level for schema-2
readers.  CI uploads the file as an artifact on every run.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from collections.abc import Callable, Sequence
from typing import Any
from dataclasses import asdict, dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..topology import get_topology
from .sweep import ParallelSweepEngine

__all__ = [
    "SweepBenchResult",
    "ServeBenchResult",
    "ObsOverheadResult",
    "run_sweep_bench",
    "run_serve_bench",
    "run_obs_overhead_bench",
    "append_run",
    "write_bench_file",
    "DEFAULT_CONFIGS",
    "SERVE_CONFIG",
]

#: Tracked benchmark configurations per topology: ``(d, n, fault_counts)``.
#: De Bruijn keeps the pinned B(2,12) multi-row sweep plus the paper's
#: Table 2.2 graph; the other backends get one comparably sized graph each.
DEFAULT_CONFIGS: dict[str, tuple[tuple[int, int, tuple[int, ...]], ...]] = {
    "debruijn": ((2, 12, (2, 8, 16, 32)), (4, 5, (1, 5, 20, 50))),
    "kautz": ((2, 11, (2, 8, 16, 32)),),
    "hypercube": ((2, 12, (1, 2, 4, 8)),),
    "shuffle_exchange": ((2, 12, (2, 8, 16, 32)),),
    "undirected_debruijn": ((2, 12, (2, 8, 16, 32)),),
}


@dataclass(frozen=True)
class SweepBenchResult:
    """One benchmark entry: scalar vs batched wall-time on identical sweeps."""

    name: str
    topology: str
    d: int
    n: int
    nodes: int
    fault_counts: tuple[int, ...]
    trials: int
    seed: int
    batch: int
    scalar_s: float
    batched_s: float
    speedup: float
    rows_equal: bool


#: The serve benchmark's tracked graph: big enough that a kernel launch
#: dominates per-request HTTP overhead, so the single-query vs micro-batched
#: contrast measures the batching, not the socket plumbing.
SERVE_CONFIG: tuple[str, int, int] = ("debruijn", 2, 14)


@dataclass(frozen=True)
class ServeBenchResult:
    """One serving entry: single-query vs micro-batched gateway throughput.

    Both modes serve the *same* concurrent ``/measure`` workload over real
    HTTP connections; ``answers_equal`` asserts the micro-batched answers
    are field-identical to the single-query ones (the serving analog of the
    sweep suite's ``rows_equal``), and ``throughput_gain`` is the tracked
    micro-batching win (``batched_rps / single_rps``).
    """

    name: str
    topology: str
    d: int
    n: int
    nodes: int
    requests: int
    concurrency: int
    seed: int
    max_batch: int
    max_wait_ms: float
    single_s: float
    single_rps: float
    single_p50_s: float
    single_p99_s: float
    batched_s: float
    batched_rps: float
    batched_p50_s: float
    batched_p99_s: float
    batch_occupancy: float
    throughput_gain: float
    answers_equal: bool


def _best_time(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Minimum wall time over ``repeats`` runs (noise only ever inflates)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_sweep_bench(
    configs: Sequence[tuple[int, int, tuple[int, ...]]] | None = None,
    trials: int = 192,
    seed: int = 0,
    batch: int = 64,
    repeats: int = 3,
    topology: str = "debruijn",
) -> list[SweepBenchResult]:
    """Time scalar vs batched single-process sweeps on each configuration.

    ``configs`` defaults to the selected topology's tracked set
    (:data:`DEFAULT_CONFIGS`); entries are keyed by topology name in the
    result file.
    """
    if trials < 1:
        raise InvalidParameterError("at least one trial is required")
    if repeats < 1:
        raise InvalidParameterError("at least one repeat is required")
    if configs is None:
        configs = DEFAULT_CONFIGS.get(topology, ((2, 10, (2, 8, 16, 32)),))
    results = []
    for d, n, fault_counts in configs:
        topo = get_topology(topology, d, n)
        scalar_engine = ParallelSweepEngine(d, n, batch=1, topology=topology)
        batched_engine = ParallelSweepEngine(d, n, batch=batch, topology=topology)
        kwargs = {"fault_counts": fault_counts, "trials": trials, "seed": seed}
        # warm both paths: backend tables for the scalar engine, predecessor
        # columns and lane buffers for the kernel
        scalar_engine.run(fault_counts=fault_counts[:1], trials=1, seed=seed)
        batched_engine.run(fault_counts=fault_counts[:1], trials=batch, seed=seed)
        scalar_s, scalar_rows = _best_time(lambda: scalar_engine.run(**kwargs), repeats)
        batched_s, batched_rows = _best_time(lambda: batched_engine.run(**kwargs), repeats)
        results.append(
            SweepBenchResult(
                name=f"sweep_{topo.key}_{d}_{n}",
                topology=topo.key,
                d=d,
                n=n,
                nodes=topo.num_nodes,
                fault_counts=tuple(fault_counts),
                trials=trials,
                seed=seed,
                batch=batch,
                scalar_s=scalar_s,
                batched_s=batched_s,
                speedup=scalar_s / batched_s,
                rows_equal=scalar_rows == batched_rows,
            )
        )
    return results


def run_serve_bench(
    requests: int = 256,
    concurrency: int = 48,
    seed: int = 0,
    max_wait_ms: float = 2.0,
    config: tuple[str, int, int] = SERVE_CONFIG,
) -> list[ServeBenchResult]:
    """Benchmark the gateway end to end: single-query vs micro-batched serving.

    Starts one in-process :class:`~repro.server.gateway.BatchingGateway` per
    mode on an ephemeral port and drives the identical seeded workload —
    ``requests`` distinct fault sets issued through ``concurrency``
    persistent HTTP connections — through ``max_batch=1`` (every request its
    own kernel launch: the pre-server serving shape) and ``max_batch=64``
    (micro-batched).  Fresh gateways mean fresh answer caches, so neither
    mode is flattered by the other's warm entries.
    """
    import asyncio

    from ..server.batcher import latency_percentiles
    from ..server.client import fire_measure
    from ..server.gateway import BatchingGateway, GatewayConfig

    if requests < 1:
        raise InvalidParameterError("at least one request is required")
    topology, d, n = config
    topo = get_topology(topology, d, n)
    rng = np.random.default_rng(seed)
    payloads = []
    for _ in range(requests):
        f = int(rng.integers(1, 9))
        faults = [
            [int(x) for x in rng.integers(0, d, size=n)] for _ in range(f)
        ]
        payloads.append(
            {"topology": topology, "d": d, "n": n, "faults": faults, "root": None}
        )

    async def one_mode(max_batch: int) -> tuple[list[dict], float, list[float], float]:
        gateway = BatchingGateway(GatewayConfig(
            port=0, max_batch=max_batch, max_wait_ms=max_wait_ms,
        ))
        await gateway.start()
        host, port = gateway.address
        try:
            t0 = time.perf_counter()
            answers, latencies = await fire_measure(host, port, payloads, concurrency)
            elapsed = time.perf_counter() - t0
            stats = gateway.stats()["server"]
            occupancy = stats["batch_occupancy"]
        finally:
            await gateway.close()
        return answers, elapsed, latencies, occupancy

    async def both_modes() -> tuple[
        tuple[list[dict], float, list[float], float],
        tuple[list[dict], float, list[float], float],
    ]:
        single = await one_mode(1)
        batched = await one_mode(64)
        return single, batched

    (single_answers, single_s, single_lat, _), (
        batched_answers, batched_s, batched_lat, occupancy,
    ) = asyncio.run(both_modes())

    transient = ("cached", "elapsed_s", "trace_id")
    answers_equal = [
        {k: v for k, v in a.items() if k not in transient} for a in single_answers
    ] == [
        {k: v for k, v in a.items() if k not in transient} for a in batched_answers
    ]
    single_rps = requests / single_s
    batched_rps = requests / batched_s
    # same percentile rule as the gateway's /stats, so the recorded numbers
    # stay comparable with the live metrics they sit next to
    single_pct = latency_percentiles(single_lat)
    batched_pct = latency_percentiles(batched_lat)
    return [
        ServeBenchResult(
            name=f"serve_{topo.key}_{d}_{n}",
            topology=topo.key,
            d=d,
            n=n,
            nodes=topo.num_nodes,
            requests=requests,
            concurrency=concurrency,
            seed=seed,
            max_batch=64,
            max_wait_ms=max_wait_ms,
            single_s=single_s,
            single_rps=single_rps,
            single_p50_s=single_pct["p50_s"],
            single_p99_s=single_pct["p99_s"],
            batched_s=batched_s,
            batched_rps=batched_rps,
            batched_p50_s=batched_pct["p50_s"],
            batched_p99_s=batched_pct["p99_s"],
            batch_occupancy=occupancy,
            throughput_gain=batched_rps / single_rps,
            answers_equal=answers_equal,
        )
    ]


@dataclass(frozen=True)
class ObsOverheadResult:
    """Instrumentation overhead: the same sweep with obs on vs disabled.

    ``overhead_frac`` is ``instrumented_s / disabled_s - 1`` — the price of
    the :mod:`repro.obs` layer itself (kernel launch/lane/level histograms,
    sweep counters).  The tracked budget is a few percent; the run history
    keeps the trajectory so a regression in instrumentation cost is visible
    the same way a kernel slowdown is.
    """

    name: str
    topology: str
    d: int
    n: int
    trials: int
    seed: int
    batch: int
    instrumented_s: float
    disabled_s: float
    overhead_frac: float
    rows_equal: bool


def run_obs_overhead_bench(
    d: int = 2,
    n: int = 10,
    trials: int = 192,
    seed: int = 0,
    batch: int = 64,
    repeats: int = 3,
    topology: str = "debruijn",
) -> ObsOverheadResult:
    """Time one batched sweep with instrumentation enabled vs disabled.

    Toggles the process-wide obs gate (:func:`repro.obs.set_obs_disabled`,
    the runtime form of ``REPRO_OBS_DISABLED=1``) around otherwise identical
    runs; the gate is always restored.  Rows must be bit-for-bit identical —
    observability must never change a measurement.
    """
    from ..obs import obs_disabled, set_obs_disabled

    if trials < 1:
        raise InvalidParameterError("at least one trial is required")
    if repeats < 1:
        raise InvalidParameterError("at least one repeat is required")
    topo = get_topology(topology, d, n)
    engine = ParallelSweepEngine(d, n, batch=batch, topology=topology)
    fault_counts = (2, 8, 16, 32)
    kwargs = {"fault_counts": fault_counts, "trials": trials, "seed": seed}
    engine.run(fault_counts=fault_counts[:1], trials=batch, seed=seed)  # warm
    prior = obs_disabled()
    try:
        set_obs_disabled(False)
        instrumented_s, rows_on = _best_time(lambda: engine.run(**kwargs), repeats)
        set_obs_disabled(True)
        disabled_s, rows_off = _best_time(lambda: engine.run(**kwargs), repeats)
    finally:
        set_obs_disabled(prior)
    return ObsOverheadResult(
        name=f"obs_overhead_{topo.key}_{d}_{n}",
        topology=topo.key,
        d=d,
        n=n,
        trials=trials,
        seed=seed,
        batch=batch,
        instrumented_s=instrumented_s,
        disabled_s=disabled_s,
        overhead_frac=instrumented_s / disabled_s - 1.0,
        rows_equal=rows_on == rows_off,
    )


def _load_runs(path: str) -> list[dict]:
    """The existing run history at ``path`` (schema 1/2 files become run #1)."""
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []  # unreadable history: start a fresh one rather than crash
    if not isinstance(data, dict):
        return []
    if data.get("schema") in (1, 2):
        # migrate the single snapshot into the first history entry
        return [{
            "schema": data.get("schema"),
            "unix_time": data.get("unix_time"),
            "machine": data.get("machine"),
            "benchmarks": data.get("benchmarks", []),
            "serve": [],
        }]
    runs = data.get("runs", [])
    return runs if isinstance(runs, list) else []


def _as_entries(items: Sequence[Any]) -> list[dict]:
    """Result entries as plain dicts (dataclass instances are converted)."""
    return [item if isinstance(item, dict) else asdict(item) for item in items]


def append_run(
    path: str,
    benchmarks: Sequence[Any] = (),
    serve: Sequence[Any] = (),
    obs: Sequence[Any] = (),
    churn: Sequence[Any] = (),
) -> dict:
    """Append one run to the history at ``path``; return the full payload.

    The file is schema 3: ``runs`` holds every recorded invocation (oldest
    first, schema-1/2 snapshots migrated on first contact), while the top
    level mirrors the newest run's entries for schema-2 readers and quick
    ``cat``-ing.  Entries may be result dataclasses or already-built dicts
    (churn scenario reports arrive as dicts).  Runs recorded before a
    section existed simply lack its key (``obs``, ``churn``).
    """
    run = {
        "unix_time": time.time(),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "benchmarks": _as_entries(benchmarks),
        "serve": _as_entries(serve),
        "obs": _as_entries(obs),
        "churn": _as_entries(churn),
    }
    runs = _load_runs(path) + [run]
    payload = {
        "schema": 3,  # 3: append-only run history (see _load_runs)
        "generated_by": "python -m repro bench",
        "unix_time": run["unix_time"],
        "machine": run["machine"],
        "benchmarks": run["benchmarks"],
        "serve": run["serve"],
        "obs": run["obs"],
        "churn": run["churn"],
        "runs": runs,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def write_bench_file(
    results: Sequence[SweepBenchResult],
    path: str,
    serve_results: Sequence[ServeBenchResult] = (),
    obs_result: ObsOverheadResult | None = None,
) -> dict:
    """Append this bench invocation's run to ``path`` (see :func:`append_run`)."""
    return append_run(
        path,
        benchmarks=results,
        serve=serve_results,
        obs=() if obs_result is None else (obs_result,),
    )
