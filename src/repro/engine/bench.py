"""``python -m repro bench`` — the tracked sweep-performance benchmark.

Runs a Tables 2.1/2.2-style random-fault sweep twice on the same seeds —
once through the scalar per-trial path (``batch=1``) and once through the
bit-parallel 64-trial kernel (:mod:`repro.graphs.msbfs`) — asserts the rows
are bit-for-bit identical, and writes a machine-readable
``BENCH_sweep.json`` with wall-times and speedups, keyed by topology name.
Each registered topology backend has its own tracked configurations
(``--topology`` selects them; the default is the De Bruijn pair the
benchmark has pinned since the kernel landed).  CI uploads the file as an
artifact on every run, so the performance trajectory of the hot path is
tracked from the PR that introduced the kernel onward.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections.abc import Sequence
from dataclasses import asdict, dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..topology import get_topology
from .sweep import ParallelSweepEngine

__all__ = ["SweepBenchResult", "run_sweep_bench", "write_bench_file", "DEFAULT_CONFIGS"]

#: Tracked benchmark configurations per topology: ``(d, n, fault_counts)``.
#: De Bruijn keeps the pinned B(2,12) multi-row sweep plus the paper's
#: Table 2.2 graph; the other backends get one comparably sized graph each.
DEFAULT_CONFIGS: dict[str, tuple[tuple[int, int, tuple[int, ...]], ...]] = {
    "debruijn": ((2, 12, (2, 8, 16, 32)), (4, 5, (1, 5, 20, 50))),
    "kautz": ((2, 11, (2, 8, 16, 32)),),
    "hypercube": ((2, 12, (1, 2, 4, 8)),),
    "shuffle_exchange": ((2, 12, (2, 8, 16, 32)),),
    "undirected_debruijn": ((2, 12, (2, 8, 16, 32)),),
}


@dataclass(frozen=True)
class SweepBenchResult:
    """One benchmark entry: scalar vs batched wall-time on identical sweeps."""

    name: str
    topology: str
    d: int
    n: int
    nodes: int
    fault_counts: tuple[int, ...]
    trials: int
    seed: int
    batch: int
    scalar_s: float
    batched_s: float
    speedup: float
    rows_equal: bool


def _best_time(fn, repeats: int):
    """Minimum wall time over ``repeats`` runs (noise only ever inflates)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_sweep_bench(
    configs: Sequence[tuple[int, int, tuple[int, ...]]] | None = None,
    trials: int = 192,
    seed: int = 0,
    batch: int = 64,
    repeats: int = 3,
    topology: str = "debruijn",
) -> list[SweepBenchResult]:
    """Time scalar vs batched single-process sweeps on each configuration.

    ``configs`` defaults to the selected topology's tracked set
    (:data:`DEFAULT_CONFIGS`); entries are keyed by topology name in the
    result file.
    """
    if trials < 1:
        raise InvalidParameterError("at least one trial is required")
    if repeats < 1:
        raise InvalidParameterError("at least one repeat is required")
    if configs is None:
        configs = DEFAULT_CONFIGS.get(topology, ((2, 10, (2, 8, 16, 32)),))
    results = []
    for d, n, fault_counts in configs:
        topo = get_topology(topology, d, n)
        scalar_engine = ParallelSweepEngine(d, n, batch=1, topology=topology)
        batched_engine = ParallelSweepEngine(d, n, batch=batch, topology=topology)
        kwargs = {"fault_counts": fault_counts, "trials": trials, "seed": seed}
        # warm both paths: backend tables for the scalar engine, predecessor
        # columns and lane buffers for the kernel
        scalar_engine.run(fault_counts=fault_counts[:1], trials=1, seed=seed)
        batched_engine.run(fault_counts=fault_counts[:1], trials=batch, seed=seed)
        scalar_s, scalar_rows = _best_time(lambda: scalar_engine.run(**kwargs), repeats)
        batched_s, batched_rows = _best_time(lambda: batched_engine.run(**kwargs), repeats)
        results.append(
            SweepBenchResult(
                name=f"sweep_{topo.key}_{d}_{n}",
                topology=topo.key,
                d=d,
                n=n,
                nodes=topo.num_nodes,
                fault_counts=tuple(fault_counts),
                trials=trials,
                seed=seed,
                batch=batch,
                scalar_s=scalar_s,
                batched_s=batched_s,
                speedup=scalar_s / batched_s,
                rows_equal=scalar_rows == batched_rows,
            )
        )
    return results


def write_bench_file(results: Sequence[SweepBenchResult], path: str) -> dict:
    """Serialise benchmark results (plus machine info) to ``path``; return the payload."""
    payload = {
        "schema": 2,  # 2: entries keyed by topology (name + topology fields)
        "generated_by": "python -m repro bench",
        "unix_time": time.time(),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "benchmarks": [asdict(r) for r in results],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
