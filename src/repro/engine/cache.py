"""Bounded, instrumented LRU caches for long-lived service processes.

The engine subsystem runs as a resident service: the same process answers
embedding queries and orchestrates fault sweeps for hours.  Every cache it
holds must therefore be *bounded* (so memory cannot grow with the number of
distinct queries seen) and *observable* (so an operator can read hit rates
and evict on demand).  :class:`LRUCache` is the one primitive used for both:
a thread-safe least-recently-used mapping with hit/miss/eviction counters
and a uniform ``stats()`` shape shared with the :mod:`functools.lru_cache`
wrappers audited in :mod:`repro.engine.caches`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import asdict, dataclass
from typing import Any

from ..exceptions import InvalidParameterError

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one cache (the uniform shape used by ``stats()``)."""

    name: str
    maxsize: int | None
    currsize: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["hit_rate"] = round(self.hit_rate, 4)
        return data


class LRUCache:
    """A bounded least-recently-used cache with counters.

    Unlike :func:`functools.lru_cache` this caches *values by explicit key*
    rather than memoising a function, so the service layer can build keys
    that normalise the request (e.g. fault sets reduced to canonical
    necklace representatives) before the lookup.  All operations take an
    internal lock; instances are safe to share between a service thread and
    a progress-reporting thread.
    """

    def __init__(self, maxsize: int, name: str = "lru") -> None:
        if maxsize < 1:
            raise InvalidParameterError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.name = str(name)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key -> value``, evicting the least recently used on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it with ``factory`` on a miss.

        The factory runs outside the lock (it may be expensive — e.g. codec
        table construction), so two racing threads may both build; the second
        insert simply refreshes the entry.  Correctness only requires the
        factory to be deterministic, which every engine factory is.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (counters are preserved; see ``reset_counters``)."""
        with self._lock:
            self._data.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                maxsize=self.maxsize,
                currsize=len(self._data),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"LRUCache({self.name!r}, {s.currsize}/{s.maxsize}, "
            f"hits={s.hits}, misses={s.misses})"
        )
