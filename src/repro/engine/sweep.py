"""Parallel, resumable orchestration of the Table 2.1/2.2-style fault sweeps.

:class:`ParallelSweepEngine` is the single orchestration path for the
random-fault simulations of Section 2.5.2: the public
:func:`repro.analysis.fault_simulation.simulate_fault_table`, the
``python -m repro sweep`` CLI and the table benchmarks all route through it.
The engine is topology-generic — ``topology="kautz"`` (or any other key of
the :mod:`repro.topology` registry) sweeps that backend with the same seed
streams, sharding, batching and checkpointing; the default ``debruijn``
backend reproduces the paper's tables bit-for-bit.

The engine's contract is **bit-for-bit determinism independent of worker
count**: a serial run, a 1-worker pool and an N-worker pool all produce
identical rows for the same ``(d, n, root, fault_counts, trials, seed)``.
That holds because the random stream is defined *per trial*, not per
process: trial ``t`` of the row with fault count ``f`` always draws from

``numpy.random.default_rng(SeedSequence(seed, spawn_key=(f, t)))``

— the child that ``SeedSequence(seed).spawn(f + 1)[f].spawn(t + 1)[t]``
would produce, constructed directly — so neither the assignment of trials
to workers, the order in which shards finish, nor how trials are grouped
into bit-parallel measurement batches can change any sample.  Rows are
measured up to 64 trials per BFS sweep (:mod:`repro.graphs.msbfs`);
``batch=1`` falls back to the scalar per-trial path with, again, identical
results.
Keying the spawn tree by *fault count* rather than row position has a
second dividend: a row's stream is independent of which other rows are
swept, so ``fault_counts=(5,)`` alone reproduces the ``f=5`` row of a full
table exactly.  (All of this replaces the pre-engine scheme of one
generator threaded sequentially through every trial, which no parallel
execution could reproduce; the sequential scheme survives unchanged in
:meth:`FaultSweepRunner.run_row` for the frozen-reference comparisons.)

Long sweeps — ``B(4, 10)`` has ~10^6 processors — additionally get JSON
checkpointing: completed trials are flushed to disk every
``checkpoint_every`` results (and always on the way out, even through an
exception), and a rerun with the same ``(d, n, root, seed)`` resumes from
the file and returns rows identical to an uninterrupted run — even when the
rerun adds fault counts or grows the trial count, since every stream is
keyed by ``(seed, f, t)`` alone.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    CheckpointCorruptionError,
    CheckpointMismatchError,
    InvalidParameterError,
    UnknownTopologyError,
)
from ..graphs.msbfs import WORD_WIDTH
from ..obs import DEFAULT_REGISTRY
from ..topology import DEFAULT_TOPOLOGY, get_topology
from ..analysis.fault_simulation import (
    PAPER_FAULT_COUNTS,
    FaultSimulationRow,
    FaultSweepRunner,
)
from .executor import cached_executor

__all__ = [
    "ParallelSweepEngine",
    "SweepProgress",
    "trial_seed_sequences",
]

#: Process-wide sweep telemetry (counted in the orchestrating process, so
#: multiprocess shards report through their parent).
_SWEEP_TRIALS = DEFAULT_REGISTRY.counter(
    "repro_sweep_trials_total",
    "Fault-sweep trials measured",
    labelnames=("topology",),
)

#: Target shards per worker per row: small enough to amortise dispatch,
#: large enough that a slow shard cannot leave the pool idle for long.
_SHARDS_PER_WORKER = 4


def trial_seed_sequences(
    seed: int, fault_counts: Sequence[int], trials: int
) -> list[list[np.random.SeedSequence]]:
    """The canonical per-trial seed tree: ``seeds[row][trial]``.

    Trial ``t`` of the row with fault count ``f`` gets the spawn-tree child
    ``SeedSequence(seed, spawn_key=(f, t))`` — exactly the grandchild that
    ``SeedSequence(seed).spawn(...)`` indexing by ``f`` then ``t`` yields,
    constructed directly.  Every execution mode derives its generators from
    this same tree, which is what makes worker count irrelevant to the
    results; keying by ``f`` makes each row's stream independent of which
    other rows are swept.
    """
    return [
        [np.random.SeedSequence(seed, spawn_key=(int(f), t)) for t in range(trials)]
        for f in fault_counts
    ]


@dataclass(frozen=True)
class SweepProgress:
    """Progress snapshot handed to the engine's callback after each batch.

    The telemetry fields (defaulted, so pre-observability constructors keep
    working) describe *this run*: resumed trials from a checkpoint count
    toward ``done_trials`` but not toward the throughput estimate.
    """

    done_trials: int
    total_trials: int
    f: int  # fault count of the batch that just completed
    elapsed_s: float = 0.0  # wall time since run() started executing
    trials_per_s: float = 0.0  # throughput over trials measured this run
    eta_s: float = 0.0  # projected seconds until the sweep completes
    checkpoint_lag: int = 0  # trials completed but not yet flushed to disk
    workers: int = 1  # processes measuring (1 = inline)

    @property
    def fraction(self) -> float:
        return self.done_trials / self.total_trials if self.total_trials else 1.0


def _run_shard(
    payload: tuple,
) -> tuple[int, list[tuple[int, int, int]]]:
    """Worker entry point: run one shard of trials for one fault count.

    ``payload`` is ``(topology, d, n, root, f, items, batch)`` with
    ``items`` a list of ``(trial_index, SeedSequence)`` pairs.  The
    per-process executor is shared across shards via the bounded executor
    cache, so backend tables are built once per worker regardless of shard
    count; the batch-vs-scalar dispatch lives in
    :meth:`~repro.engine.executor.KernelExecutor.measure_chunk`.
    """
    topology, d, n, root, f, items, batch = payload
    executor = cached_executor(d, n, root, topology)
    return f, executor.measure_chunk(f, items, batch)


class _Checkpoint:
    """Atomic JSON checkpoint of a sweep's completed trials.

    Entries are keyed ``completed[f][trial]`` — by fault count, matching the
    seed tree — so a checkpoint remains valid when the swept fault counts
    *or* the trial count change: every trial stream depends only on
    ``(seed, f, t)``, so shared ``(f, t)`` pairs are reused and only the
    missing ones are computed.  The header ``(topology, d, n, root, seed)``
    — everything the trial streams and the measured graph depend on — *is*
    validated on load; a mismatch raises
    :class:`~repro.exceptions.CheckpointMismatchError` instead of silently
    aggregating rows of a different table.  (The swept fault counts and the
    trial count are recorded for provenance only — see above.)  Files
    written before the topology registry carry no ``topology`` field and are
    read as ``debruijn``, the only backend that existed then, so old
    checkpoints keep resuming.
    """

    VERSION = 1

    def __init__(self, path: str, header: dict, info: dict | None = None) -> None:
        self.path = path
        self.header = header
        #: written for provenance, never validated (see the class docstring)
        self.info = info or {}

    def load_completed(self) -> dict[tuple[int, int], tuple[int, int]]:
        """Return ``(f, trial) -> (size, ecc)`` from disk, validating the header.

        An unparseable or structurally broken file (truncated write, disk
        corruption, concurrent scribbling) raises
        :class:`~repro.exceptions.CheckpointCorruptionError` naming the path
        and the ``--fresh`` escape hatch, instead of surfacing a raw
        ``JSONDecodeError`` stack.
        """
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointCorruptionError(self.path, f"not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CheckpointCorruptionError(
                self.path, f"expected a JSON object, found {type(data).__name__}"
            )
        # pre-registry checkpoints (PR 3 format) predate the topology field
        # and were all De Bruijn sweeps
        stored = {"topology": data.get("topology", DEFAULT_TOPOLOGY)}
        stored.update({k: data.get(k) for k in self.header if k != "topology"})
        if stored != self.header:
            raise CheckpointMismatchError(self.path, stored, self.header)
        completed: dict[tuple[int, int], tuple[int, int]] = {}
        try:
            for f_key, trials in data.get("completed", {}).items():
                for trial_key, (size, ecc) in trials.items():
                    completed[(int(f_key), int(trial_key))] = (int(size), int(ecc))
        except (AttributeError, TypeError, ValueError) as exc:
            raise CheckpointCorruptionError(
                self.path, f"malformed completed-trials table: {exc}"
            ) from exc
        return completed

    def save(self, completed: dict[tuple[int, int], tuple[int, int]]) -> None:
        """Write the checkpoint atomically (tmp file + rename)."""
        nested: dict[str, dict[str, list[int]]] = {}
        for (f, t), (size, ecc) in completed.items():
            nested.setdefault(str(f), {})[str(t)] = [size, ecc]
        data = dict(self.header)
        data.update(self.info)
        data["version"] = self.VERSION
        data["completed"] = nested
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(data, fh)
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


class ParallelSweepEngine:
    """Sharded, checkpointed executor for random-fault table sweeps.

    Parameters
    ----------
    d, n:
        Parameters of the swept graph, interpreted by the topology backend
        (``B(d, n)`` for the default ``debruijn``; the hypercube reads the
        dimension from ``n`` and requires ``d = 2``).
    root:
        Optional measurement root word (default: the backend's analog of
        the paper's ``0...01``).
    workers:
        ``None``, ``0`` or ``1`` runs inline in this process; ``N > 1``
        dispatches shards to a :class:`~concurrent.futures.ProcessPoolExecutor`
        of ``N`` processes.  The results are identical either way.
    checkpoint_path:
        Optional JSON file for checkpoint/resume.  Completed trials are
        flushed every ``checkpoint_every`` results and on every exit path;
        a rerun with the same ``(d, n, root, seed)`` resumes from the file —
        including reruns that add fault counts or grow the trial count,
        which recompute only the missing ``(f, trial)`` pairs.
    checkpoint_every:
        Flush cadence, in completed trials (only meaningful with a
        checkpoint path).
    progress:
        Optional callable receiving a :class:`SweepProgress` after every
        completed trial (serial) or shard (parallel).
    runner:
        Optional pre-built :class:`FaultSweepRunner` to reuse for inline
        execution (worker processes always use the shared runner cache).
    batch:
        Trials measured per bit-parallel kernel call (1..64, default 64):
        each call packs up to ``batch`` trials of one row into uint64 lanes
        and sweeps them with a single multi-trial BFS
        (:mod:`repro.graphs.msbfs`).  ``batch=1`` is the scalar escape
        hatch.  Results are bit-for-bit identical for every setting — only
        the wall-clock changes.
    topology:
        Registry key of the swept network (default ``"debruijn"`` — the
        compatibility anchor whose rows are bit-for-bit the pre-registry
        engine's).  Any key of :mod:`repro.topology` works: the per-trial
        seed streams, sharding, batching and checkpointing are identical
        machinery for every backend; checkpoints are keyed by the topology
        name.  When a pre-built ``runner`` is supplied its backend wins —
        measurement, the reference column and the checkpoint header all come
        from the same instance, and the runner must agree with the engine's
        ``(d, n, root)`` and any explicit ``topology`` key (a mismatch would
        make serial and multiprocess rows diverge, since workers rebuild
        their runner from the engine's arguments).  A runner built on an
        *unregistered* custom :class:`~repro.topology.base.Topology` works
        inline; only the multiprocess path requires a registered key.
    """

    def __init__(
        self,
        d: int,
        n: int,
        root: Sequence[int] | None = None,
        workers: int | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 64,
        progress: Callable[[SweepProgress], None] | None = None,
        runner: FaultSweepRunner | None = None,
        batch: int = WORD_WIDTH,
        topology: str | None = None,
    ) -> None:
        self.d, self.n = int(d), int(n)
        self.root = None if root is None else tuple(int(x) for x in root)
        if runner is not None:
            # the runner measures, so its backend is authoritative for the
            # reference column and the checkpoint header — but it must agree
            # with the engine's own arguments, which are what worker
            # processes rebuild their runner from
            if topology is not None and str(topology) != runner.topology_key:
                raise InvalidParameterError(
                    f"topology {topology!r} conflicts with the supplied "
                    f"runner's backend {runner.topology_key!r}"
                )
            if (runner.d, runner.n) != (self.d, self.n):
                raise InvalidParameterError(
                    f"runner measures ({runner.d}, {runner.n}) but the engine "
                    f"was constructed for ({self.d}, {self.n})"
                )
            if self.root is not None and self.root != runner.root:
                raise InvalidParameterError(
                    f"root {self.root} conflicts with the supplied runner's "
                    f"root {runner.root}"
                )
            self._topology = runner.topology
        else:
            # resolve eagerly: validates the key and the (d, n)
            # interpretation, and provides the reference column for
            # aggregation (tables stay lazy, so this is cheap even in the
            # multiprocess parent)
            self._topology = get_topology(
                DEFAULT_TOPOLOGY if topology is None else topology, self.d, self.n
            )
        self.topology = self._topology.key
        if workers is not None and workers < 0:
            raise InvalidParameterError(f"workers must be >= 0, got {workers}")
        if checkpoint_every < 1:
            raise InvalidParameterError("checkpoint_every must be >= 1")
        if not 1 <= batch <= WORD_WIDTH:
            raise InvalidParameterError(
                f"batch must be in 1..{WORD_WIDTH} (the kernel word width), got {batch}"
            )
        self.workers = int(workers) if workers else 0
        self.checkpoint_path = None if checkpoint_path is None else os.fspath(checkpoint_path)
        self.checkpoint_every = int(checkpoint_every)
        self.progress = progress
        self._runner = runner
        self.batch = int(batch)
        self._obs_trials = _SWEEP_TRIALS.labels(self.topology)
        self._run_started = 0.0
        self._run_initial_done = 0

    # -- public entry point ---------------------------------------------------
    def run(
        self,
        fault_counts: Iterable[int] = PAPER_FAULT_COUNTS,
        trials: int = 200,
        seed: int = 0,
        resume: bool = True,
    ) -> list[FaultSimulationRow]:
        """Run (or resume) the sweep and return one row per fault count."""
        rows = [int(f) for f in fault_counts]
        if not rows:
            return []
        if any(f < 0 for f in rows):
            raise InvalidParameterError("fault counts must be >= 0")
        if trials < 1:
            raise InvalidParameterError("at least one trial is required")

        checkpoint = self._checkpoint(rows, trials, seed)
        completed: dict[tuple[int, int], tuple[int, int]] = {}
        if checkpoint is not None and resume:
            completed = checkpoint.load_completed()

        unique_fs = list(dict.fromkeys(rows))
        seeds = dict(zip(unique_fs, trial_seed_sequences(seed, unique_fs, trials)))
        pending = [
            (f, t)
            for f in unique_fs
            for t in range(trials)
            if (f, t) not in completed
        ]
        total = len(unique_fs) * trials

        if pending:
            self._run_started = time.perf_counter()
            self._run_initial_done = total - len(pending)
            try:
                if self.workers > 1:
                    self._run_parallel(seeds, pending, completed, total, checkpoint)
                else:
                    self._run_serial(seeds, pending, completed, total, checkpoint)
            finally:
                # Flush whatever finished, even on the way out through an
                # exception/interrupt — that is what makes resume exact.
                if checkpoint is not None:
                    checkpoint.save(completed)

        return self._aggregate(rows, trials, completed)

    # -- execution modes ------------------------------------------------------
    def _run_serial(
        self,
        seeds: dict[int, list[np.random.SeedSequence]],
        pending: list[tuple[int, int]],
        completed: dict[tuple[int, int], tuple[int, int]],
        total: int,
        checkpoint: _Checkpoint | None,
    ) -> None:
        if self._runner is not None:
            executor = self._runner.executor
        else:
            executor = cached_executor(self.d, self.n, self.root, self.topology)
        by_f: dict[int, list[int]] = {}
        for f, t in pending:
            by_f.setdefault(f, []).append(t)
        done = total - len(pending)
        since_flush = 0
        for f, ts in by_f.items():
            for start in range(0, len(ts), self.batch):
                items = [(t, seeds[f][t]) for t in ts[start : start + self.batch]]
                results = executor.measure_chunk(f, items, self.batch)
                for t, size, ecc in results:
                    completed[(f, t)] = (size, ecc)
                self._obs_trials.inc(len(results))
                since_flush += len(results)
                if checkpoint is not None and since_flush >= self.checkpoint_every:
                    checkpoint.save(completed)
                    since_flush = 0
                # one callback per trial, as in the scalar engine, so
                # progress consumers see the same cadence at any batch size
                for _ in results:
                    done += 1
                    self._report(done, total, f, lag=since_flush)

    def _run_parallel(
        self,
        seeds: dict[int, list[np.random.SeedSequence]],
        pending: list[tuple[int, int]],
        completed: dict[tuple[int, int], tuple[int, int]],
        total: int,
        checkpoint: _Checkpoint | None,
    ) -> None:
        # workers rebuild the backend from its registry key, so the swept
        # topology must resolve to the very backend measuring here — fail
        # with a clear message instead of diverging inside the pool
        try:
            registered = get_topology(self.topology, self.d, self.n)
        except UnknownTopologyError:
            registered = None
        if registered is None or type(registered) is not type(self._topology):
            raise InvalidParameterError(
                f"topology {type(self._topology).__name__} is not the "
                f"registered backend for key {self.topology!r}; register it "
                f"(repro.topology.register_topology) or run with workers=None"
            )
        by_f: dict[int, list[int]] = {}
        for f, t in pending:
            by_f.setdefault(f, []).append(t)
        shards = []
        for f, ts in by_f.items():
            shard_size = max(1, math.ceil(len(ts) / (self.workers * _SHARDS_PER_WORKER)))
            if self.batch > 1:
                # align shards to batch boundaries so the kernel runs full
                # 64-trial words wherever possible
                shard_size = math.ceil(shard_size / self.batch) * self.batch
            for start in range(0, len(ts), shard_size):
                items = [(t, seeds[f][t]) for t in ts[start : start + shard_size]]
                shards.append(
                    (self.topology, self.d, self.n, self.root, f, items, self.batch)
                )

        done = total - len(pending)
        since_flush = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(_run_shard, shard) for shard in shards}
            while futures:
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    f, results = future.result()
                    for t, size, ecc in results:
                        completed[(f, t)] = (size, ecc)
                    self._obs_trials.inc(len(results))
                    done += len(results)
                    since_flush += len(results)
                    if checkpoint is not None and since_flush >= self.checkpoint_every:
                        checkpoint.save(completed)
                        since_flush = 0
                    self._report(done, total, f, lag=since_flush)

    # -- helpers --------------------------------------------------------------
    def _checkpoint(self, rows: Sequence[int], trials: int, seed: int) -> _Checkpoint | None:
        if self.checkpoint_path is None:
            return None
        # The header pins everything the trial streams depend on.  The swept
        # fault counts and the trial count are deliberately NOT validated:
        # every stream is keyed by (seed, f, t) alone, so a checkpoint stays
        # reusable when rows are added or the trial count grows.
        header = {
            "topology": self.topology,
            "d": self.d,
            "n": self.n,
            "root": None if self.root is None else list(self.root),
            "seed": int(seed),
        }
        info = {"trials": int(trials), "fault_counts": list(rows)}
        return _Checkpoint(self.checkpoint_path, header, info)

    def _report(self, done: int, total: int, f: int, lag: int = 0) -> None:
        if self.progress is None:
            return
        elapsed = time.perf_counter() - self._run_started
        measured = done - self._run_initial_done
        rate = measured / elapsed if elapsed > 0 else 0.0
        self.progress(
            SweepProgress(
                done_trials=done,
                total_trials=total,
                f=f,
                elapsed_s=elapsed,
                trials_per_s=rate,
                eta_s=(total - done) / rate if rate > 0 else 0.0,
                checkpoint_lag=lag if self.checkpoint_path is not None else 0,
                workers=self.workers if self.workers > 1 else 1,
            )
        )

    def _aggregate(
        self,
        rows: Sequence[int],
        trials: int,
        completed: dict[tuple[int, int], tuple[int, int]],
    ) -> list[FaultSimulationRow]:
        out: list[FaultSimulationRow] = []
        for f in rows:
            sizes = np.empty(trials, dtype=np.int64)
            eccs = np.empty(trials, dtype=np.int64)
            for t in range(trials):
                sizes[t], eccs[t] = completed[(f, t)]
            out.append(
                FaultSimulationRow.from_samples(
                    self.d, self.n, f, sizes, eccs,
                    reference_size=self._topology.reference_size(f),
                )
            )
        return out
