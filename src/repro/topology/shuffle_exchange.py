"""The shuffle-exchange backend — the De Bruijn graph's undirected sibling.

The ``d``-ary shuffle-exchange graph shares the De Bruijn node set (all
``d**n`` words, coded by the same integer codec) and its necklace structure:
the *shuffle* edges are the rotation edges ``x -- pi(x)`` and the *exchange*
edges flip the last digit.  Behind the topology protocol its gather table has
``d + 1`` columns — rotate-left, rotate-right and the ``d - 1`` exchanges —
with self-entries where a constant word shuffles to itself (inert padding
under BFS).

Fault units are single nodes: unlike the De Bruijn FFC setting, the
shuffle-exchange fault model of the cited literature ([Lei83], [LMR88])
removes processors individually, so a fault kills exactly its own node.
"""

from __future__ import annotations

import numpy as np

from ..words.codec import get_codec
from .base import CodecNodesMixin, Topology

__all__ = ["ShuffleExchangeTopology"]


class ShuffleExchangeTopology(CodecNodesMixin, Topology):
    """The ``d``-ary shuffle-exchange graph behind the topology protocol.

    Node coding comes from :class:`~repro.topology.base.CodecNodesMixin`
    (the shared De Bruijn word codec — same node set, same integers).
    """

    key = "shuffle_exchange"
    symbol = "SE"
    directed = False
    max_fault_unit_size = 1

    def __init__(self, d: int, n: int) -> None:
        super().__init__()
        self.codec = get_codec(d, n)
        self.d, self.n = self.codec.d, self.codec.n
        self.num_nodes = self.codec.size

    # -- gather table: shuffle, unshuffle, exchanges ---------------------------
    def _build_successor_table(self) -> np.ndarray:
        codec = self.codec
        codes = np.arange(self.num_nodes, dtype=np.int64)
        last = codes % self.d
        shuffle = codec.rotate1.astype(np.int64)  # x -> pi(x)
        unshuffle = codes // self.d + last * codec.high  # x -> pi^{-1}(x)
        columns = [shuffle, unshuffle]
        js = np.arange(self.d - 1, dtype=np.int64)[None, :]
        letters = js + (js >= last[:, None])
        exchanges = codes[:, None] - last[:, None] + letters
        columns.extend(exchanges[:, j] for j in range(self.d - 1))
        return np.stack(columns, axis=1)

    def _build_predecessor_table(self) -> np.ndarray:
        return self.successor_table  # undirected: in-neighbours = out-neighbours

    # -- measurement conventions ----------------------------------------------
    @property
    def default_root_code(self) -> int:
        """The word ``0...01`` (code 1), as in the De Bruijn tables."""
        return 1
