"""De Bruijn topology backends — the compatibility anchor of the registry.

:class:`DeBruijnTopology` wraps the integer-word codec
(:mod:`repro.words.codec`) behind the :class:`~repro.topology.base.Topology`
protocol without changing a single table: the successor/predecessor matrices,
the contiguous predecessor columns and the necklace machinery *are* the
codec's cached arrays, so a topology-generic sweep over the ``debruijn``
backend performs bit-for-bit the operations the pre-registry
``FaultSweepRunner`` performed — Tables 2.1/2.2 cannot move.

:class:`UndirectedDeBruijnTopology` is ``UB(d, n)`` (Section 1.2): the same
node coding, one symmetric gather table (successors and predecessors
concatenated — loops and merged parallels survive as inert self/duplicate
entries), and the same necklace fault units as its directed sibling.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.ffc import guaranteed_cycle_length
from ..exceptions import FaultBudgetExceededError, InvalidParameterError
from ..words.codec import WordCodec, get_codec
from .base import CodecNodesMixin, Topology

__all__ = ["DeBruijnTopology", "UndirectedDeBruijnTopology"]


class _CodecBackedMixin(CodecNodesMixin):
    """Codec node coding + necklace fault units (shared B/UB behaviour)."""

    codec: WordCodec

    def fault_unit_mask(self, fault_codes: np.ndarray | Sequence[int]) -> np.ndarray:
        return self.codec.faulty_necklace_mask(fault_codes)

    def fault_unit_members(self, codes: np.ndarray) -> np.ndarray:
        return self.codec.necklace_member_matrix(codes)

    def fault_unit_reps(self, codes: np.ndarray | Sequence[int]) -> list[int]:
        arr = np.asarray(codes, dtype=np.int64).reshape(-1)
        if arr.size and (arr.min() < 0 or arr.max() >= self.codec.size):
            raise InvalidParameterError("fault code outside node range")
        return sorted({int(r) for r in self.codec.rep[arr].tolist()})

    @property
    def default_root_code(self) -> int:
        """The paper's ``R = 0...01``: code 1."""
        return 1


class DeBruijnTopology(_CodecBackedMixin, Topology):
    """``B(d, n)`` behind the topology protocol (the paper's graph)."""

    key = "debruijn"
    symbol = "B"
    directed = True

    def __init__(self, d: int, n: int) -> None:
        super().__init__()
        self.codec = get_codec(d, n)
        self.d, self.n = self.codec.d, self.codec.n
        self.num_nodes = self.codec.size
        self.max_fault_unit_size = self.n

    # gather tables are the codec's cached matrices ----------------------------
    def _build_successor_table(self) -> np.ndarray:
        return self.codec.successor_table

    def _build_predecessor_table(self) -> np.ndarray:
        return self.codec.predecessor_table

    @property
    def predecessor_columns(self) -> tuple[np.ndarray, ...]:
        # reuse the codec's cached contiguous columns (shared with every
        # other consumer of this (d, n)) instead of slicing fresh copies
        return self.codec.predecessor_columns

    @property
    def neighbour_table(self) -> np.ndarray:
        return self.codec.neighbour_table

    def guarantee_bound(self, f: int) -> int | None:
        """Propositions 2.2/2.3, ``None`` outside the guaranteed regimes."""
        try:
            return guaranteed_cycle_length(self.d, self.n, int(f))
        except (FaultBudgetExceededError, InvalidParameterError):
            return None

    @property
    def reference_label(self) -> str:
        return "d^n - nf"  # the paper's own column header


class UndirectedDeBruijnTopology(_CodecBackedMixin, Topology):
    """``UB(d, n)``: orientation forgotten, same nodes, same necklace units.

    The gather table is the ``(d**n, 2d)`` successor/predecessor
    concatenation: deleted loops survive as self-entries and merged parallel
    edges as duplicate entries, both inert under BFS, so no explicit
    loop/parallel cleanup is needed for sweeps.
    """

    key = "undirected_debruijn"
    symbol = "UB"
    directed = False

    def __init__(self, d: int, n: int) -> None:
        super().__init__()
        self.codec = get_codec(d, n)
        self.d, self.n = self.codec.d, self.codec.n
        self.num_nodes = self.codec.size
        self.max_fault_unit_size = self.n

    def _build_successor_table(self) -> np.ndarray:
        return self.codec.neighbour_table

    def _build_predecessor_table(self) -> np.ndarray:
        return self.codec.neighbour_table
