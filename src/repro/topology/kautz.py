"""The Kautz backend ``K(d, n)`` — the paper's Chapter 5 extension target.

``K(d, n)`` has as nodes the length-``n`` words over a ``(d+1)``-letter
alphabet whose consecutive digits differ, and edges ``x_1...x_n ->
x_2...x_n a`` for ``a != x_n``; it is ``d``-in/``d``-out regular with
``(d+1) d**(n-1)`` nodes.  The codes here are *compact*: the valid words,
ascending by their base-``(d+1)`` value, are numbered ``0 .. num_nodes - 1``
(a dense ``(d+1)**n`` lookup maps full values to compact codes, which is
fine at the studied sizes).

**Fault units are rotation orbits**, the Kautz analog of the paper's
necklaces.  A Kautz word is *cyclic* when its first and last digits differ;
rotating a cyclic word drops no adjacent pair other than the wrap, so every
rotation of a cyclic word is again a Kautz word and cyclic, and the orbit is
a full necklace of up to ``n`` words.  A word with ``x_1 == x_n`` has no
valid non-trivial rotation, so its orbit is the singleton ``{x}``.  Removing
whole orbits therefore removes at most ``n`` nodes per fault — the same
``num_nodes - n*f`` reference shape as the De Bruijn tables.

The default measurement root is the alternating word ``0101...`` — the
natural stand-in for ``0...01``, which is not a Kautz word (its leading
zeros repeat).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_alphabet
from .base import Topology

__all__ = ["KautzTopology"]


class KautzTopology(Topology):
    """``K(d, n)`` behind the topology protocol (rotation-orbit fault units)."""

    key = "kautz"
    symbol = "K"
    directed = True

    def __init__(self, d: int, n: int) -> None:
        super().__init__()
        self.d = validate_alphabet(int(d) + 1) - 1  # alphabet has d+1 letters
        if self.d < 1:
            raise InvalidParameterError("Kautz graphs require degree d >= 1")
        if n < 1:
            raise InvalidParameterError(f"word length must be >= 1, got {n}")
        self.n = int(n)
        self.q = self.d + 1  # alphabet size
        self.num_nodes = self.q * self.d ** (self.n - 1)
        self.max_fault_unit_size = self.n
        self._high = self.q ** (self.n - 1)  # place value of the leading digit
        self._full_codes: np.ndarray | None = None  # base-q values, ascending
        self._index_of: np.ndarray | None = None  # full value -> compact code
        self._unit_members: np.ndarray | None = None  # (n, num_nodes)
        self._rep: np.ndarray | None = None  # orbit representative table

    # -- enumeration (lazy) ----------------------------------------------------
    def _codes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(full_codes, index_of)``: the compact <-> base-``q`` coding maps.

        Lock-guarded like every lazy table build (REP003): registry-cached
        backends are shared across server threads, and ``_full_codes`` /
        ``_index_of`` must never be observed half-assigned.  The base
        class's ``_tables_lock`` is an RLock, so the gather-table builders
        (which call back into this method) can nest the acquisition.
        """
        if self._full_codes is None:
            with self._tables_lock:
                if self._full_codes is None:
                    q, n = self.q, self.n
                    values = np.arange(q**n, dtype=np.int64)
                    valid = np.ones(values.shape, dtype=bool)
                    for i in range(n - 1):
                        left = (values // q ** (n - 1 - i)) % q
                        right = (values // q ** (n - 2 - i)) % q
                        valid &= left != right
                    full = values[valid]
                    if len(full) != self.num_nodes:  # pragma: no cover
                        raise InvalidParameterError(
                            "Kautz enumeration does not match the census"
                        )
                    index_of = np.full(q**n, -1, dtype=np.int64)
                    index_of[full] = np.arange(len(full), dtype=np.int64)
                    self._index_of = index_of
                    self._full_codes = full
        return self._full_codes, self._index_of

    # -- node coding -----------------------------------------------------------
    def is_node(self, word: Sequence[int]) -> bool:
        w = tuple(int(x) for x in word)
        if len(w) != self.n or any(not 0 <= x < self.q for x in w):
            return False
        return all(a != b for a, b in zip(w, w[1:]))

    def encode(self, node: Sequence[int] | int) -> int:
        if isinstance(node, (int, np.integer)):
            return self._check_code(node)
        w = tuple(int(x) for x in node)
        if not self.is_node(w):
            raise InvalidParameterError(f"{w} is not a node of K({self.d},{self.n})")
        full = 0
        for digit in w:
            full = full * self.q + digit
        _, index_of = self._codes()
        return int(index_of[full])

    def decode(self, code: int) -> Word:
        full_codes, _ = self._codes()
        value = int(full_codes[self._check_code(code)])
        digits = []
        for _ in range(self.n):
            value, digit = divmod(value, self.q)
            digits.append(digit)
        return tuple(reversed(digits))

    # -- gather tables ---------------------------------------------------------
    def _neighbour_columns(self, out: bool) -> np.ndarray:
        """The ``(num_nodes, d)`` successor (``out``) or predecessor table.

        Successor ``j`` of ``x`` appends the ``j``-th letter distinct from
        ``x_n`` (ascending); predecessor ``j`` prepends the ``j``-th letter
        distinct from ``x_1``.  Both land on valid Kautz words, so the
        compact lookup never misses.
        """
        full, index_of = self._codes()
        js = np.arange(self.d, dtype=np.int64)[None, :]
        if out:
            skipped = (full % self.q)[:, None]  # last digit
            letters = js + (js >= skipped)
            targets = (full % self._high)[:, None] * self.q + letters
        else:
            skipped = (full // self._high)[:, None]  # first digit
            letters = js + (js >= skipped)
            targets = letters * self._high + (full // self.q)[:, None]
        return index_of[targets]

    def _build_successor_table(self) -> np.ndarray:
        return self._neighbour_columns(out=True)

    def _build_predecessor_table(self) -> np.ndarray:
        return self._neighbour_columns(out=False)

    # -- rotation-orbit fault units --------------------------------------------
    def _orbit_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """``(members, rep)``: per-node orbit members and representatives.

        ``members[i, x]`` is the compact code of ``rot^i(x)`` for cyclic
        words (first digit != last digit) and ``x`` itself otherwise;
        ``rep[x]`` is the smallest compact code in the orbit of ``x``.
        """
        if self._unit_members is None:
            with self._tables_lock:
                if self._unit_members is None:
                    full, index_of = self._codes()
                    cyclic = (full // self._high) != (full % self.q)
                    members_full = np.empty((self.n, len(full)), dtype=np.int64)
                    members_full[0] = full
                    for i in range(1, self.n):
                        rotated = (members_full[i - 1] % self._high) * self.q + (
                            members_full[i - 1] // self._high
                        )
                        # rotations of cyclic words stay cyclic (hence valid
                        # nodes); non-cyclic words are singleton orbits
                        members_full[i] = np.where(cyclic, rotated, full)
                    members = index_of[members_full]
                    rep = members.min(axis=0)
                    members.flags.writeable = False
                    rep.flags.writeable = False
                    self._rep = rep
                    self._unit_members = members
        return self._unit_members, self._rep

    def fault_unit_mask(self, fault_codes: np.ndarray | Sequence[int]) -> np.ndarray:
        codes = np.asarray(fault_codes, dtype=np.int64).reshape(-1)
        if codes.size == 0:
            return np.zeros(self.num_nodes, dtype=bool)
        if codes.min() < 0 or codes.max() >= self.num_nodes:
            raise InvalidParameterError("fault code outside node range")
        members, rep = self._orbit_tables()
        return np.isin(rep, rep[codes])

    def fault_unit_members(self, codes: np.ndarray) -> np.ndarray:
        members, _ = self._orbit_tables()
        return members[:, np.asarray(codes, dtype=np.int64)]

    def fault_unit_reps(self, codes: np.ndarray | Sequence[int]) -> list[int]:
        arr = np.asarray(codes, dtype=np.int64).reshape(-1)
        if arr.size and (arr.min() < 0 or arr.max() >= self.num_nodes):
            raise InvalidParameterError("fault code outside node range")
        _, rep = self._orbit_tables()
        return sorted({int(r) for r in rep[arr].tolist()})

    # -- measurement conventions ----------------------------------------------
    @property
    def default_root_code(self) -> int:
        """The alternating word ``0101...`` (the Kautz stand-in for ``0...01``)."""
        return self.encode(tuple(i % 2 for i in range(self.n)))
