"""The hypercube backend ``Q(n)`` — Chapter 2's comparison baseline, live.

The introduction to Chapter 2 compares De Bruijn fault tolerance against the
known hypercube results of [WC92, CL91a] as a *static* table.  This backend
puts the ``2**n``-node binary hypercube behind the topology protocol so the
same sweep kernel that produces Tables 2.1/2.2 measures the hypercube too:
node codes are the bitstrings themselves, the ``n`` gather columns are the
XOR neighbours ``x ^ 2**i``, fault units are single nodes (hypercube fault
models kill processors, not necklaces — there is no rotation structure to
close over), and the guarantee bound is [WC92]'s ``2**n - 2f`` for
``f <= n - 2``.

The default measurement root is node ``1`` — the bitstring ``0...01``,
literally the paper's De Bruijn root ``R``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.hypercube import fault_free_cycle_bound
from ..words.alphabet import Word
from .base import Topology

__all__ = ["HypercubeTopology"]


class HypercubeTopology(Topology):
    """``Q(n)``: the binary ``n``-cube behind the topology protocol.

    The registry's uniform ``(d, n)`` parameterisation is interpreted as
    ``d = 2`` (the binary alphabet of the bitstring words; only 2 is
    accepted) and ``n`` = dimension.
    """

    key = "hypercube"
    symbol = "Q"
    directed = False
    max_fault_unit_size = 1

    @property
    def name(self) -> str:
        return f"Q({self.n})"  # conventional: the dimension alone

    def __init__(self, d: int, n: int) -> None:
        super().__init__()
        if int(d) != 2:
            raise InvalidParameterError(
                f"the hypercube backend is binary: expected d=2, got d={d}"
            )
        if n < 1:
            raise InvalidParameterError(f"hypercube dimension must be >= 1, got {n}")
        self.d = 2
        self.n = int(n)
        self.num_nodes = 2**self.n

    # -- node coding: codes ARE the bitstrings ---------------------------------
    def encode(self, node: Sequence[int] | int) -> int:
        if isinstance(node, (int, np.integer)):
            return self._check_code(node)
        bits = tuple(int(x) for x in node)
        if len(bits) != self.n or any(b not in (0, 1) for b in bits):
            raise InvalidParameterError(
                f"{bits} is not a length-{self.n} bitstring of Q({self.n})"
            )
        value = 0
        for b in bits:
            value = value * 2 + b
        return value

    def decode(self, code: int) -> Word:
        code = self._check_code(code)
        return tuple((code >> (self.n - 1 - i)) & 1 for i in range(self.n))

    # -- gather tables: one XOR column per dimension ---------------------------
    def _build_successor_table(self) -> np.ndarray:
        codes = np.arange(self.num_nodes, dtype=np.int64)
        return codes[:, None] ^ (np.int64(1) << np.arange(self.n, dtype=np.int64))[None, :]

    def _build_predecessor_table(self) -> np.ndarray:
        return self.successor_table  # undirected: in-neighbours = out-neighbours

    # -- measurement conventions ----------------------------------------------
    @property
    def default_root_code(self) -> int:
        """The bitstring ``0...01`` — the paper's root, verbatim."""
        return 1

    def guarantee_bound(self, f: int) -> int | None:
        """[WC92]: a fault-free cycle of ``2**n - 2f`` exists for ``f <= n-2``."""
        try:
            return fault_free_cycle_bound(self.n, int(f))
        except InvalidParameterError:
            return None
