"""The ``Topology`` protocol: what a network must provide to be swept/served.

Everything the fault-sweep machinery of Chapter 2 actually *uses* from the
De Bruijn graph is a small, table-shaped surface: an integer coding of the
nodes, gather tables for BFS frontiers, a rule mapping faulty processors to
the removed node set (the paper removes whole necklaces), a measurement
root, a fallback rule when that root dies, and the analytic reference
column.  :class:`Topology` names exactly that surface, so the bit-parallel
kernel (:mod:`repro.graphs.msbfs`), the scalar BFS
(:func:`repro.graphs.components.bfs_levels_table`), the sweep runner, the
parallel engine, the embedding service and the CLI can all be pointed at
any registered backend — De Bruijn, Kautz, hypercube, shuffle-exchange —
without knowing which one they are driving.

Conventions shared by every backend
-----------------------------------

* **Integer coding.**  Nodes are coded ``0 .. num_nodes - 1``, contiguously.
  ``encode``/``decode`` convert the human-readable form (tuple words for the
  word graphs, bitstring words for the hypercube) at the boundary.
* **Gather tables.**  ``successor_table[x]`` lists out-neighbours,
  ``predecessor_table[x]`` in-neighbours, ``neighbour_table[x]`` both (for
  undirected backends all three coincide).  Rows may pad irregular degrees
  with the node's own code: a self-entry gathers an already-visited node and
  is therefore inert under BFS.  ``predecessor_columns`` exposes the
  predecessor table as contiguous per-digit columns — the exact form the
  bit-parallel kernel gathers through (``Topology`` deliberately duck-types
  with :class:`~repro.words.codec.WordCodec` here: both expose ``size`` and
  ``predecessor_columns``).
* **Fault units.**  ``fault_unit_mask(codes)`` maps faulty processors to the
  removed node set: necklace orbits for the De Bruijn family (the paper's
  "a necklace is deemed faulty if it contains a faulty node"), single nodes
  for the hypercube and shuffle-exchange.  ``fault_unit_members`` is the
  scatter-friendly dual used to build bit-packed fault lanes, and
  ``fault_unit_reps`` the canonical per-unit representatives the embedding
  service keys its caches by.
* **Measurement.**  ``default_root_code`` is the backend's analog of the
  paper's ``R = 0...01``.  A sweep measures the out-BFS reach of the root
  and its eccentricity within it; for the De Bruijn graph (balanced residual
  digraph) and every undirected backend this *is* the component containing
  ``R``, exactly the Tables 2.1/2.2 quantity.
* **Reference column.** ``reference_size(f) = num_nodes -
  max_fault_unit_size * f`` generalises the paper's analytic ``d**n - n*f``
  column; ``guarantee_bound(f)`` is the worst-case fault-free ring bound
  where one is known (Proposition 2.2/2.3 for De Bruijn, [WC92] for the
  hypercube), ``None`` elsewhere.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word

__all__ = ["Topology", "CodecNodesMixin"]


class Topology(ABC):
    """Abstract interconnection-network backend (see the module docstring).

    Concrete backends set ``key`` (their registry name), ``d``/``n`` (the
    constructor parameters, with the backend's own interpretation) and
    ``num_nodes``, and implement the table builders.  Every table is built
    lazily and cached: constructing a ``Topology`` is cheap, so orchestration
    layers (the parallel engine's parent process, the checkpoint validator)
    can hold one without paying for ``O(num_nodes)`` table memory they never
    gather through.
    """

    #: Registry key of the backend (e.g. ``"kautz"``); set per subclass.
    key: str = ""
    #: Display symbol used by :attr:`name` (e.g. ``"K"`` -> ``K(2,10)``).
    symbol: str = ""
    #: True when edges are directed (out-BFS != BFS); set per subclass.
    directed: bool = True
    #: Largest number of nodes one faulty processor can remove (the unit
    #: size bound behind :meth:`reference_size`); 1 = single-node units.
    max_fault_unit_size: int = 1

    d: int
    n: int
    num_nodes: int

    def __init__(self) -> None:
        self._successor_table: np.ndarray | None = None
        self._predecessor_table: np.ndarray | None = None
        self._neighbour_table: np.ndarray | None = None
        self._predecessor_columns: tuple[np.ndarray, ...] | None = None
        # instances are shared process-wide (registry cache) and the server
        # may touch a cold backend from several threads at once: the lazy
        # table builds below are guarded so no reader ever sees a
        # half-built table
        self._tables_lock = threading.RLock()

    # -- identity --------------------------------------------------------------
    @property
    def size(self) -> int:
        """Alias of ``num_nodes`` (duck-typing with :class:`WordCodec`)."""
        return self.num_nodes

    @property
    def name(self) -> str:
        """Human-readable instance name, e.g. ``K(2,10)``."""
        return f"{self.symbol or self.key}({self.d},{self.n})"

    def describe(self) -> dict:
        """Provenance dict (topology key + parameters) for checkpoints/bench."""
        return {"topology": self.key, "d": self.d, "n": self.n}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(d={self.d}, n={self.n}, nodes={self.num_nodes})"

    # -- node coding -----------------------------------------------------------
    @abstractmethod
    def encode(self, node: Sequence[int] | int) -> int:
        """Code of a node given as a tuple word (or an already-valid code)."""

    @abstractmethod
    def decode(self, code: int) -> Word:
        """Tuple-word form of a node code (boundary use only)."""

    def _check_code(self, code: int) -> int:
        code = int(code)
        if not 0 <= code < self.num_nodes:
            raise InvalidParameterError(
                f"code {code} outside the {self.num_nodes} nodes of {self.name}"
            )
        return code

    # -- gather tables (lazy, cached) ------------------------------------------
    @abstractmethod
    def _build_successor_table(self) -> np.ndarray:
        """The ``(num_nodes, k_out)`` out-neighbour gather table."""

    @abstractmethod
    def _build_predecessor_table(self) -> np.ndarray:
        """The ``(num_nodes, k_in)`` in-neighbour gather table."""

    @property
    def successor_table(self) -> np.ndarray:
        if self._successor_table is None:
            with self._tables_lock:
                if self._successor_table is None:
                    table = np.ascontiguousarray(self._build_successor_table())
                    table.flags.writeable = False
                    self._successor_table = table
        return self._successor_table

    @property
    def predecessor_table(self) -> np.ndarray:
        if self._predecessor_table is None:
            with self._tables_lock:
                if self._predecessor_table is None:
                    table = np.ascontiguousarray(self._build_predecessor_table())
                    table.flags.writeable = False
                    self._predecessor_table = table
        return self._predecessor_table

    @property
    def neighbour_table(self) -> np.ndarray:
        """Orientation-ignoring gather table (weak connectivity / intact hops).

        Undirected backends return the successor table itself; directed ones
        the successor/predecessor concatenation.
        """
        if self._neighbour_table is None:
            with self._tables_lock:
                if self._neighbour_table is None:
                    if self.directed:
                        table = np.hstack(
                            [self.successor_table, self.predecessor_table]
                        )
                        table.flags.writeable = False
                        self._neighbour_table = table
                    else:
                        self._neighbour_table = self.successor_table
        return self._neighbour_table

    @property
    def predecessor_columns(self) -> tuple[np.ndarray, ...]:
        """Contiguous columns of the predecessor table (the kernel's gathers)."""
        if self._predecessor_columns is None:
            with self._tables_lock:
                if self._predecessor_columns is None:
                    pred = self.predecessor_table
                    cols = tuple(
                        np.ascontiguousarray(pred[:, a]) for a in range(pred.shape[1])
                    )
                    for col in cols:
                        col.flags.writeable = False
                    self._predecessor_columns = cols
        return self._predecessor_columns

    # -- fault units -----------------------------------------------------------
    def fault_unit_mask(self, fault_codes: np.ndarray | Sequence[int]) -> np.ndarray:
        """Boolean removed-node mask for a set of faulty processor codes.

        Default: single-node units — exactly the faulty nodes die.  Necklace
        backends override this with the representative-table ``isin``.
        """
        mask = np.zeros(self.num_nodes, dtype=bool)
        codes = np.asarray(fault_codes, dtype=np.int64).reshape(-1)
        if codes.size:
            if codes.min() < 0 or codes.max() >= self.num_nodes:
                raise InvalidParameterError("fault code outside node range")
            mask[codes] = True
        return mask

    def fault_unit_members(self, codes: np.ndarray) -> np.ndarray:
        """All nodes removed by each faulty code: shape ``(k,) + codes.shape``.

        The scatter-friendly dual of :meth:`fault_unit_mask`, used to build
        the bit-packed fault lanes (padding with repeats is harmless there).
        Default: single-node units — the code itself.
        """
        return np.asarray(codes, dtype=np.int64)[None, ...]

    def fault_unit_reps(self, codes: np.ndarray | Sequence[int]) -> list[int]:
        """Sorted canonical representatives of the faulty units (cache keys)."""
        arr = np.asarray(codes, dtype=np.int64).reshape(-1)
        return sorted({self._check_code(c) for c in arr.tolist()})

    # -- measurement conventions ----------------------------------------------
    @property
    @abstractmethod
    def default_root_code(self) -> int:
        """The backend's analog of the paper's measurement root ``R = 0...01``."""

    def reference_size(self, f: int) -> int:
        """The analytic reference column: ``num_nodes - max_fault_unit_size * f``.

        Generalises the paper's ``d**n - n*f`` (each faulty processor kills
        at most one necklace of at most ``n`` nodes).
        """
        return self.num_nodes - self.max_fault_unit_size * int(f)

    @property
    def reference_label(self) -> str:
        """Column header for :meth:`reference_size` in rendered tables."""
        unit = self.max_fault_unit_size
        return "N - f" if unit == 1 else f"N - {unit}f"

    def guarantee_bound(self, f: int) -> int | None:
        """Worst-case fault-free ring length for ``f`` faults, if one is known."""
        return None


class CodecNodesMixin:
    """Node coding through a shared :class:`~repro.words.codec.WordCodec`.

    The word-graph backends (De Bruijn, undirected De Bruijn,
    shuffle-exchange) all code their nodes as the codec's base-``d``
    integers; this mixin holds the one copy of that boundary logic.
    """

    def encode(self, node: Sequence[int] | int) -> int:
        if isinstance(node, (int, np.integer)):
            return self._check_code(node)
        word = tuple(int(x) for x in node)
        if len(word) != self.n:
            raise InvalidParameterError(
                f"node {word} has length {len(word)}, expected {self.n} "
                f"for {self.name}"
            )
        return self.codec.encode(word)

    def decode(self, code: int) -> Word:
        return self.codec.decode(self._check_code(code))
