"""repro.topology — one sweep/serve protocol over interchangeable networks.

The :class:`~repro.topology.base.Topology` protocol names the table-shaped
surface the Chapter 2 fault-sweep machinery needs from a network (integer
node coding, BFS gather tables, fault-unit closure, measurement root,
reference/guarantee bounds), and the registry maps string keys to backends:

======================  =====================================================
``debruijn``            ``B(d, n)`` — the paper's graph, necklace fault units
``kautz``               ``K(d, n)`` — rotation-orbit fault units (Chapter 5)
``hypercube``           ``Q(n)`` — Chapter 2's baseline, single-node units
``shuffle_exchange``    the necklace-sharing undirected sibling
``undirected_debruijn`` ``UB(d, n)`` — Section 1.2, necklace units
======================  =====================================================

Every sweep layer (`FaultSweepRunner`, `ParallelSweepEngine`,
`simulate_fault_table`, the embedding service, ``python -m repro sweep
--topology ...``) resolves backends through :func:`get_topology`; the
``debruijn`` backend is the compatibility anchor whose tables are bit-for-bit
the pre-registry codec tables.
"""

from .base import Topology
from .debruijn import DeBruijnTopology, UndirectedDeBruijnTopology
from .hypercube import HypercubeTopology
from .kautz import KautzTopology
from .registry import (
    DEFAULT_TOPOLOGY,
    available_topologies,
    get_topology,
    register_topology,
)
from .shuffle_exchange import ShuffleExchangeTopology

__all__ = [
    "Topology",
    "DeBruijnTopology",
    "UndirectedDeBruijnTopology",
    "KautzTopology",
    "HypercubeTopology",
    "ShuffleExchangeTopology",
    "DEFAULT_TOPOLOGY",
    "available_topologies",
    "get_topology",
    "register_topology",
]
