"""String-keyed registry of topology backends.

One registry serves every layer that takes a ``--topology``/``topology=``
argument: the sweep runner, the parallel engine, the embedding service, the
benchmark harness and the CLI all resolve backends through
:func:`get_topology`.  Instances are cached per ``(key, d, n)`` in a small
bounded LRU (their tables are the expensive part, and workloads revisit the
same one or two graphs thousands of times — the same rationale as the codec
cache).

Third-party backends can be added with :func:`register_topology`; the
builtin keys are ``debruijn`` (the compatibility anchor), ``kautz``,
``hypercube``, ``shuffle_exchange`` and ``undirected_debruijn``.
"""

from __future__ import annotations

from collections.abc import Callable

from ..engine.cache import LRUCache
from ..exceptions import UnknownTopologyError
from .base import Topology
from .debruijn import DeBruijnTopology, UndirectedDeBruijnTopology
from .hypercube import HypercubeTopology
from .kautz import KautzTopology
from .shuffle_exchange import ShuffleExchangeTopology

__all__ = [
    "DEFAULT_TOPOLOGY",
    "available_topologies",
    "get_topology",
    "register_topology",
]

#: The compatibility anchor: every topology-parameterised API defaults here.
DEFAULT_TOPOLOGY = "debruijn"

_FACTORIES: dict[str, Callable[[int, int], Topology]] = {}

#: Bounded, audited instance cache (see :mod:`repro.engine.caches`).
_INSTANCE_CACHE = LRUCache(maxsize=8, name="topology.instances")


def register_topology(key: str, factory: Callable[[int, int], Topology]) -> None:
    """Register a backend factory ``(d, n) -> Topology`` under ``key``.

    Re-registering a key evicts the instance cache, so already-resolved
    ``(key, d, n)`` combinations pick up the new factory instead of serving
    stale instances of the old one.
    """
    _FACTORIES[str(key)] = factory
    _INSTANCE_CACHE.clear()


def available_topologies() -> list[str]:
    """The registered backend keys, sorted (the CLI's ``--topology`` choices)."""
    return sorted(_FACTORIES)


def get_topology(key: str | Topology, d: int, n: int) -> Topology:
    """Resolve a backend: a registry key (cached per ``(key, d, n)``) or a
    pre-built :class:`Topology` instance passed through unchanged."""
    if isinstance(key, Topology):
        return key
    try:
        factory = _FACTORIES[str(key)]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown topology {key!r}; registered: {', '.join(available_topologies())}"
        ) from None
    return _INSTANCE_CACHE.get_or_create(
        (str(key), int(d), int(n)), lambda: factory(int(d), int(n))
    )


register_topology("debruijn", DeBruijnTopology)
register_topology("undirected_debruijn", UndirectedDeBruijnTopology)
register_topology("kautz", KautzTopology)
register_topology("hypercube", HypercubeTopology)
register_topology("shuffle_exchange", ShuffleExchangeTopology)
