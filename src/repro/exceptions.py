"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating from this package with a single except
clause while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "AlphabetError",
    "NotPrimePowerError",
    "NoPrimitivePolynomialError",
    "EmbeddingError",
    "FaultBudgetExceededError",
    "DisconnectedGraphError",
    "ProtocolError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside the domain accepted by an algorithm."""


class AlphabetError(InvalidParameterError):
    """A word contains digits outside the declared alphabet ``Z_d``."""


class NotPrimePowerError(InvalidParameterError):
    """An operation requiring a prime-power alphabet size received one that is not."""


class NoPrimitivePolynomialError(ReproError):
    """No primitive polynomial could be found for the requested field/degree."""


class EmbeddingError(ReproError):
    """A requested ring embedding could not be constructed."""


class FaultBudgetExceededError(EmbeddingError):
    """More faults were supplied than the algorithm's worst-case guarantee covers.

    The algorithms in this package frequently still succeed beyond their
    guaranteed fault budget (the simulations in Chapter 2 of the paper rely on
    exactly that), so this error is only raised by the *strict* entry points
    that promise the paper's worst-case bounds.
    """


class DisconnectedGraphError(EmbeddingError):
    """The surviving graph is disconnected in a way that prevents an embedding."""


class ProtocolError(ReproError):
    """A distributed protocol reached an inconsistent state."""


class SimulationError(ReproError):
    """The message-passing simulator was used incorrectly or diverged."""
