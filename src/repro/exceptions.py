"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating from this package with a single except
clause while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "AlphabetError",
    "NotPrimePowerError",
    "NoPrimitivePolynomialError",
    "EmbeddingError",
    "FaultBudgetExceededError",
    "DisconnectedGraphError",
    "ProtocolError",
    "ServerStateError",
    "SimulationError",
    "UnknownTopologyError",
    "CheckpointMismatchError",
    "CheckpointCorruptionError",
    "DeadlineExceededError",
    "ChurnTraceError",
    "ScenarioMismatchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside the domain accepted by an algorithm."""


class UnknownTopologyError(InvalidParameterError):
    """A topology key is not present in the :mod:`repro.topology` registry."""


class CheckpointMismatchError(InvalidParameterError):
    """A sweep checkpoint was written by a different sweep than the one resuming.

    Raised when the validated checkpoint header — ``(topology, d, n, root,
    seed)``, everything the per-trial random streams and the measured graph
    depend on — disagrees with the resuming engine's configuration.  Resuming
    anyway would silently aggregate rows from two different tables.
    """

    def __init__(self, path: str, stored: dict, requested: dict) -> None:
        self.path = path
        self.stored = dict(stored)
        self.requested = dict(requested)
        mismatched = sorted(
            k for k in requested if stored.get(k) != requested[k]
        )
        super().__init__(
            f"checkpoint {path} was written by a different sweep "
            f"(mismatched field(s): {', '.join(mismatched) or 'header'}): "
            f"stored {stored} != requested {requested}"
        )


class CheckpointCorruptionError(CheckpointMismatchError):
    """A sweep checkpoint exists but cannot be parsed as a checkpoint at all.

    Truncated writes and garbage files land here instead of surfacing a raw
    ``json.JSONDecodeError`` from deep inside the engine.  The message names
    the offending path and the ``--fresh`` CLI escape hatch that discards it.
    """

    def __init__(self, path: str, detail: str) -> None:
        self.path = path
        self.stored: dict = {}
        self.requested: dict = {}
        self.detail = detail
        ReproError.__init__(
            self,
            f"checkpoint {path} is corrupt ({detail}); delete the file or "
            f"rerun with --fresh to discard it and start over",
        )


class DeadlineExceededError(ReproError):
    """A request's per-request deadline elapsed before its answer landed.

    Raised by :meth:`repro.server.batcher.MicroBatcher.submit` when the
    caller supplied a deadline; timed-out masks leave their batch without
    failing coalesced lane-mates.  The gateway maps this to HTTP 504.
    """


class ChurnTraceError(InvalidParameterError):
    """A churn trace file violates the JSONL schema or event legality rules
    (faulting an already-faulty node, healing a healthy one, seq gaps)."""


class ScenarioMismatchError(ReproError):
    """A streamed churn answer diverged from the offline batch recomputation.

    Carries the finished :class:`~repro.churn.scenario.ScenarioReport` (with
    its ``mismatches`` list populated) as the ``report`` attribute.
    """

    def __init__(self, message: str, report: object = None) -> None:
        self.report = report
        super().__init__(message)


class AlphabetError(InvalidParameterError):
    """A word contains digits outside the declared alphabet ``Z_d``."""


class NotPrimePowerError(InvalidParameterError):
    """An operation requiring a prime-power alphabet size received one that is not."""


class NoPrimitivePolynomialError(ReproError):
    """No primitive polynomial could be found for the requested field/degree."""


class EmbeddingError(ReproError):
    """A requested ring embedding could not be constructed."""


class FaultBudgetExceededError(EmbeddingError):
    """More faults were supplied than the algorithm's worst-case guarantee covers.

    The algorithms in this package frequently still succeed beyond their
    guaranteed fault budget (the simulations in Chapter 2 of the paper rely on
    exactly that), so this error is only raised by the *strict* entry points
    that promise the paper's worst-case bounds.
    """


class DisconnectedGraphError(EmbeddingError):
    """The surviving graph is disconnected in a way that prevents an embedding."""


class ProtocolError(ReproError):
    """A distributed protocol reached an inconsistent state."""


class ServerStateError(ReproError):
    """A server object was used outside its lifecycle (e.g. before ``start()``).

    Raised instead of ``assert`` so the check survives ``python -O`` and
    callers get a catchable :class:`ReproError` rather than an
    ``AssertionError`` from deep inside the event loop.
    """


class SimulationError(ReproError):
    """The message-passing simulator was used incorrectly or diverged."""
