"""Dynamic-fault workloads: churn traces, generators, chaos, scenarios.

The :mod:`repro.churn` package is the dynamic counterpart of the static
fault masks everything else measures — the paper's resilience story run as
a *stream*: faults arrive and heal (:mod:`~repro.churn.trace`,
:mod:`~repro.churn.generators`), the embedding service repairs its ring
incrementally (:meth:`repro.engine.service.EmbeddingService.apply_event`),
the gateway survives injected failures (:mod:`~repro.churn.chaos`), and the
scenario driver (:mod:`~repro.churn.scenario`) replays it all while holding
every streamed answer to the offline batch recomputation, bit for bit.

Import discipline: :mod:`repro.server.gateway` imports
:mod:`repro.churn.chaos`, so nothing imported at this package's top level
may import :mod:`repro.server` back — :mod:`~repro.churn.scenario` (which
drives a live gateway through the server clients) is therefore imported
lazily via ``__getattr__``.
"""

from __future__ import annotations

from typing import Any

from .chaos import CHAOS_KINDS, ChaosConfig, ChaosDecision, ChaosInjector
from .generators import GENERATORS, generate_trace
from .trace import (
    TRACE_SCHEMA,
    ChurnEvent,
    ChurnTrace,
    loads_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "TRACE_SCHEMA",
    "ChurnEvent",
    "ChurnTrace",
    "read_trace",
    "write_trace",
    "loads_trace",
    "GENERATORS",
    "generate_trace",
    "CHAOS_KINDS",
    "ChaosConfig",
    "ChaosDecision",
    "ChaosInjector",
    "ScenarioReport",
    "run_scenario",
]


def __getattr__(name: str) -> Any:
    if name in ("ScenarioReport", "run_scenario"):
        from . import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
