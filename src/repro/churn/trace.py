"""The versioned JSONL churn-trace format.

A churn trace is the replayable unit of the dynamic-fault workload layer:
a header line naming the graph it was generated for, followed by one event
per line, each faulting or healing exactly one node.  Traces are plain
JSON Lines so they diff, grep and stream; they are *seeded artifacts* —
regenerating with the same generator, parameters and seed yields a
byte-identical file, and replaying one (see
:mod:`repro.churn.scenario`) yields a byte-identical scenario report.

Schema (version 1)::

    {"schema": 1, "kind": "churn-trace", "topology": "debruijn", "d": 2,
     "n": 8, "generator": "orbit", "seed": 7, "events": 200,
     "params": {...}}
    {"seq": 0, "op": "fault", "node": [0, 1, 0, ...]}
    {"seq": 1, "op": "heal",  "node": [0, 1, 0, ...]}
    ...

Legality is part of the schema: ``fault`` must target a currently healthy
node, ``heal`` a currently faulty one, and ``seq`` must count up from 0
without gaps.  :func:`read_trace` validates all of it and raises
:class:`~repro.exceptions.ChurnTraceError` with the offending line number,
so a scenario never discovers mid-stream that its trace was nonsense.
"""

from __future__ import annotations

import io
import json
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..exceptions import ChurnTraceError
from ..topology import available_topologies
from ..words.alphabet import Word

__all__ = [
    "TRACE_SCHEMA",
    "ChurnEvent",
    "ChurnTrace",
    "read_trace",
    "write_trace",
    "loads_trace",
]

#: Version of the JSONL trace schema this module reads and writes.
TRACE_SCHEMA = 1

_OPS = ("fault", "heal")


@dataclass(frozen=True)
class ChurnEvent:
    """One fault-state transition: node ``node`` faults or heals at step ``seq``."""

    seq: int
    op: str
    node: Word

    def as_dict(self) -> dict:
        return {"seq": self.seq, "op": self.op, "node": list(self.node)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnEvent":
        op = str(data["op"])
        if op not in _OPS:
            raise ChurnTraceError(f"unknown churn op {op!r}: expected one of {_OPS}")
        return cls(
            seq=int(data["seq"]),
            op=op,
            node=tuple(int(x) for x in data["node"]),
        )


@dataclass(frozen=True)
class ChurnTrace:
    """A parsed churn trace: the header plus its ordered event list.

    ``params`` records the generator knobs for provenance; it never affects
    replay (the events are fully materialised).  ``header()`` is the
    canonical dict embedded in scenario reports.
    """

    topology: str
    d: int
    n: int
    generator: str
    seed: int
    events: tuple[ChurnEvent, ...]
    params: dict = field(default_factory=dict)

    def header(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "kind": "churn-trace",
            "topology": self.topology,
            "d": self.d,
            "n": self.n,
            "generator": self.generator,
            "seed": self.seed,
            "events": len(self.events),
            "params": dict(self.params),
        }

    def validate(self) -> None:
        """Check seq continuity and fault/heal legality of the event list."""
        faulty: set[Word] = set()
        for position, event in enumerate(self.events):
            if event.seq != position:
                raise ChurnTraceError(
                    f"event {position} carries seq {event.seq}: "
                    f"seq must count up from 0 without gaps"
                )
            if len(event.node) != self.n:
                raise ChurnTraceError(
                    f"event {event.seq} node {event.node} has length "
                    f"{len(event.node)}, expected {self.n}"
                )
            if event.op == "fault":
                if event.node in faulty:
                    raise ChurnTraceError(
                        f"event {event.seq} faults {event.node}, "
                        f"which is already faulty"
                    )
                faulty.add(event.node)
            else:
                if event.node not in faulty:
                    raise ChurnTraceError(
                        f"event {event.seq} heals {event.node}, "
                        f"which is not faulty"
                    )
                faulty.discard(event.node)

    def dumps(self) -> str:
        """The byte-exact JSONL text of this trace (header + one event/line)."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(e.as_dict(), sort_keys=True) for e in self.events)
        return "\n".join(lines) + "\n"


def write_trace(trace: ChurnTrace, path: str) -> None:
    """Write ``trace`` to ``path`` as schema-1 JSONL (validated first)."""
    trace.validate()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace.dumps())


def _parse_lines(lines: Iterator[str], origin: str) -> ChurnTrace:
    header = None
    events: list[ChurnEvent] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ChurnTraceError(f"{origin}:{lineno}: invalid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ChurnTraceError(f"{origin}:{lineno}: expected a JSON object")
        if header is None:
            if data.get("kind") != "churn-trace":
                raise ChurnTraceError(
                    f"{origin}:{lineno}: first line must be a churn-trace "
                    f"header (kind='churn-trace'), got {data.get('kind')!r}"
                )
            if data.get("schema") != TRACE_SCHEMA:
                raise ChurnTraceError(
                    f"{origin}:{lineno}: unsupported trace schema "
                    f"{data.get('schema')!r} (this build reads {TRACE_SCHEMA})"
                )
            topology = str(data.get("topology", ""))
            if topology not in available_topologies():
                raise ChurnTraceError(
                    f"{origin}:{lineno}: unknown topology {topology!r}"
                )
            header = data
            continue
        try:
            events.append(ChurnEvent.from_dict(data))
        except (KeyError, TypeError, ValueError) as exc:
            raise ChurnTraceError(f"{origin}:{lineno}: bad event: {exc}") from None
    if header is None:
        raise ChurnTraceError(f"{origin}: empty trace (no header line)")
    declared = int(header.get("events", len(events)))
    if declared != len(events):
        raise ChurnTraceError(
            f"{origin}: header declares {declared} events, file holds "
            f"{len(events)} (truncated trace?)"
        )
    trace = ChurnTrace(
        topology=str(header["topology"]),
        d=int(header["d"]),
        n=int(header["n"]),
        generator=str(header.get("generator", "unknown")),
        seed=int(header.get("seed", 0)),
        events=tuple(events),
        params=dict(header.get("params", {})),
    )
    trace.validate()
    return trace


def read_trace(source: str | os.PathLike | Iterable[str]) -> ChurnTrace:
    """Parse and fully validate a trace from a path or an iterable of lines."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as fh:
            return _parse_lines(iter(fh), str(source))
    return _parse_lines(iter(source), "<stream>")


def loads_trace(text: str) -> ChurnTrace:
    """Parse a trace from in-memory JSONL text (inverse of ``dumps``)."""
    return _parse_lines(iter(io.StringIO(text)), "<string>")
