"""Seeded fault injection for the serving gateway.

:class:`ChaosInjector` sits in front of the gateway's POST routes and, with
per-endpoint probability knobs, injects the failure modes the serving tier
must survive:

``delay``
    Hold the response for ``delay_ms`` before answering (exercises client
    timeouts and batching under latency jitter).

``error``
    Answer HTTP 503 with ``retry: true`` (exercises the clients' seeded
    exponential-backoff retry path).

``drop``
    Close the connection without responding (exercises the
    connection-reset retry path).

``saturate``
    Behave as if the shard queue were full (exercises backpressure and the
    graceful-degradation path without needing real overload in CI).

All decisions come from one seeded ``numpy`` Generator behind a lock, so a
sequential client (the scenario driver) sees a reproducible injection
sequence for a given seed.  Injections are counted per (endpoint, kind) in
the owning registry under ``repro_chaos_injections_total`` — the CI
chaos-smoke job asserts these are nonzero.

This module must stay import-light (stdlib + numpy + ``repro.obs``): the
gateway imports it, so it must never import :mod:`repro.server` back.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..obs import MetricsRegistry

__all__ = ["CHAOS_KINDS", "ChaosConfig", "ChaosDecision", "ChaosInjector"]

#: Injection kinds, in the fixed order probabilities are evaluated.
CHAOS_KINDS = ("drop", "error", "delay", "saturate")

#: Endpoints subject to injection by default (mutating POST routes only:
#: health checks, metrics and traces always answer truthfully).
_DEFAULT_ENDPOINTS = ("POST /measure", "POST /embed", "POST /churn")


@dataclass(frozen=True)
class ChaosConfig:
    """Injection knobs (all probabilities per request, evaluated in
    ``CHAOS_KINDS`` order; the first hit wins)."""

    seed: int = 0
    drop_p: float = 0.0
    error_p: float = 0.0
    delay_p: float = 0.0
    saturate_p: float = 0.0
    delay_ms: float = 25.0
    endpoints: tuple[str, ...] = _DEFAULT_ENDPOINTS

    def __post_init__(self) -> None:
        for name in ("drop_p", "error_p", "delay_p", "saturate_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidParameterError(
                    f"chaos {name} must be in [0, 1], got {value}"
                )
        total = self.drop_p + self.error_p + self.delay_p + self.saturate_p
        if total > 1.0:
            raise InvalidParameterError(
                f"chaos probabilities must sum to <= 1, got {total}"
            )
        if self.delay_ms < 0:
            raise InvalidParameterError(
                f"chaos delay_ms must be >= 0, got {self.delay_ms}"
            )

    @property
    def enabled(self) -> bool:
        return (self.drop_p + self.error_p + self.delay_p + self.saturate_p) > 0.0


@dataclass(frozen=True)
class ChaosDecision:
    """One injection verdict: what to do to the current request."""

    kind: str
    delay_s: float = 0.0


class ChaosInjector:
    """Seeded per-request failure oracle (see module docstring).

    ``decide`` is cheap and non-blocking (one uniform draw under a lock) so
    it is safe to call from the gateway's event loop; the *effects* (sleeps,
    resets) are applied by the caller asynchronously.
    """

    def __init__(
        self, config: ChaosConfig, registry: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(np.random.SeedSequence(config.seed))
        registry = registry if registry is not None else MetricsRegistry()
        self._obs_injections = registry.counter(
            "repro_chaos_injections_total",
            "Fault injections applied by the chaos middleware",
            labelnames=("endpoint", "kind"),
        )

    def decide(self, endpoint: str) -> ChaosDecision | None:
        """The injection (if any) to apply to one request at ``endpoint``."""
        if not self.config.enabled or endpoint not in self.config.endpoints:
            return None
        with self._lock:
            draw = float(self._rng.random())
        threshold = 0.0
        for kind in CHAOS_KINDS:
            threshold += float(getattr(self.config, f"{kind}_p"))
            if draw < threshold:
                self._obs_injections.labels(endpoint, kind).inc()
                delay_s = self.config.delay_ms / 1000.0 if kind == "delay" else 0.0
                return ChaosDecision(kind=kind, delay_s=delay_s)
        return None
