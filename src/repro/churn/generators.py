"""Seeded churn-trace generators: independent, orbit-correlated, adversarial.

All three walk the same fault-state machine — pick *fault* or *heal*, pick a
legal target node, emit one :class:`~repro.churn.trace.ChurnEvent` — and
differ only in how fault targets are chosen:

``independent``
    Uniform over the currently healthy nodes: the memoryless arrival model
    the paper's random-fault tables assume, extended with heals.

``orbit``
    Correlated within necklace fault-units: with probability ``cluster_p`` a
    new fault lands on a healthy node *inside an already-hit fault unit*
    (the topology's fault-unit closure — necklace orbits for the De Bruijn
    family, single nodes elsewhere), modelling faults that percolate through
    a unit the way incipient-infinite-cluster growth does.  On single-node
    topologies every unit is one node, so the clustered branch never finds a
    healthy orbit-mate and the generator degrades to ``independent`` —
    exactly the right semantics.

``adversarial``
    Targets the *current fault-free cycle*: each fault lands on a node of
    the ring the :class:`~repro.engine.service.EmbeddingService` would
    return for the present fault set, forcing a re-embedding every time.
    De Bruijn only (the FFC construction is the De Bruijn algorithm).

Determinism contract: one ``numpy`` Generator seeded from the trace seed
drives every choice, candidates are always drawn from *sorted* code arrays,
and no wall-clock or global state is consulted — the same
``(generator, topology, d, n, events, seed, params)`` tuple always yields a
byte-identical trace.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import InvalidParameterError
from ..topology import get_topology
from ..topology.base import Topology
from .trace import ChurnEvent, ChurnTrace

__all__ = ["GENERATORS", "generate_trace"]

#: Default ceiling on concurrently faulty nodes (forces heals beyond it).
_DEFAULT_MAX_FAULTS = 8


def _sorted_healthy(num_nodes: int, faulty: set[int]) -> np.ndarray:
    """Sorted codes of currently healthy nodes (deterministic draw domain)."""
    if not faulty:
        return np.arange(num_nodes, dtype=np.int64)
    return np.setdiff1d(
        np.arange(num_nodes, dtype=np.int64),
        np.fromiter(faulty, dtype=np.int64, count=len(faulty)),
        assume_unique=True,
    )


def _pick(rng: np.random.Generator, candidates: np.ndarray) -> int:
    return int(candidates[int(rng.integers(0, len(candidates)))])


def _independent_target(
    topo: Topology, rng: np.random.Generator, faulty: set[int], params: dict
) -> int:
    return _pick(rng, _sorted_healthy(topo.num_nodes, faulty))


def _orbit_target(
    topo: Topology, rng: np.random.Generator, faulty: set[int], params: dict
) -> int:
    cluster_p = float(params.get("cluster_p", 0.8))
    if faulty and rng.random() < cluster_p:
        # healthy nodes inside already-hit fault units (the unit closure of
        # the faulty set minus the faulty nodes themselves)
        codes = np.fromiter(faulty, dtype=np.int64, count=len(faulty))
        members = np.unique(topo.fault_unit_members(codes))
        candidates = np.setdiff1d(members, codes, assume_unique=False)
        if len(candidates):
            return _pick(rng, candidates)
    return _independent_target(topo, rng, faulty, params)


def _adversarial_target(
    topo: Topology, rng: np.random.Generator, faulty: set[int], params: dict
) -> int:
    # import here: the embedding service pulls the whole engine stack, which
    # trace generation for non-adversarial workloads never needs
    from ..engine.service import EmbeddingService

    service: EmbeddingService = params["_service"]
    response = service.embed(
        topo.d, topo.n, faults=[topo.decode(c) for c in sorted(faulty)]
    )
    cycle_codes = np.sort(
        np.fromiter(
            (topo.encode(w) for w in response.cycle),
            dtype=np.int64,
            count=len(response.cycle),
        )
    )
    # every ring node is healthy by construction: hit one of them
    return _pick(rng, cycle_codes)


GENERATORS: dict[str, Callable[[Topology, np.random.Generator, set[int], dict], int]] = {
    "independent": _independent_target,
    "orbit": _orbit_target,
    "adversarial": _adversarial_target,
}


def generate_trace(
    generator: str,
    topology: str,
    d: int,
    n: int,
    events: int,
    seed: int,
    p_fault: float = 0.6,
    cluster_p: float = 0.8,
    max_faults: int | None = None,
) -> ChurnTrace:
    """Generate a validated, replayable churn trace.

    Parameters
    ----------
    generator:
        ``independent``, ``orbit`` or ``adversarial`` (see module docstring).
    p_fault:
        Probability a step faults (vs heals) when both moves are legal.
    cluster_p:
        Orbit generator only: probability a fault clusters inside an
        already-hit fault unit rather than arriving independently.
    max_faults:
        Ceiling on concurrently faulty nodes; beyond it the next step heals.
        Defaults to ``min(8, num_nodes // 4)`` (at least 1).
    """
    if generator not in GENERATORS:
        raise InvalidParameterError(
            f"unknown churn generator {generator!r}: "
            f"choose from {sorted(GENERATORS)}"
        )
    if events < 0:
        raise InvalidParameterError(f"events must be >= 0, got {events}")
    if not 0.0 < p_fault < 1.0:
        raise InvalidParameterError(f"p_fault must be in (0, 1), got {p_fault}")
    if not 0.0 <= cluster_p <= 1.0:
        raise InvalidParameterError(f"cluster_p must be in [0, 1], got {cluster_p}")
    topo = get_topology(topology, d, n)
    if generator == "adversarial" and topo.key != "debruijn":
        raise InvalidParameterError(
            "the adversarial generator targets the FFC ring and is "
            f"debruijn-only, got topology {topo.key!r}"
        )
    if max_faults is None:
        max_faults = max(1, min(_DEFAULT_MAX_FAULTS, topo.num_nodes // 4))
    if max_faults < 1 or max_faults >= topo.num_nodes:
        raise InvalidParameterError(
            f"max_faults must be in 1..{topo.num_nodes - 1}, got {max_faults}"
        )

    params: dict = {"p_fault": p_fault, "max_faults": int(max_faults)}
    if generator == "orbit":
        params["cluster_p"] = cluster_p
    target = GENERATORS[generator]
    call_params = dict(params)
    if generator == "adversarial":
        from ..engine.service import EmbeddingService

        # private helper for the target chooser; never serialised
        call_params["_service"] = EmbeddingService()

    rng = np.random.default_rng(np.random.SeedSequence(seed))
    faulty: set[int] = set()
    out: list[ChurnEvent] = []
    for seq in range(int(events)):
        if not faulty:
            op = "fault"
        elif len(faulty) >= max_faults:
            op = "heal"
        else:
            op = "fault" if rng.random() < p_fault else "heal"
        if op == "fault":
            code = target(topo, rng, faulty, call_params)
            faulty.add(code)
        else:
            code = _pick(
                rng, np.fromiter(sorted(faulty), dtype=np.int64, count=len(faulty))
            )
            faulty.discard(code)
        out.append(ChurnEvent(seq=seq, op=op, node=topo.decode(code)))

    trace = ChurnTrace(
        topology=topo.key,
        d=topo.d,
        n=topo.n,
        generator=generator,
        seed=int(seed),
        events=tuple(out),
        params=params,
    )
    trace.validate()
    return trace
