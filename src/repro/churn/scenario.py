"""The churn scenario driver: stream a trace, hold every answer to the oracle.

:func:`run_scenario` replays a :class:`~repro.churn.trace.ChurnTrace` event
by event, either **offline** (directly against an
:class:`~repro.engine.service.EmbeddingService`) or **over HTTP** against a
live gateway (``POST /churn`` + ``POST /measure``, with the retrying
:class:`~repro.server.client.ServeClient` so injected chaos is survived,
not avoided).  After every event it recomputes the answers *from scratch* —
:func:`~repro.core.ffc.find_fault_free_cycle` for the ring,
:meth:`~repro.engine.executor.KernelExecutor.measure_mask_with_root` for
the region — and records any divergence: the incremental re-embedding path
is only correct if it is **bit-for-bit** the batch recomputation, and this
driver is where that contract is enforced end-to-end.

The resulting :class:`ScenarioReport` is deterministic by construction:
its canonical part (:meth:`ScenarioReport.canonical_json`) contains only
seed-derived values — the trace header, per-event oracle digests, the
incremental/full decision counts and the final fault state — so replaying
the same trace yields byte-identical canonical reports regardless of
transport, timing, chaos or retries.  Wall-clock and transport-dependent
fields (retries, degraded answers, elapsed time) ride alongside in
:meth:`ScenarioReport.as_dict` and land in the ``BENCH_sweep.json`` run
history via :func:`repro.engine.bench.append_run`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.ffc import find_fault_free_cycle, guaranteed_cycle_length
from ..exceptions import FaultBudgetExceededError, ScenarioMismatchError
from ..topology import get_topology
from ..words.codec import get_codec
from .trace import ChurnTrace

if TYPE_CHECKING:
    from ..engine.service import EmbeddingService
    from ..server.client import ServeClient

__all__ = ["ScenarioReport", "run_scenario"]

#: Report schema version (bump when the canonical field set changes).
REPORT_SCHEMA = 1

#: Answer fields that legitimately differ between transports/replays.
_TRANSIENT_FIELDS = ("cached", "elapsed_s", "trace_id", "seq", "degraded")


def _comparable(data: dict) -> dict:
    """An answer dict stripped to its deterministic fields."""
    return {k: v for k, v in data.items() if k not in _TRANSIENT_FIELDS}


def _diff_keys(streamed: dict, oracle: dict) -> list[str]:
    keys = sorted(set(streamed) | set(oracle))
    return [k for k in keys if streamed.get(k) != oracle.get(k)]


@dataclass
class ScenarioReport:
    """The outcome of one scenario replay (see the module docstring)."""

    trace: dict
    transport: str
    events: int
    incremental: int
    full: int
    replayed: int
    degraded: int
    retries: int
    mismatches: list = field(default_factory=list)
    answers_digest: str = ""
    final_faults: int = 0
    final_region_size: int | None = None
    final_ring_length: int | None = None
    elapsed_s: float = 0.0

    def canonical_dict(self) -> dict:
        """The deterministic core: identical for every replay of one trace."""
        return {
            "schema": REPORT_SCHEMA,
            "kind": "churn-scenario",
            "trace": self.trace,
            "events": self.events,
            "incremental": self.incremental,
            "full": self.full,
            "mismatches": self.mismatches,
            "answers_digest": self.answers_digest,
            "final_faults": self.final_faults,
            "final_region_size": self.final_region_size,
            "final_ring_length": self.final_ring_length,
        }

    def canonical_json(self) -> str:
        """Byte-exact serialisation of :meth:`canonical_dict` (replay contract)."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    def as_dict(self) -> dict:
        """Canonical core + the transport-dependent observations."""
        data = self.canonical_dict()
        data.update(
            transport=self.transport,
            replayed=self.replayed,
            degraded=self.degraded,
            retries=self.retries,
            elapsed_s=self.elapsed_s,
        )
        return data


class _Oracle:
    """Per-event batch recomputation: the ground truth every answer meets."""

    def __init__(self, trace: ChurnTrace) -> None:
        from ..engine.executor import cached_executor

        self.topo = get_topology(trace.topology, trace.d, trace.n)
        self.executor = cached_executor(trace.d, trace.n, None, trace.topology)
        self.embeds = trace.topology == "debruijn"
        self.codec = get_codec(trace.d, trace.n) if self.embeds else None

    def measure(self, fault_words: list[tuple[int, ...]]) -> dict:
        codes = [self.topo.encode(w) for w in fault_words]
        rep_codes = self.topo.fault_unit_reps(codes)
        mask = self.topo.fault_unit_mask(np.asarray(codes, dtype=np.int64))
        size, ecc, root = self.executor.measure_mask_with_root(mask)
        f = len(set(codes))
        return {
            "topology": self.topo.key,
            "d": self.topo.d,
            "n": self.topo.n,
            "faults": [list(w) for w in fault_words],
            "fault_units": [list(self.topo.decode(int(c))) for c in rep_codes],
            "root": None if root is None else list(self.topo.decode(root)),
            "region_size": int(size),
            "root_eccentricity": int(ecc),
            "reference_size": self.topo.reference_size(f),
            "guarantee_bound": self.topo.guarantee_bound(f),
        }

    def embed(self, fault_words: list[tuple[int, ...]]) -> dict:
        """Full FFC recomputation, bypassing every service cache."""
        codec = self.codec
        result = find_fault_free_cycle(codec.d, codec.n, fault_words)
        rep_codes = sorted({int(codec.rep[codec.encode(w)]) for w in fault_words})
        try:
            bound: int | None = guaranteed_cycle_length(
                codec.d, codec.n, len(set(fault_words))
            )
        except FaultBudgetExceededError:
            bound = None
        cycle = result.cycle
        return {
            "d": codec.d,
            "n": codec.n,
            "faults": [list(w) for w in fault_words],
            "faulty_necklaces": [list(codec.decode(c)) for c in rep_codes],
            "length": len(cycle),
            "guarantee_bound": bound,
            "meets_guarantee": True if bound is None else len(cycle) >= bound,
            "cycle": [list(w) for w in cycle],
        }


def _churn_counts(stats: dict) -> tuple[int, int, int]:
    churn = stats.get("churn", {})
    return (
        int(churn.get("incremental", 0)),
        int(churn.get("full", 0)),
        int(churn.get("replayed", 0)),
    )


def run_scenario(
    trace: ChurnTrace,
    client: "ServeClient | None" = None,
    service: "EmbeddingService | None" = None,
    strict: bool = True,
    bench_path: str | None = None,
) -> ScenarioReport:
    """Replay ``trace``, assert every streamed answer equals the oracle.

    Parameters
    ----------
    client:
        A :class:`~repro.server.client.ServeClient` pointed at a live
        gateway: events stream over ``POST /churn`` (De Bruijn traces) and
        every state is measured over ``POST /measure``.  ``None`` runs the
        offline transport against ``service`` (a fresh
        :class:`~repro.engine.service.EmbeddingService` by default).
    strict:
        Raise :class:`~repro.exceptions.ScenarioMismatchError` (carrying
        the report) when any streamed answer diverges from the oracle.
    bench_path:
        When given, append the finished report to this ``BENCH_sweep.json``
        run history (:func:`repro.engine.bench.append_run`).
    """
    trace.validate()
    started = time.perf_counter()
    oracle = _Oracle(trace)
    offline = client is None
    if offline and service is None:
        from ..engine.service import EmbeddingService

        service = EmbeddingService()

    before: tuple[int, int, int]
    if offline:
        before = _churn_counts(service.stats())
        if oracle.embeds:
            service.reset_churn(trace.d, trace.n)
    else:
        before = _churn_counts(client.stats().get("service", {}))
        if oracle.embeds:
            client.churn(trace.d, trace.n, "reset")

    digest = hashlib.sha256()
    mismatches: list[dict] = []
    degraded = 0
    faults: list[tuple[int, ...]] = []
    measure_answer: dict | None = None
    embed_answer: dict | None = None

    for event in trace.events:
        if event.op == "fault":
            faults.append(event.node)
        else:
            faults.remove(event.node)
        fault_words = sorted(faults)

        oracle_measure = oracle.measure(fault_words)
        oracle_embed = oracle.embed(fault_words) if oracle.embeds else None

        # -- stream the event ------------------------------------------------
        if oracle.embeds:
            if offline:
                response = service.apply_event(
                    trace.d, trace.n, event.op, event.node, seq=event.seq
                )
                embed_answer = response.as_dict()
            else:
                embed_answer = client.churn(
                    trace.d, trace.n, event.op, event.node, seq=event.seq
                )
            diff = _diff_keys(_comparable(embed_answer), oracle_embed)
            if diff:
                mismatches.append(
                    {"seq": event.seq, "endpoint": "churn", "keys": diff}
                )

        # -- measure the new state -------------------------------------------
        if offline:
            measure_answer = oracle_measure
        else:
            measure_answer = client.measure(
                trace.d, trace.n, faults=fault_words, topology=trace.topology
            )
            if measure_answer.get("degraded"):
                degraded += 1  # bound-only answer: nothing measured to compare
            else:
                diff = _diff_keys(_comparable(measure_answer), oracle_measure)
                if diff:
                    mismatches.append(
                        {"seq": event.seq, "endpoint": "measure", "keys": diff}
                    )

        # the digest hashes ORACLE values: transport-invariant by definition
        record = {
            "seq": event.seq,
            "op": event.op,
            "node": list(event.node),
            "measure": oracle_measure,
            "embed": oracle_embed,
        }
        digest.update(
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        )

    if offline:
        after = _churn_counts(service.stats())
        retries = 0
    else:
        after = _churn_counts(client.stats().get("service", {}))
        retries = int(getattr(client, "retries_total", 0))

    report = ScenarioReport(
        trace=trace.header(),
        transport="offline" if offline else "http",
        events=len(trace.events),
        incremental=after[0] - before[0],
        full=after[1] - before[1],
        replayed=after[2] - before[2],
        degraded=degraded,
        retries=retries,
        mismatches=mismatches,
        answers_digest=digest.hexdigest(),
        final_faults=len(faults),
        final_region_size=(
            None if measure_answer is None else measure_answer.get("region_size")
        ),
        final_ring_length=(
            None if embed_answer is None else embed_answer.get("length")
        ),
        elapsed_s=time.perf_counter() - started,
    )
    if bench_path is not None:
        from ..engine.bench import append_run

        append_run(bench_path, churn=[report.as_dict()])
    if strict and mismatches:
        raise ScenarioMismatchError(
            f"{len(mismatches)} of {len(trace.events)} streamed answers "
            f"diverged from the batch recomputation (first: {mismatches[0]})",
            report=report,
        )
    return report
