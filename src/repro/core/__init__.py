"""The paper's algorithms: fault-tolerant ring embedding in De Bruijn networks.

* :mod:`repro.core.ffc` — the fault-free cycle algorithm for node failures
  (Chapter 2), built on the necklace adjacency machinery of
  :mod:`repro.core.necklace_graph`.
* :mod:`repro.core.disjoint_hc`, :mod:`repro.core.edge_faults`,
  :mod:`repro.core.hamiltonian_decomposition` — disjoint Hamiltonian cycles,
  edge-fault-tolerant Hamiltonian embedding and Hamiltonian decompositions of
  the modified graph (Chapter 3), including the butterfly transfer.
* :mod:`repro.core.counting` — necklace counting (Chapter 4).
* :mod:`repro.core.bounds` — ψ(d), φ(d) and every closed-form guarantee the
  paper tabulates.
"""

from .bounds import (
    binary_single_fault_bound,
    disjoint_hc_upper_bound,
    edge_fault_phi,
    edge_fault_tolerance,
    hypercube_vs_debruijn,
    node_fault_cycle_bound,
    psi,
    psi_prime_power,
    strategy_for_prime,
    table_3_1,
    table_3_2,
    worst_case_fault_placement,
)
from .counting import (
    brute_force_necklace_count,
    count_from_gamma,
    count_necklaces_by_type,
    count_necklaces_by_type_total,
    count_necklaces_by_weight,
    count_necklaces_by_weight_total,
    count_necklaces_of_length,
    count_necklaces_total,
    dary_tuples_of_weight,
    total_from_gamma,
)
from .disjoint_hc import (
    PrimePowerHCFamily,
    conflict_function,
    cycles_conflict,
    disjoint_hamiltonian_cycles,
    disjoint_hamiltonian_cycles_prime_power,
    maximal_cycle_shifts,
    shifted_hamiltonian_cycle,
    verify_pairwise_disjoint,
)
from .edge_faults import (
    butterfly_disjoint_hamiltonian_cycles,
    butterfly_edge_fault_free_hc,
    edge_fault_free_hc_composite,
    edge_fault_free_hc_prime_power,
    find_edge_fault_free_hc,
    normalize_edge_faults,
    project_butterfly_edge,
)
from .ffc import (
    FaultFreeCycleResult,
    find_fault_free_cycle,
    guaranteed_cycle_length,
    necklaces_visited_in_order,
)
from .hamiltonian_decomposition import HamiltonianDecomposition, modified_debruijn_decomposition
from .necklace_graph import (
    BStar,
    ModifiedTree,
    NecklaceAdjacencyGraph,
    SpanningTree,
    build_bstar,
)
from .ring_embedding import RingEmbedding, embedding_congestion, embedding_dilation
from .sequences import (
    de_bruijn_sequence,
    decompose_rees_edge,
    edges_of_sequence,
    is_cycle_sequence,
    is_hamiltonian_sequence,
    nodes_of_sequence,
    rees_composition,
    sequence_of_cycle,
    sequences_edge_disjoint,
)

__all__ = [
    "binary_single_fault_bound",
    "disjoint_hc_upper_bound",
    "edge_fault_phi",
    "edge_fault_tolerance",
    "hypercube_vs_debruijn",
    "node_fault_cycle_bound",
    "psi",
    "psi_prime_power",
    "strategy_for_prime",
    "table_3_1",
    "table_3_2",
    "worst_case_fault_placement",
    "brute_force_necklace_count",
    "count_from_gamma",
    "count_necklaces_by_type",
    "count_necklaces_by_type_total",
    "count_necklaces_by_weight",
    "count_necklaces_by_weight_total",
    "count_necklaces_of_length",
    "count_necklaces_total",
    "dary_tuples_of_weight",
    "total_from_gamma",
    "PrimePowerHCFamily",
    "conflict_function",
    "cycles_conflict",
    "disjoint_hamiltonian_cycles",
    "disjoint_hamiltonian_cycles_prime_power",
    "maximal_cycle_shifts",
    "shifted_hamiltonian_cycle",
    "verify_pairwise_disjoint",
    "butterfly_disjoint_hamiltonian_cycles",
    "butterfly_edge_fault_free_hc",
    "edge_fault_free_hc_composite",
    "edge_fault_free_hc_prime_power",
    "find_edge_fault_free_hc",
    "normalize_edge_faults",
    "project_butterfly_edge",
    "FaultFreeCycleResult",
    "find_fault_free_cycle",
    "guaranteed_cycle_length",
    "necklaces_visited_in_order",
    "HamiltonianDecomposition",
    "modified_debruijn_decomposition",
    "BStar",
    "ModifiedTree",
    "NecklaceAdjacencyGraph",
    "SpanningTree",
    "build_bstar",
    "RingEmbedding",
    "embedding_congestion",
    "embedding_dilation",
    "de_bruijn_sequence",
    "decompose_rees_edge",
    "edges_of_sequence",
    "is_cycle_sequence",
    "is_hamiltonian_sequence",
    "nodes_of_sequence",
    "rees_composition",
    "sequence_of_cycle",
    "sequences_edge_disjoint",
]
