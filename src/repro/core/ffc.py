"""The Fault-Free Cycle (FFC) algorithm of Chapter 2 (centralized version).

Given a set of faulty processors in ``B(d, n)``, the algorithm

1. removes every *necklace* (rotation cycle) containing a faulty node and
   keeps the largest surviving component ``B*``;
2. builds the necklace adjacency graph ``N*`` of ``B*`` and a spanning tree
   ``T`` of ``N*`` whose same-label edge groups are height-one stars (derived
   from a BFS broadcast over ``B*``);
3. rewrites each star as a directed label cycle (the modified tree ``D``) and
   reads off the successor of every node of ``B*``: a node ``alpha w`` is
   followed by ``w beta`` in the next necklace if ``D`` has an outgoing
   ``w``-edge there, and by its own rotation ``w alpha`` otherwise.

The result is a Hamiltonian cycle of ``B*`` (Proposition 2.1) — hence a
fault-free ring of length ``|B*| >= d**n - n*f`` whenever ``f <= d - 2``
(Proposition 2.2), and of length ``>= 2**n - (n+1)`` in the binary graph with
a single fault (Proposition 2.3).

The distributed, message-passing realisation of the very same steps lives in
:mod:`repro.network.protocols.ffc_protocol`; the two implementations are
checked against each other in the integration tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..exceptions import EmbeddingError, FaultBudgetExceededError, InvalidParameterError
from ..words.alphabet import Word
from ..words.necklaces import necklace_of
from .necklace_graph import BStar, ModifiedTree, NecklaceAdjacencyGraph, SpanningTree, build_bstar
from .ring_embedding import RingEmbedding

__all__ = ["FaultFreeCycleResult", "find_fault_free_cycle", "guaranteed_cycle_length"]


def guaranteed_cycle_length(d: int, n: int, f: int) -> int:
    """Return the paper's worst-case guarantee on the fault-free cycle length.

    * ``d**n - n*f`` for ``f <= d - 2`` node faults (Proposition 2.2);
    * ``2**n - (n + 1)`` for the binary graph with a single fault
      (Proposition 2.3);
    * raises :class:`FaultBudgetExceededError` outside those regimes (the
      algorithm still runs there, but no worst-case bound is promised).
    """
    if f < 0:
        raise InvalidParameterError("fault count must be >= 0")
    if f == 0:
        return d**n
    if f <= d - 2:
        return d**n - n * f
    if d == 2 and f == 1:
        return 2**n - (n + 1)
    raise FaultBudgetExceededError(
        f"no worst-case guarantee for f={f} faults in B({d},{n}); "
        f"the FFC algorithm may still find a long cycle"
    )


@dataclass(frozen=True)
class FaultFreeCycleResult:
    """Everything produced by one run of the FFC algorithm.

    Attributes
    ----------
    embedding:
        The fault-free ring as a validated :class:`RingEmbedding` (unit
        dilation/congestion; the cycle is a subgraph of the faulty graph).
    bstar:
        The surviving component the cycle spans.
    adjacency:
        The necklace adjacency graph ``N*`` of ``bstar``.
    spanning_tree:
        The spanning tree ``T`` of ``N*`` (Step 1).
    modified_tree:
        The modified tree ``D`` (Step 2).
    """

    embedding: RingEmbedding
    bstar: BStar
    adjacency: NecklaceAdjacencyGraph
    spanning_tree: SpanningTree
    modified_tree: ModifiedTree

    @property
    def cycle(self) -> tuple[Word, ...]:
        """The fault-free cycle as a node tuple (Hamiltonian on ``B*``)."""
        return self.embedding.cycle

    @property
    def length(self) -> int:
        return len(self.embedding.cycle)

    def meets_guarantee(self) -> bool:
        """Return True iff the cycle meets the applicable worst-case length bound.

        Outside the guaranteed fault regimes this returns True vacuously when
        the cycle spans the whole of ``B*`` (which the algorithm always
        achieves); the interesting check is for ``f <= d - 2`` and the binary
        single-fault case.
        """
        d, n = self.bstar.d, self.bstar.n
        f = len(self.bstar.faulty_nodes)
        try:
            bound = guaranteed_cycle_length(d, n, f)
        except FaultBudgetExceededError:
            return self.length == self.bstar.size
        return self.length >= bound


def find_fault_free_cycle(
    d: int,
    n: int,
    faults: Iterable[Sequence[int]] = (),
    root_hint: Sequence[int] | None = None,
    strict: bool = False,
) -> FaultFreeCycleResult:
    """Run the FFC algorithm and return the fault-free ring plus all intermediate structure.

    Parameters
    ----------
    d, n:
        De Bruijn parameters (``n >= 2``).
    faults:
        Faulty nodes (tuple words).  Their whole necklaces are excluded.
    root_hint:
        Optional preferred root ``R``; see :func:`~repro.core.necklace_graph.build_bstar`.
    strict:
        When True, raise :class:`FaultBudgetExceededError` if the number of
        faults exceeds the regime in which the paper guarantees a worst-case
        bound (``f <= d - 2``, or ``f = 1`` for ``d = 2``).  When False
        (default) the algorithm runs regardless, exactly like the paper's
        simulations, and simply returns the Hamiltonian cycle of whatever
        ``B*`` is left.

    Returns
    -------
    FaultFreeCycleResult
        With a validated embedding: a simple cycle of ``B(d, n)`` covering
        every node of ``B*`` and avoiding every faulty node.
    """
    fault_list = [tuple(int(x) for x in f) for f in faults]
    if strict:
        guaranteed_cycle_length(d, n, len(set(fault_list)))  # raises if out of regime

    bstar = build_bstar(d, n, fault_list, root_hint=root_hint)
    adjacency = NecklaceAdjacencyGraph(bstar)
    tree = SpanningTree.from_broadcast(adjacency)
    dtree = ModifiedTree.from_spanning_tree(tree)

    cycle = _assemble_cycle(bstar, adjacency, dtree)
    embedding = RingEmbedding(
        d=d,
        n=n,
        cycle=tuple(cycle),
        faulty_nodes=frozenset(fault_list),
    )
    embedding.validate()
    if len(cycle) != bstar.size:
        raise EmbeddingError(
            f"FFC cycle has length {len(cycle)} but B* has {bstar.size} nodes"
        )
    return FaultFreeCycleResult(
        embedding=embedding,
        bstar=bstar,
        adjacency=adjacency,
        spanning_tree=tree,
        modified_tree=dtree,
    )


def _assemble_cycle(
    bstar: BStar, adjacency: NecklaceAdjacencyGraph, dtree: ModifiedTree
) -> list[Word]:
    """Step 3: follow the successor rule from the root until the cycle closes."""
    successor_cache: dict[Word, Word] = {}

    def successor(node: Word) -> Word:
        cached = successor_cache.get(node)
        if cached is not None:
            return cached
        w = node[1:]
        nk = adjacency.necklace_of(node)
        target = dtree.successor_necklace(nk, w)
        if target is not None:
            result = adjacency.entry_node(target, w)
        else:
            result = node[1:] + node[:1]  # necklace successor w alpha
        successor_cache[node] = result
        return result

    start = bstar.root
    cycle = [start]
    current = successor(start)
    while current != start:
        if len(cycle) > bstar.size:
            raise EmbeddingError("FFC successor walk failed to close into a cycle")
        cycle.append(current)
        current = successor(current)
    return cycle


def necklaces_visited_in_order(result: FaultFreeCycleResult) -> list:
    """Return the necklace of every cycle node, in cycle order (diagnostic helper).

    The corresponding necklace path is the Eulerian circuit ``J`` of the
    modified tree ``D`` used in the correctness proof (Lemma 2.2); exposing it
    makes the proof's structure visible in examples and tests.
    """
    d = result.bstar.d
    return [necklace_of(node, d) for node in result.cycle]
