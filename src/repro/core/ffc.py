"""The Fault-Free Cycle (FFC) algorithm of Chapter 2 (centralized version).

Given a set of faulty processors in ``B(d, n)``, the algorithm

1. removes every *necklace* (rotation cycle) containing a faulty node and
   keeps the largest surviving component ``B*``;
2. builds the necklace adjacency graph ``N*`` of ``B*`` and a spanning tree
   ``T`` of ``N*`` whose same-label edge groups are height-one stars (derived
   from a BFS broadcast over ``B*``);
3. rewrites each star as a directed label cycle (the modified tree ``D``) and
   reads off the successor of every node of ``B*``: a node ``alpha w`` is
   followed by ``w beta`` in the next necklace if ``D`` has an outgoing
   ``w``-edge there, and by its own rotation ``w alpha`` otherwise.

The result is a Hamiltonian cycle of ``B*`` (Proposition 2.1) — hence a
fault-free ring of length ``|B*| >= d**n - n*f`` whenever ``f <= d - 2``
(Proposition 2.2), and of length ``>= 2**n - (n+1)`` in the binary graph with
a single fault (Proposition 2.3).

The distributed, message-passing realisation of the very same steps lives in
:mod:`repro.network.protocols.ffc_protocol`; the two implementations are
checked against each other in the integration tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..exceptions import EmbeddingError, FaultBudgetExceededError, InvalidParameterError
from ..words.alphabet import Word
from ..words.necklaces import necklace_of
from .necklace_graph import (
    BStar,
    FFCEngine,
    ModifiedTree,
    NecklaceAdjacencyGraph,
    SpanningTree,
    build_bstar,
)
from .ring_embedding import RingEmbedding

__all__ = ["FaultFreeCycleResult", "find_fault_free_cycle", "guaranteed_cycle_length"]


def guaranteed_cycle_length(d: int, n: int, f: int) -> int:
    """Return the paper's worst-case guarantee on the fault-free cycle length.

    * ``d**n - n*f`` for ``f <= d - 2`` node faults (Proposition 2.2);
    * ``2**n - (n + 1)`` for the binary graph with a single fault
      (Proposition 2.3);
    * raises :class:`FaultBudgetExceededError` outside those regimes (the
      algorithm still runs there, but no worst-case bound is promised).
    """
    if f < 0:
        raise InvalidParameterError("fault count must be >= 0")
    if f == 0:
        return d**n
    if f <= d - 2:
        return d**n - n * f
    if d == 2 and f == 1:
        return 2**n - (n + 1)
    raise FaultBudgetExceededError(
        f"no worst-case guarantee for f={f} faults in B({d},{n}); "
        f"the FFC algorithm may still find a long cycle"
    )


class FaultFreeCycleResult:
    """Everything produced by one run of the FFC algorithm.

    The integer kernel computes only the cycle itself; the readable necklace
    scaffolding (``N*``, ``T``, ``D``) is materialised lazily on first access
    so that hot-path callers (fault sweeps, benchmarks) never pay for it.
    The tuple pipeline (``kernel="tuple"``) attaches it eagerly.

    Attributes
    ----------
    embedding:
        The fault-free ring as a validated :class:`RingEmbedding` (unit
        dilation/congestion; the cycle is a subgraph of the faulty graph).
    bstar:
        The surviving component the cycle spans.
    adjacency:
        The necklace adjacency graph ``N*`` of ``bstar``.
    spanning_tree:
        The spanning tree ``T`` of ``N*`` (Step 1).
    modified_tree:
        The modified tree ``D`` (Step 2).
    """

    def __init__(
        self,
        embedding: RingEmbedding,
        bstar: BStar,
        adjacency: NecklaceAdjacencyGraph | None = None,
        spanning_tree: SpanningTree | None = None,
        modified_tree: ModifiedTree | None = None,
        engine: FFCEngine | None = None,
    ) -> None:
        self.embedding = embedding
        self.bstar = bstar
        self._adjacency = adjacency
        self._spanning_tree = spanning_tree
        self._modified_tree = modified_tree
        self._engine = engine

    @property
    def adjacency(self) -> NecklaceAdjacencyGraph:
        """The necklace adjacency graph ``N*`` (built on demand)."""
        if self._adjacency is None:
            self._adjacency = NecklaceAdjacencyGraph(self.bstar)
        return self._adjacency

    @property
    def spanning_tree(self) -> SpanningTree:
        """The spanning tree ``T`` (built on demand, reusing the kernel's engine)."""
        if self._spanning_tree is None:
            self._spanning_tree = SpanningTree.from_broadcast(
                self.adjacency, engine=self._engine
            )
        return self._spanning_tree

    @property
    def modified_tree(self) -> ModifiedTree:
        """The modified tree ``D`` (built on demand)."""
        if self._modified_tree is None:
            self._modified_tree = ModifiedTree.from_spanning_tree(self.spanning_tree)
        return self._modified_tree

    @property
    def cycle(self) -> tuple[Word, ...]:
        """The fault-free cycle as a node tuple (Hamiltonian on ``B*``)."""
        return self.embedding.cycle

    @property
    def length(self) -> int:
        return len(self.embedding.cycle)

    def meets_guarantee(self) -> bool:
        """Return True iff the cycle meets the applicable worst-case length bound.

        Outside the guaranteed fault regimes this returns True vacuously when
        the cycle spans the whole of ``B*`` (which the algorithm always
        achieves); the interesting check is for ``f <= d - 2`` and the binary
        single-fault case.
        """
        d, n = self.bstar.d, self.bstar.n
        f = len(self.bstar.faulty_nodes)
        try:
            bound = guaranteed_cycle_length(d, n, f)
        except FaultBudgetExceededError:
            return self.length == self.bstar.size
        return self.length >= bound


def find_fault_free_cycle(
    d: int,
    n: int,
    faults: Iterable[Sequence[int]] = (),
    root_hint: Sequence[int] | None = None,
    strict: bool = False,
    kernel: str = "codec",
) -> FaultFreeCycleResult:
    """Run the FFC algorithm and return the fault-free ring plus all intermediate structure.

    Parameters
    ----------
    d, n:
        De Bruijn parameters (``n >= 2``).
    faults:
        Faulty nodes (tuple words).  Their whole necklaces are excluded.
    root_hint:
        Optional preferred root ``R``; see :func:`~repro.core.necklace_graph.build_bstar`.
    strict:
        When True, raise :class:`FaultBudgetExceededError` if the number of
        faults exceeds the regime in which the paper guarantees a worst-case
        bound (``f <= d - 2``, or ``f = 1`` for ``d = 2``).  When False
        (default) the algorithm runs regardless, exactly like the paper's
        simulations, and simply returns the Hamiltonian cycle of whatever
        ``B*`` is left.
    kernel:
        ``"codec"`` (default) runs Steps 1.1–3 on integer codes via
        :class:`~repro.core.necklace_graph.FFCEngine`; ``"tuple"`` runs the
        readable reference implementation in
        :mod:`repro.core.tuple_reference`.  Both produce identical cycles
        (the test-suite pins this); the codec kernel is the fast path.

    Returns
    -------
    FaultFreeCycleResult
        With a validated embedding: a simple cycle of ``B(d, n)`` covering
        every node of ``B*`` and avoiding every faulty node.
    """
    if kernel not in ("codec", "tuple"):
        raise InvalidParameterError(f"kernel must be 'codec' or 'tuple', got {kernel!r}")
    fault_list = [tuple(int(x) for x in f) for f in faults]
    if strict:
        guaranteed_cycle_length(d, n, len(set(fault_list)))  # raises if out of regime

    if kernel == "tuple":
        from .tuple_reference import find_fault_free_cycle_reference

        return find_fault_free_cycle_reference(d, n, fault_list, root_hint=root_hint)

    bstar = build_bstar(d, n, fault_list, root_hint=root_hint)
    engine = FFCEngine(bstar)
    cycle_codes = engine.cycle_codes()
    cycle = bstar.codec.decode_many(cycle_codes)
    embedding = RingEmbedding(
        d=d,
        n=n,
        cycle=tuple(cycle),
        faulty_nodes=frozenset(fault_list),
    )
    embedding.validate()
    if len(cycle) != bstar.size:
        raise EmbeddingError(
            f"FFC cycle has length {len(cycle)} but B* has {bstar.size} nodes"
        )
    return FaultFreeCycleResult(embedding=embedding, bstar=bstar, engine=engine)


def necklaces_visited_in_order(result: FaultFreeCycleResult) -> list:
    """Return the necklace of every cycle node, in cycle order (diagnostic helper).

    The corresponding necklace path is the Eulerian circuit ``J`` of the
    modified tree ``D`` used in the correctness proof (Lemma 2.2); exposing it
    makes the proof's structure visible in examples and tests.
    """
    d = result.bstar.d
    return [necklace_of(node, d) for node in result.cycle]
