"""Fault-free Hamiltonian cycles under edge failures (Sections 3.3 and 3.4).

Two complementary mechanisms are provided, exactly as in the paper:

* **Shifted maximal cycles** (Proposition 3.3).  For a prime-power ``d`` the
  ``d`` cycles ``{s + C}`` are edge-disjoint, so at most ``f`` of them are hit
  by ``f`` faults; a surviving one is patched into a Hamiltonian cycle through
  one of ``d - 1`` candidate edge pairs, at most one of which each fault can
  spoil — tolerating ``d - 2`` edge faults.  Composite ``d`` splits every
  faulty edge into its coprime prime-power projections (Rees decomposition)
  and recurses, tolerating ``\\varphi(d)`` faults.
* **Disjoint Hamiltonian cycles** (Proposition 3.4).  With ``psi(d)``
  pairwise disjoint HCs available (Section 3.2), any ``psi(d) - 1`` edge
  faults leave at least one of them untouched.

``find_edge_fault_free_hc`` combines both and therefore realises the
``max(psi(d) - 1, varphi(d))`` tolerance of Proposition 3.4.  Section 3.4's
transfer to wrapped butterflies (Propositions 3.5/3.6) is implemented by
projecting butterfly edge faults onto De Bruijn edge faults and lifting the
resulting cycle back through the map ``Phi``.
"""

from __future__ import annotations

from collections.abc import Iterable
from math import gcd

from ..exceptions import EmbeddingError, FaultBudgetExceededError, InvalidParameterError
from ..gf.field import GF
from ..gf.lfsr import default_maximal_cycle_recurrence, maximal_cycle, shifted_cycle
from ..gf.modular import is_prime_power, prime_factorization
from ..graphs.butterfly import ButterflyNode, lift_cycle
from ..words.alphabet import Word
from ..words.rotation import rotate_left
from .bounds import edge_fault_phi, edge_fault_tolerance, psi
from .disjoint_hc import disjoint_hamiltonian_cycles
from .sequences import (
    edges_of_sequence,
    is_hamiltonian_sequence,
    nodes_of_sequence,
    rees_composition,
)

__all__ = [
    "normalize_edge_faults",
    "edge_fault_free_hc_prime_power",
    "edge_fault_free_hc_composite",
    "find_edge_fault_free_hc",
    "butterfly_edge_fault_free_hc",
    "butterfly_disjoint_hamiltonian_cycles",
    "project_butterfly_edge",
]


def normalize_edge_faults(d: int, n: int, faults: Iterable) -> set[Word]:
    """Normalise edge faults to their ``(n+1)``-tuple labels.

    Accepts each fault either as an ``(n+1)``-tuple/word or as a pair
    ``(src, dst)`` of adjacent nodes.
    """
    out: set[Word] = set()
    for fault in faults:
        fault = tuple(fault)
        if len(fault) == 2 and isinstance(fault[0], (tuple, list)):
            src = tuple(int(x) for x in fault[0])
            dst = tuple(int(x) for x in fault[1])
            if len(src) != n or len(dst) != n or src[1:] != dst[:-1]:
                raise InvalidParameterError(f"({src}, {dst}) is not an edge of B({d},{n})")
            label = src + (dst[-1],)
        else:
            label = tuple(int(x) for x in fault)
            if len(label) != n + 1:
                raise InvalidParameterError(
                    f"edge fault {label} must be an (n+1)-tuple or a node pair"
                )
        if any(not 0 <= x < d for x in label):
            raise InvalidParameterError(f"edge fault {label} has digits outside Z_{d}")
        out.add(label)
    return out


def edge_fault_free_hc_prime_power(
    d: int, n: int, faults: Iterable, strict: bool = False
) -> list[int]:
    """Proposition 3.3 construction for prime-power ``d``.

    Scans the ``d`` shifted maximal cycles for one that avoids every faulty
    edge, then scans its ``d - 1`` patch-edge pairs for a fault-free pair.
    With at most ``d - 2`` faults both scans are guaranteed to succeed; with
    more faults the scan may still succeed (and ``strict=False`` lets it try).
    """
    if not is_prime_power(d):
        raise InvalidParameterError(f"prime-power construction requires a prime power, got {d}")
    if n < 2:
        raise InvalidParameterError("edge-fault embedding requires n >= 2")
    fault_labels = normalize_edge_faults(d, n, faults)
    if strict and len(fault_labels) > d - 2:
        raise FaultBudgetExceededError(
            f"Proposition 3.3 guarantees tolerance of {d - 2} edge faults for B({d},{n}); "
            f"got {len(fault_labels)}"
        )
    recurrence = default_maximal_cycle_recurrence(d, n)
    field = GF(d)
    base = maximal_cycle(d, n, recurrence=recurrence)
    omega = recurrence.coefficient_sum

    for s in range(d):
        shifted = shifted_cycle(base, s, field)
        if set(edges_of_sequence(shifted, n)) & fault_labels:
            continue
        # the cycle s + C is fault-free; look for a fault-free patch pair
        # (a s^n, s^n a_hat) over the d - 1 choices of entry digit a != s.
        nodes = nodes_of_sequence(shifted, n)
        position = {node: i for i, node in enumerate(nodes)}
        for a in range(d):
            if a == s:
                continue
            # node a s^{n-1} is followed in s + C by s^{n-1} a_hat; read a_hat
            # directly off the cycle rather than re-deriving equation (3.3).
            i = position[(a,) + (s,) * (n - 1)]
            a_hat = shifted[(i + n) % len(shifted)]
            edge_in = (a,) + (s,) * n          # a s^{n-1} -> s^n
            edge_out = (s,) * n + (a_hat,)     # s^n -> s^{n-1} a_hat
            if edge_in in fault_labels or edge_out in fault_labels:
                continue
            j = position[(s,) * (n - 1) + (a_hat,)]
            candidate = shifted[:j] + [s] + shifted[j:]
            if set(edges_of_sequence(candidate, n)) & fault_labels:  # pragma: no cover
                continue
            return candidate
    raise EmbeddingError(
        f"no fault-free Hamiltonian cycle found among the shifted maximal cycles of B({d},{n}) "
        f"for {len(fault_labels)} edge faults"
    )


def edge_fault_free_hc_composite(
    d: int, n: int, faults: Iterable, strict: bool = False
) -> list[int]:
    """Proposition 3.3 construction for arbitrary ``d`` via Rees decomposition.

    Splits ``d = s * t`` with ``t`` the largest prime-power factor, projects
    every faulty edge onto its ``B(s, n)`` and ``B(t, n)`` edge images, assigns
    each fault to whichever side still has budget, and recurses.
    """
    if n < 2:
        raise InvalidParameterError("edge-fault embedding requires n >= 2")
    fault_labels = normalize_edge_faults(d, n, faults)
    if strict and len(fault_labels) > edge_fault_phi(d):
        raise FaultBudgetExceededError(
            f"Proposition 3.3 guarantees tolerance of {edge_fault_phi(d)} edge faults for "
            f"B({d},{n}); got {len(fault_labels)}"
        )
    if is_prime_power(d):
        return edge_fault_free_hc_prime_power(d, n, fault_labels, strict=False)

    factors = prime_factorization(d)
    t = factors[-1][0] ** factors[-1][1]
    s = d // t
    if gcd(s, t) != 1:  # pragma: no cover - prime-power parts are coprime
        raise InvalidParameterError("internal error: non-coprime Rees split")

    budget_s, budget_t = edge_fault_phi(s), edge_fault_phi(t)
    faults_s: set[Word] = set()
    faults_t: set[Word] = set()
    for label in sorted(fault_labels):
        a_edge = tuple(v // t for v in label)
        b_edge = tuple(v % t for v in label)
        if len(faults_s) < budget_s or len(faults_t) >= budget_t:
            faults_s.add(a_edge)
        else:
            faults_t.add(b_edge)
    cycle_s = edge_fault_free_hc_composite(s, n, faults_s, strict=False)
    cycle_t = edge_fault_free_hc_composite(t, n, faults_t, strict=False)
    composed = rees_composition(cycle_s, cycle_t, s, t, n)
    if set(edges_of_sequence(composed, n)) & fault_labels:
        raise EmbeddingError(
            "Rees composition unexpectedly used a faulty edge; "
            "the fault split exceeded both side budgets"
        )
    return composed


def find_edge_fault_free_hc(
    d: int, n: int, faults: Iterable, method: str = "auto", strict: bool = False
) -> list[int]:
    """Return a Hamiltonian cycle of ``B(d, n)`` avoiding the given edge faults.

    Parameters
    ----------
    method:
        ``"shifted"`` uses the Proposition 3.3 construction, ``"disjoint"``
        scans the ``psi(d)`` disjoint HCs of Section 3.2, ``"auto"`` (default)
        tries both — realising the ``max(psi(d)-1, varphi(d))`` tolerance of
        Proposition 3.4.
    strict:
        When True, refuse fault sets larger than the guaranteed tolerance of
        the chosen method instead of attempting them.

    Returns
    -------
    list[int]
        The Hamiltonian cycle as a circular digit sequence of length ``d**n``.
    """
    if method not in ("auto", "shifted", "disjoint"):
        raise InvalidParameterError(f"unknown method {method!r}")
    fault_labels = normalize_edge_faults(d, n, faults)
    if strict and method == "auto" and len(fault_labels) > edge_fault_tolerance(d):
        raise FaultBudgetExceededError(
            f"Proposition 3.4 guarantees tolerance of {edge_fault_tolerance(d)} edge faults "
            f"for B({d},{n}); got {len(fault_labels)}"
        )

    errors: list[str] = []
    if method in ("auto", "disjoint"):
        if not strict or len(fault_labels) <= psi(d) - 1 or method == "auto":
            for cycle in disjoint_hamiltonian_cycles(d, n):
                if not (set(edges_of_sequence(cycle, n)) & fault_labels):
                    return cycle
            errors.append("every disjoint Hamiltonian cycle is hit by a fault")
        if method == "disjoint" and strict and len(fault_labels) > psi(d) - 1:
            raise FaultBudgetExceededError(
                f"the disjoint-HC method tolerates {psi(d) - 1} faults, got {len(fault_labels)}"
            )
    if method in ("auto", "shifted"):
        try:
            return edge_fault_free_hc_composite(
                d, n, fault_labels, strict=(strict and method == "shifted")
            )
        except EmbeddingError as exc:
            errors.append(str(exc))
    raise EmbeddingError(
        f"no fault-free Hamiltonian cycle found for {len(fault_labels)} edge faults in "
        f"B({d},{n}): " + "; ".join(errors)
    )


# ---------------------------------------------------------------------------
# Butterfly extension (Section 3.4)
# ---------------------------------------------------------------------------

def project_butterfly_edge(src: ButterflyNode, dst: ButterflyNode, d: int) -> Word:
    """Project a butterfly edge onto the label of the De Bruijn edge it belongs to.

    The butterfly node ``(i, y)`` belongs to the class ``S_x`` with
    ``x = pi^i(y)``; by Lemma 3.8 the butterfly edge ``(i, y) -> (i+1, y')``
    projects onto the De Bruijn edge ``pi^i(y) -> pi^{i+1}(y')``, returned
    here as its ``(n+1)``-tuple label.
    """
    level_src, col_src = src
    level_dst, col_dst = dst
    n = len(col_src)
    if (level_src + 1) % n != level_dst % n:
        raise InvalidParameterError(f"({src}, {dst}) does not advance one butterfly level")
    u = rotate_left(tuple(int(x) for x in col_src), level_src % n)
    v = rotate_left(tuple(int(x) for x in col_dst), level_dst % n)
    if u[1:] != v[:-1]:
        raise InvalidParameterError(f"({src}, {dst}) does not project onto a De Bruijn edge")
    if any(not 0 <= x < d for x in u + v):
        raise InvalidParameterError("butterfly edge digits outside the alphabet")
    return u + (v[-1],)


def butterfly_edge_fault_free_hc(
    d: int, n: int, faulty_edges: Iterable[tuple[ButterflyNode, ButterflyNode]], strict: bool = False
) -> list[ButterflyNode]:
    """Proposition 3.5: a fault-free Hamiltonian cycle of ``F(d, n)`` under edge faults.

    Requires ``gcd(d, n) = 1`` so that the lift of a De Bruijn Hamiltonian
    cycle (length ``d**n``) has length ``lcm(d**n, n) = n * d**n`` — the whole
    butterfly.  Tolerates ``max(psi(d)-1, varphi(d))`` butterfly edge faults.
    """
    if gcd(d, n) != 1:
        raise InvalidParameterError(
            "the butterfly transfer requires gcd(d, n) = 1 (Proposition 3.5)"
        )
    projected = {project_butterfly_edge(src, dst, d) for src, dst in faulty_edges}
    debruijn_cycle_seq = find_edge_fault_free_hc(d, n, projected, strict=strict)
    debruijn_nodes = nodes_of_sequence(debruijn_cycle_seq, n)
    lifted = lift_cycle(debruijn_nodes, d)
    if len(lifted) != n * d**n:  # pragma: no cover - guaranteed by gcd(d, n) = 1
        raise EmbeddingError("lifted cycle does not cover the butterfly")
    return lifted


def butterfly_disjoint_hamiltonian_cycles(d: int, n: int) -> list[list[ButterflyNode]]:
    """Proposition 3.6: ``psi(d)`` disjoint Hamiltonian cycles of ``F(d, n)``.

    Lifts the disjoint De Bruijn Hamiltonian cycles through ``Phi``; requires
    ``gcd(d, n) = 1``.
    """
    if gcd(d, n) != 1:
        raise InvalidParameterError(
            "the butterfly transfer requires gcd(d, n) = 1 (Proposition 3.6)"
        )
    out = []
    for seq in disjoint_hamiltonian_cycles(d, n):
        if not is_hamiltonian_sequence(seq, d, n):  # pragma: no cover - defensive
            raise EmbeddingError("non-Hamiltonian sequence in the disjoint family")
        out.append(lift_cycle(nodes_of_sequence(seq, n), d))
    return out
