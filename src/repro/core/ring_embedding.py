"""Ring embeddings: the result objects returned by the paper's algorithms.

Section 1.1 defines an embedding of the ring ``R_k`` into a graph ``G`` as a
one-to-one map of ring nodes to graph nodes and ring edges to graph paths,
measured by its *dilation* (longest image path) and *congestion* (most paths
through a single graph edge).  All embeddings constructed in the paper — and
hence in this package — have unit dilation and congestion: the embedded ring
is literally a subgraph (a simple cycle) of the surviving graph.

:class:`RingEmbedding` wraps such a cycle together with the fault set it
avoids and provides the validity checks (cycle property, fault avoidance,
dilation/congestion computation) that the tests and benchmarks rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import AlphabetError, EmbeddingError, InvalidParameterError
from ..graphs.debruijn import DeBruijnGraph
from ..words.alphabet import Word

__all__ = ["RingEmbedding", "embedding_dilation", "embedding_congestion"]


def _as_word(node: Sequence[int]) -> Word:
    return tuple(int(x) for x in node)


def embedding_dilation(ring_paths: Sequence[Sequence[Sequence[int]]]) -> int:
    """Return the dilation of an embedding given the image paths of the ring edges.

    Each element of ``ring_paths`` is the node path (including both
    endpoints) that one ring edge is mapped to; the dilation is the length of
    the longest such path.
    """
    if not ring_paths:
        raise InvalidParameterError("an embedding needs at least one ring edge")
    return max(len(path) - 1 for path in ring_paths)


def embedding_congestion(ring_paths: Sequence[Sequence[Sequence[int]]]) -> int:
    """Return the congestion: the number of ring-edge paths crossing the busiest graph edge."""
    if not ring_paths:
        raise InvalidParameterError("an embedding needs at least one ring edge")
    usage: dict[tuple[Word, Word], int] = {}
    for path in ring_paths:
        nodes = [_as_word(p) for p in path]
        for a, b in zip(nodes, nodes[1:]):
            usage[(a, b)] = usage.get((a, b), 0) + 1
    return max(usage.values()) if usage else 0


@dataclass(frozen=True)
class RingEmbedding:
    """A unit-dilation, unit-congestion ring embedded in a (possibly faulty) ``B(d, n)``.

    Attributes
    ----------
    d, n:
        Parameters of the host De Bruijn graph.
    cycle:
        The embedded ring as a tuple of host nodes in ring order; consecutive
        nodes (cyclically) are required to be joined by host edges.
    faulty_nodes:
        Nodes that the embedding promises to avoid.
    faulty_edges:
        Edges (as ``(src, dst)`` pairs) that the embedding promises to avoid.
    """

    d: int
    n: int
    cycle: tuple[Word, ...]
    faulty_nodes: frozenset[Word] = field(default_factory=frozenset)
    faulty_edges: frozenset[tuple[Word, Word]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        cycle = self.cycle
        if not (isinstance(cycle, tuple) and all(type(w) is tuple for w in cycle)):
            cycle = tuple(_as_word(w) for w in cycle)
        object.__setattr__(self, "cycle", cycle)
        object.__setattr__(
            self, "faulty_nodes", frozenset(_as_word(w) for w in self.faulty_nodes)
        )
        object.__setattr__(
            self,
            "faulty_edges",
            frozenset((_as_word(a), _as_word(b)) for a, b in self.faulty_edges),
        )

    # -- basic views ---------------------------------------------------------
    def __len__(self) -> int:
        """The ring length ``k``."""
        return len(self.cycle)

    @property
    def host(self) -> DeBruijnGraph:
        """The host graph ``B(d, n)``."""
        return DeBruijnGraph(self.d, self.n)

    @property
    def ring_edges(self) -> list[tuple[Word, Word]]:
        """The host edges used by the ring, in ring order (closing edge last)."""
        k = len(self.cycle)
        return [(self.cycle[i], self.cycle[(i + 1) % k]) for i in range(k)]

    @property
    def dilation(self) -> int:
        """Always 1: every ring edge maps to a single host edge."""
        return embedding_dilation([[a, b] for a, b in self.ring_edges])

    @property
    def congestion(self) -> int:
        """Always 1 for a valid embedding: no host edge is reused."""
        return embedding_congestion([[a, b] for a, b in self.ring_edges])

    # -- validity --------------------------------------------------------------
    def is_valid(self) -> bool:
        """Return True iff the ring is a simple host cycle avoiding all declared faults."""
        try:
            self.validate()
        except EmbeddingError:
            return False
        return True

    def validate(self) -> None:
        """Raise :class:`EmbeddingError` describing the first violated requirement.

        The cycle-structure checks are vectorized (the cycle is encoded as a
        base-``d`` integer array once, after which the edge condition
        ``y // d == x mod d**(n-1)`` covers every consecutive pair in one
        comparison), so validating the ``d**n``-node Hamiltonian cycles
        produced by the FFC kernel costs a few numpy passes instead of a
        Python loop over tuple slices.
        """
        k = len(self.cycle)
        if k == 0:
            raise EmbeddingError("embedded ring is empty")
        try:
            arr = np.asarray(self.cycle, dtype=np.int64)
        except (TypeError, ValueError):
            raise EmbeddingError("embedded ring is not a cycle of the host graph") from None
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise EmbeddingError("embedded ring is not a cycle of the host graph")
        if arr.min() < 0 or arr.max() >= self.d:
            raise AlphabetError(f"embedded ring contains digits outside Z_{self.d}")
        powers = self.d ** np.arange(self.n - 1, -1, -1, dtype=np.int64)
        codes = arr @ powers
        if np.unique(codes).size != k:
            raise EmbeddingError("embedded ring visits a node twice")
        high = self.d ** (self.n - 1)
        if k == 1:
            # a single node is a cycle only if it carries a self-loop (a^n)
            if codes[0] // self.d != codes[0] % high:
                raise EmbeddingError("embedded ring is not a cycle of the host graph")
        else:
            nxt = np.roll(codes, -1)
            if not np.all(nxt // self.d == codes % high):
                raise EmbeddingError("embedded ring is not a cycle of the host graph")
        if self.faulty_nodes:
            hit_nodes = set(self.cycle) & self.faulty_nodes
            if hit_nodes:
                raise EmbeddingError(f"embedded ring visits faulty nodes {sorted(hit_nodes)}")
        if self.faulty_edges:
            hit_edges = set(self.ring_edges) & self.faulty_edges
            if hit_edges:
                raise EmbeddingError(f"embedded ring uses faulty edges {sorted(hit_edges)}")

    def avoids(self, nodes: Iterable[Sequence[int]] = (), edges: Iterable[tuple] = ()) -> bool:
        """Return True iff the ring avoids the given extra nodes and edges."""
        node_set = {_as_word(w) for w in nodes}
        edge_set = {(_as_word(a), _as_word(b)) for a, b in edges}
        return not (set(self.cycle) & node_set) and not (set(self.ring_edges) & edge_set)

    def is_hamiltonian(self) -> bool:
        """Return True iff the ring covers every node of the host graph."""
        return len(self.cycle) == self.host.num_nodes

    # -- conversions --------------------------------------------------------------
    def as_sequence(self) -> list[int]:
        """Return the ring as a circular digit sequence (Section 3.1 representation)."""
        from .sequences import sequence_of_cycle

        return sequence_of_cycle(self.cycle)

    def rotated_to(self, start: Sequence[int]) -> "RingEmbedding":
        """Return the same embedding listed starting from ``start``."""
        start_w = _as_word(start)
        if start_w not in self.cycle:
            raise InvalidParameterError(f"{start_w} is not on the embedded ring")
        i = self.cycle.index(start_w)
        rotated = self.cycle[i:] + self.cycle[:i]
        return RingEmbedding(self.d, self.n, rotated, self.faulty_nodes, self.faulty_edges)
