"""Edge-disjoint Hamiltonian cycles in ``B(d, n)`` (Section 3.2).

The construction for a prime power ``d``:

1. take a *maximal cycle* ``C`` (period ``d**n - 1`` linear recurrence over
   ``GF(d)``) and its ``d`` termwise shifts ``s + C`` — pairwise edge-disjoint
   cycles each missing only the node ``s^n`` (Lemmas 3.1–3.3);
2. patch ``s^n`` into ``s + C`` by replacing the edge
   ``a s^{n-1} -> s^{n-1} \\hat a`` with the two edges through ``s^n``; the
   exit digit is ``\\hat a = s\\omega + f(s)(1 - \\omega)`` for a chosen
   conflict-avoidance function ``f`` with ``f(x) != x``;
3. choose ``f`` by one of three strategies (depending on the quadratic
   character of 2 modulo ``p``) so that the resulting Hamiltonian cycles
   ``H_s`` are pairwise edge-disjoint for a large set of shifts ``s``
   (Proposition 3.1 guarantees ``psi(p^e)`` of them).

For composite ``d`` the cycles of the coprime prime-power parts are combined
with the Rees composition (Lemma 3.6/3.7, Proposition 3.2), giving ``psi(d)``
pairwise disjoint Hamiltonian cycles overall.

All cycles are returned in the circular-sequence representation of
Section 3.1 (see :mod:`repro.core.sequences`).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..exceptions import InvalidParameterError, NotPrimePowerError
from ..gf.field import GF, GaloisField
from ..gf.lfsr import LinearRecurrence, default_maximal_cycle_recurrence, maximal_cycle, shifted_cycle
from ..gf.modular import as_prime_power, is_prime_power, prime_factorization
from .bounds import psi_prime_power, strategy_for_prime
from .sequences import is_hamiltonian_sequence, nodes_of_sequence, rees_composition, sequences_edge_disjoint

__all__ = [
    "PrimePowerHCFamily",
    "shifted_hamiltonian_cycle",
    "maximal_cycle_shifts",
    "conflict_function",
    "cycles_conflict",
    "disjoint_hamiltonian_cycles_prime_power",
    "disjoint_hamiltonian_cycles",
    "verify_pairwise_disjoint",
]


def maximal_cycle_shifts(
    d: int, n: int, recurrence: LinearRecurrence | None = None, initial=None
) -> tuple[LinearRecurrence, list[list[int]]]:
    """Return the recurrence and the ``d`` edge-disjoint shifted cycles ``{s + C}``.

    The shifts partition the ``d(d**n - 1)`` non-loop edges of ``B(d, n)``
    (Lemma 3.3); cycle ``s + C`` misses exactly the node ``s^n``.
    """
    if recurrence is None:
        recurrence = default_maximal_cycle_recurrence(d, n)
    base = maximal_cycle(d, n, recurrence=recurrence, initial=initial)
    field = recurrence.field
    return recurrence, [shifted_cycle(base, s, field) for s in range(d)]


def _exit_digit(field: GaloisField, omega: int, s: int, f_s: int) -> int:
    """Return ``\\hat a = s*omega + f(s)*(1 - omega)`` (the Definition before Lemma 3.4)."""
    return field.add(field.mul(s, omega), field.mul(f_s, field.sub(field.one, omega)))


def shifted_hamiltonian_cycle(
    d: int,
    n: int,
    s: int,
    f_s: int,
    recurrence: LinearRecurrence | None = None,
    initial=None,
) -> list[int]:
    """Return ``H_s``: the Hamiltonian cycle obtained by patching ``s^n`` into ``s + C``.

    Parameters
    ----------
    d, n:
        De Bruijn parameters; ``d`` must be a prime power and ``n >= 2``.
    s:
        The shift (an element of ``GF(d)`` in its canonical ``range(d)`` encoding).
    f_s:
        The value ``f(s)`` of the conflict-avoidance function; must differ from ``s``.
    recurrence, initial:
        Optional explicit maximal-cycle recurrence and initial state (used by
        the tests to reproduce the paper's worked Examples 3.2 and 3.4
        verbatim); defaults to the library-wide canonical maximal cycle.
    """
    if n < 2:
        raise InvalidParameterError("the patched cycles require n >= 2")
    if not is_prime_power(d):
        raise NotPrimePowerError(f"shifted Hamiltonian cycles require a prime-power d, got {d}")
    if recurrence is None:
        recurrence = default_maximal_cycle_recurrence(d, n)
    field = recurrence.field
    field._check(s)
    field._check(f_s)
    if f_s == s:
        raise InvalidParameterError("the conflict function must satisfy f(s) != s")
    base = maximal_cycle(d, n, recurrence=recurrence, initial=initial)
    shifted = shifted_cycle(base, s, field)
    omega = recurrence.coefficient_sum
    a_hat = _exit_digit(field, omega, s, f_s)
    # the patched edge enters s^n right before the node s^{n-1} a_hat;
    # locate that node among the circular windows of s + C.
    target = (s,) * (n - 1) + (a_hat,)
    nodes = nodes_of_sequence(shifted, n)
    try:
        j = nodes.index(target)
    except ValueError:  # pragma: no cover - target always exists since a_hat != s
        raise InvalidParameterError(f"node {target} not found on s + C") from None
    return shifted[:j] + [s] + shifted[j:]


def conflict_function(d: int) -> dict[int, int]:
    """Return the conflict-avoidance map ``f`` used for ``GF(d)`` (Strategies 1–3).

    The returned dict maps every shift ``s`` that the strategy patches to the
    value ``f(s)``; shifts that are not used (e.g. ``s = 0`` under Strategy 1)
    are absent.
    """
    p, _ = as_prime_power(d)
    field = GF(d)
    info = strategy_for_prime(p)
    f_map: dict[int, int] = {}
    if info["strategy"] == 1:
        for x in range(1, d):
            f_map[x] = 0
        return f_map
    lam = info["lambda"] % p
    lam_a = pow(lam, info["A"], p)
    for x in range(1, d):
        f_map[x] = field.mul(lam_a, x)
    f_map[0] = lam
    return f_map


def cycles_conflict(x: int, y: int, d: int, f_map: dict[int, int] | None = None) -> bool:
    """Return True iff ``H_x`` and ``H_y`` may share an edge according to Lemma 3.4.

    ``H_x`` and ``H_y`` have a common edge iff ``y in {f(x), 2x - f(x)}`` or
    ``x in {f(y), 2y - f(y)}`` (all arithmetic in ``GF(d)``).  This is the
    relation drawn in Figure 3.2 for ``d = 13``.
    """
    field = GF(d)
    if f_map is None:
        f_map = conflict_function(d)
    if x == y:
        return True

    def conflict_set(z: int) -> set[int]:
        if z not in f_map:
            return set()
        fz = f_map[z]
        two_z = field.add(z, z)
        return {fz, field.sub(two_z, fz)}

    return y in conflict_set(x) or x in conflict_set(y)


@dataclass(frozen=True)
class PrimePowerHCFamily:
    """The family of disjoint Hamiltonian cycles built for a prime power ``d``.

    Attributes
    ----------
    d, n:
        De Bruijn parameters.
    strategy:
        1, 2 or 3 — which of the paper's strategies was applied.
    f_map:
        The conflict-avoidance function ``f`` (shift -> ``f(shift)``).
    selected_shifts:
        The shifts ``s`` whose cycles ``H_s`` form the pairwise disjoint family.
    cycles:
        ``{s: H_s}`` as circular sequences of length ``d**n``.
    """

    d: int
    n: int
    strategy: int
    f_map: dict[int, int]
    selected_shifts: tuple[int, ...]
    cycles: dict[int, list[int]] = dataclass_field(repr=False, default_factory=dict)

    def as_list(self) -> list[list[int]]:
        return [self.cycles[s] for s in self.selected_shifts]


def disjoint_hamiltonian_cycles_prime_power(
    d: int, n: int, recurrence: LinearRecurrence | None = None, initial=None
) -> PrimePowerHCFamily:
    """Construct ``psi(d)`` pairwise disjoint Hamiltonian cycles for a prime power ``d``.

    Implements Strategies 1–3 of Section 3.2.1 with the strategy chosen
    automatically from the quadratic character of 2 modulo ``p`` (Lemma 3.5).
    """
    p, e = as_prime_power(d)
    if n < 2:
        raise InvalidParameterError("disjoint HC construction requires n >= 2")
    field = GF(d)
    info = strategy_for_prime(p)
    f_map = conflict_function(d)

    if info["strategy"] == 1:
        selected = list(range(1, d))
    else:
        lam = info["lambda"] % p
        # J = subgroup of GF(d)* generated by lambda = the nonzero prime-subfield
        # elements; E = the even powers of lambda (the quadratic residues of Z_p).
        subgroup = sorted({pow(lam, k, p) for k in range(p - 1)})
        even_powers = sorted({pow(lam, 2 * k, p) for k in range(1, (p - 1) // 2 + 1)})
        covered: set[int] = set()
        selected = []
        for g in range(1, d):
            if g in covered:
                continue
            # g is the smallest representative of a fresh coset g*J; the first
            # one encountered is g = 1 (the coset J itself), as required for
            # the optional H_0 addition.
            coset = {field.mul(g, j) for j in subgroup}
            covered |= coset
            selected.extend(field.mul(g, ev) for ev in even_powers)
        if info["strategy"] == 2 and (p - 1) // 2 % 2 == 0:
            selected.append(0)
        selected = sorted(set(selected))

    cycles = {
        s: shifted_hamiltonian_cycle(d, n, s, f_map[s], recurrence=recurrence, initial=initial)
        for s in selected
    }
    family = PrimePowerHCFamily(
        d=d,
        n=n,
        strategy=info["strategy"],
        f_map=f_map,
        selected_shifts=tuple(selected),
        cycles=cycles,
    )
    expected = psi_prime_power(p, e)
    if len(selected) < expected:  # pragma: no cover - construction matches Prop 3.1
        raise InvalidParameterError(
            f"constructed only {len(selected)} cycles; Proposition 3.1 promises {expected}"
        )
    return family


def disjoint_hamiltonian_cycles(d: int, n: int) -> list[list[int]]:
    """Return at least ``psi(d)`` pairwise edge-disjoint Hamiltonian cycles of ``B(d, n)``.

    Prime-power alphabets use the Section 3.2.1 construction directly;
    composite alphabets combine the prime-power families with the Rees
    composition (Section 3.2.2).  Every returned cycle is a Hamiltonian
    circular sequence of length ``d**n``.
    """
    if d < 2:
        raise InvalidParameterError("d must be >= 2")
    if n < 2:
        raise InvalidParameterError("disjoint HC construction requires n >= 2")
    if is_prime_power(d):
        return disjoint_hamiltonian_cycles_prime_power(d, n).as_list()

    parts = [p**e for p, e in prime_factorization(d)]
    current_d = parts[0]
    current = disjoint_hamiltonian_cycles_prime_power(current_d, n).as_list()
    for q in parts[1:]:
        q_family = disjoint_hamiltonian_cycles_prime_power(q, n).as_list()
        combined = [
            rees_composition(a, b, current_d, q, n) for a in current for b in q_family
        ]
        current = combined
        current_d *= q
    return current


def verify_pairwise_disjoint(cycles: list[list[int]], d: int, n: int) -> bool:
    """Return True iff every cycle is Hamiltonian and the family is pairwise edge-disjoint."""
    for c in cycles:
        if not is_hamiltonian_sequence(c, d, n):
            return False
    for i in range(len(cycles)):
        for j in range(i + 1, len(cycles)):
            if not sequences_edge_disjoint(cycles[i], cycles[j], n):
                return False
    return True
