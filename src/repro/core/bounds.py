"""Theoretical guarantees: ψ(d), φ(d), fault budgets and worst-case fault placements.

This module collects the closed-form quantities the paper tabulates:

* ``psi(d)`` — the guaranteed number of pairwise edge-disjoint Hamiltonian
  cycles of ``B(d, n)`` produced by the constructions of Section 3.2
  (Propositions 3.1/3.2; Table 3.1 lists ``psi(d)`` for ``2 <= d <= 38``).
* ``edge_fault_phi(d)`` — written ``\\varphi(d)`` in Section 3.3:
  ``p_1^{e_1} + ... + p_k^{e_k} - 2k`` for the prime factorisation of ``d``;
  Proposition 3.3 guarantees a fault-free Hamiltonian cycle for up to
  ``\\varphi(d)`` edge faults.
* ``edge_fault_tolerance(d) = max(psi(d) - 1, \\varphi(d))`` — Proposition 3.4
  and Table 3.2.
* the node-fault cycle-length guarantees of Propositions 2.2/2.3 and the
  adversarial fault placement showing they are tight (Section 2.5).
* the hypercube comparison quoted in the introduction to Chapter 2.
"""

from __future__ import annotations

from functools import lru_cache

from ..engine.caches import register_cache
from ..exceptions import InvalidParameterError
from ..gf.modular import (
    prime_factorization,
    primitive_roots,
    two_as_odd_power,
    two_as_odd_power_sum,
)
from ..words.alphabet import Word

__all__ = [
    "psi_prime_power",
    "psi",
    "edge_fault_phi",
    "edge_fault_tolerance",
    "disjoint_hc_upper_bound",
    "node_fault_cycle_bound",
    "binary_single_fault_bound",
    "worst_case_fault_placement",
    "table_3_1",
    "table_3_2",
    "hypercube_vs_debruijn",
    "strategy_for_prime",
]


@lru_cache(maxsize=512)
def strategy_for_prime(p: int) -> dict:
    """Select the disjoint-HC strategy of Section 3.2.1 for the prime ``p``.

    Returns a dict with keys:

    * ``"strategy"`` — 1, 2 or 3 (the paper's Strategy number);
    * ``"lambda"`` — the primitive root used (absent for Strategy 1);
    * ``"A"`` — the odd exponent with ``2 = lambda**A`` (Strategy 3) or
      ``2 = lambda**A + lambda**B`` (Strategy 2);
    * ``"B"`` — the second odd exponent (Strategy 2 only).

    Strategy 2 is preferred whenever some primitive root admits odd exponents
    ``A, B`` with ``lambda^A + lambda^B = 2`` *and* ``(p-1)/2`` is even,
    because only then can the extra cycle ``H_0`` be added (Proposition 3.1
    case (ii)); otherwise Strategy 3 (odd prime) or Strategy 1 (``p = 2``)
    is used.  Lemma 3.5 guarantees at least one strategy always applies.
    """
    if p == 2:
        return {"strategy": 1}
    # prefer strategy 2 when it buys the extra H_0, i.e. (p-1)/2 even
    best_partial = None
    for lam in primitive_roots(p):
        pair = two_as_odd_power_sum(p, root=lam)
        if pair is not None:
            info = {"strategy": 2, "lambda": lam, "A": pair[0], "B": pair[1]}
            if (p - 1) // 2 % 2 == 0:
                return info
            if best_partial is None:
                best_partial = info
    for lam in primitive_roots(p):
        exp = two_as_odd_power(p, root=lam)
        if exp is not None:
            return {"strategy": 3, "lambda": lam, "A": exp}
    if best_partial is not None:
        return best_partial
    raise InvalidParameterError(  # pragma: no cover - excluded by Lemma 3.5
        f"Lemma 3.5 violated for p={p}: no strategy applies"
    )


@lru_cache(maxsize=1024)
def psi_prime_power(p: int, e: int) -> int:
    """Return ``psi(p**e)``: guaranteed disjoint HCs in ``B(p**e, n)`` (Proposition 3.1).

    * ``p = 2``: ``p**e - 1`` (Strategy 1, optimal);
    * ``(p-1)/2`` even and condition (b) of Lemma 3.5 holds for some primitive
      root: ``(p**e + 1) / 2`` (Strategy 2 plus the extra cycle ``H_0``);
    * otherwise: ``(p**e - 1) / 2``.
    """
    if e < 1:
        raise InvalidParameterError("exponent must be >= 1")
    factors = prime_factorization(p)
    if len(factors) != 1 or factors[0][1] != 1:
        raise InvalidParameterError(f"{p} is not prime")
    q = p**e
    if p == 2:
        return q - 1
    info = strategy_for_prime(p)
    if info["strategy"] == 2 and (p - 1) // 2 % 2 == 0:
        return (q + 1) // 2
    return (q - 1) // 2


@lru_cache(maxsize=1024)
def psi(d: int) -> int:
    """Return ``psi(d)``: guaranteed disjoint HCs in ``B(d, n)`` (Proposition 3.2).

    Multiplicative over the coprime prime-power parts of ``d`` via the Rees
    composition: ``psi(d) = prod psi(p_i**e_i)``.
    """
    if d < 2:
        raise InvalidParameterError("psi(d) defined for d >= 2")
    result = 1
    for p, e in prime_factorization(d):
        result *= psi_prime_power(p, e)
    return result


def disjoint_hc_upper_bound(d: int) -> int:
    """Return ``d - 1``: the trivial upper bound on disjoint HCs in ``B(d, n)``.

    Some nodes (the constants ``a^n``) have only ``d - 1`` non-loop out-edges,
    so no more than ``d - 1`` edge-disjoint Hamiltonian cycles can exist.
    """
    if d < 2:
        raise InvalidParameterError("bound defined for d >= 2")
    return d - 1


@lru_cache(maxsize=1024)
def edge_fault_phi(d: int) -> int:
    """Return ``\\varphi(d) = p_1^{e_1} + ... + p_k^{e_k} - 2k`` (Section 3.3)."""
    if d < 2:
        raise InvalidParameterError("varphi(d) defined for d >= 2")
    factors = prime_factorization(d)
    return sum(p**e for p, e in factors) - 2 * len(factors)


def edge_fault_tolerance(d: int) -> int:
    """Return ``max(psi(d) - 1, varphi(d))``: tolerated edge faults (Proposition 3.4)."""
    return max(psi(d) - 1, edge_fault_phi(d))


def node_fault_cycle_bound(d: int, n: int, f: int) -> int:
    """Return the guaranteed fault-free cycle length ``d**n - n*f`` for ``f <= d-2`` node faults."""
    if f < 0 or f > d - 2:
        raise InvalidParameterError(f"Proposition 2.2 covers 0 <= f <= d-2, got f={f}")
    return d**n - n * f


def binary_single_fault_bound(n: int) -> int:
    """Return ``2**n - (n + 1)``: the binary single-fault guarantee (Proposition 2.3)."""
    if n < 2:
        raise InvalidParameterError("Proposition 2.3 requires n >= 2")
    return 2**n - (n + 1)


def worst_case_fault_placement(d: int, n: int, f: int) -> list[Word]:
    """Return the adversarial fault set ``{a^{n-1}(d-1) : 0 <= a <= f-1}`` of Section 2.5.

    With these ``f <= d - 2`` faults no fault-free cycle longer than
    ``d**n - n*f`` exists (each fault sits on its own aperiodic necklace of
    length exactly ``n`` and the line-graph argument shows the remainder
    cannot all be threaded into one cycle), so Proposition 2.2 is tight.
    """
    if f < 0 or f > d - 2:
        raise InvalidParameterError(f"the worst-case placement needs 0 <= f <= d-2, got f={f}")
    if n < 2:
        raise InvalidParameterError("worst-case placement requires n >= 2")
    return [(a,) * (n - 1) + (d - 1,) for a in range(f)]


def table_3_1(d_max: int = 38) -> dict[int, int]:
    """Return ``{d: psi(d)}`` for ``2 <= d <= d_max`` (Table 3.1 of the paper)."""
    return {d: psi(d) for d in range(2, d_max + 1)}


def table_3_2(d_max: int = 35) -> dict[int, int]:
    """Return ``{d: max(psi(d)-1, varphi(d))}`` for ``2 <= d <= d_max`` (Table 3.2)."""
    return {d: edge_fault_tolerance(d) for d in range(2, d_max + 1)}


def hypercube_vs_debruijn(n_cube: int = 12, d: int = 4, n: int = 6, f: int = 2) -> dict[str, int]:
    """Return the Chapter 2 comparison between ``Q(n_cube)`` and ``B(d, n)`` under ``f`` faults.

    Defaults reproduce the paper's 4096-node example: with two faults the
    hypercube guarantees a cycle of 4092 nodes using 24,576 edges while the
    De Bruijn graph guarantees at least 4084 nodes using 16,384 edges.
    """
    from ..graphs.hypercube import fault_free_cycle_bound

    if 2**n_cube != d**n:
        raise InvalidParameterError("comparison expects equally sized networks")
    return {
        "nodes": d**n,
        "hypercube_cycle": fault_free_cycle_bound(n_cube, f),
        "hypercube_edges": n_cube * 2 ** (n_cube - 1),
        "debruijn_cycle": node_fault_cycle_bound(d, n, f),
        "debruijn_edges": d ** (n + 1),
    }


# Audit registration (REP001): the bound tables memoise per (d, n, f) and a
# resident sweep service hits them constantly; the /stats audit must see them.
register_cache("bounds.strategy_for_prime", strategy_for_prime)
register_cache("bounds.psi_prime_power", psi_prime_power)
register_cache("bounds.psi", psi)
register_cache("bounds.edge_fault_phi", edge_fault_phi)
