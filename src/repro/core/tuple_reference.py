"""Reference tuple-encoded FFC pipeline (the pre-codec implementation).

The production path of :func:`repro.core.ffc.find_fault_free_cycle` runs on
integer codes (:class:`repro.core.necklace_graph.FFCEngine`).  This module
preserves the original, readable tuple-of-digits implementation of Steps
1.1–3 exactly as it stood before the codec refactor.  It exists for two
reasons:

* **cross-validation** — the test-suite asserts that the integer kernel and
  this reference produce identical spanning trees and identical cycles on
  randomized fault sets, so a regression in either implementation is caught
  by the other;
* **benchmarking** — ``benchmarks/test_codec_speedup.py`` measures the
  integer kernel against this baseline (the ISSUE's ``>= 5x`` acceptance
  criterion is asserted there).

Nothing here is exported from :mod:`repro.core`; reach for
``find_fault_free_cycle(..., kernel="tuple")`` instead of importing this
module directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..exceptions import DisconnectedGraphError, EmbeddingError, InvalidParameterError
from ..graphs.components import component_of, residual_after_node_faults
from ..graphs.debruijn import DeBruijnGraph
from ..words.alphabet import Word, int_to_word, word_to_int
from ..words.necklaces import Necklace
from ..words.rotation import min_rotation
from .necklace_graph import (
    BStar,
    ModifiedTree,
    NecklaceAdjacencyGraph,
    SpanningTree,
)
from .ring_embedding import RingEmbedding

__all__ = [
    "build_bstar_reference",
    "spanning_tree_from_broadcast_reference",
    "assemble_cycle_reference",
    "find_fault_free_cycle_reference",
]


def build_bstar_reference(
    d: int,
    n: int,
    faults: Iterable[Sequence[int]],
    root_hint: Sequence[int] | None = None,
) -> BStar:
    """The original ``B*`` construction: tuple decoding and Booth root scans."""
    if n < 2:
        raise InvalidParameterError("the FFC machinery requires n >= 2")
    fault_words = [tuple(int(x) for x in f) for f in faults]
    residual = residual_after_node_faults(d, n, fault_words, remove_whole_necklaces=True)
    if residual.num_alive == 0:
        raise DisconnectedGraphError("all nodes of B(d, n) are contained in faulty necklaces")

    hint_word: Word | None = None
    if root_hint is not None:
        hint_word = tuple(int(x) for x in root_hint)
        if len(hint_word) != n:
            raise InvalidParameterError(f"root hint {hint_word} must have length {n}")
        if not residual.is_alive(word_to_int(hint_word, d)):
            hint_word = None

    if hint_word is not None:
        comp = component_of(residual, word_to_int(hint_word, d))
    else:
        best_root = None
        best_len = -1
        seen: set[int] = set()
        for value in residual.alive_nodes():
            if int(value) in seen:
                continue
            c = component_of(residual, int(value))
            seen.update(int(v) for v in c)
            if len(c) > best_len:
                best_len = len(c)
                best_root = c
        comp = best_root
    node_set = frozenset(int_to_word(int(v), d, n) for v in comp)

    if hint_word is not None:
        root = min_rotation(hint_word)
    else:
        root = min(w for w in node_set if w == min_rotation(w))
    if root not in node_set:  # pragma: no cover - defensive: necklaces are whole
        raise EmbeddingError("internal error: chosen root fell outside B*")
    return BStar(d=d, n=n, nodes=node_set, root=root, faulty_nodes=frozenset(fault_words))


def spanning_tree_from_broadcast_reference(adjacency: NecklaceAdjacencyGraph) -> SpanningTree:
    """Steps 1.1–1.2 on tuple words: BFS broadcast, then per-necklace election."""
    bstar = adjacency.bstar
    d = bstar.d
    root_node = bstar.root

    # --- Step 1.1: BFS broadcast from R over B*; T' parent = minimal
    # predecessor at the previous level (the tie rule of the paper).
    levels: dict[Word, int] = {root_node: 0}
    frontier = [root_node]
    while frontier:
        nxt: list[Word] = []
        for node in frontier:
            for a in range(d):
                succ = node[1:] + (a,)
                if succ in bstar.nodes and succ not in levels:
                    levels[succ] = levels[node] + 1
                    nxt.append(succ)
        frontier = nxt
    if len(levels) != bstar.size:
        raise DisconnectedGraphError(
            "B* is not connected from the chosen root; pick the component's own root"
        )
    node_parents: dict[Word, Word] = {}
    for node, level in levels.items():
        if node == root_node:
            continue
        preds = [(a,) + node[:-1] for a in range(d)]
        candidates = [p for p in preds if levels.get(p, -1) == level - 1]
        node_parents[node] = min(candidates)

    # --- Step 1.2: per necklace, pick the earliest-received member and
    # inherit its T' parent's necklace; label the tree edge by the chosen
    # member's length-(n-1) prefix w (the member reads "w alpha").
    root_necklace = adjacency.necklace_of(root_node)
    parent: dict[Necklace, tuple[Necklace, Word]] = {}
    for nk in adjacency.necklaces:
        if nk == root_necklace:
            continue
        members = sorted(node for node in nk.node_set if node in bstar.nodes)
        chosen = min(members, key=lambda m: (levels[m], m))
        label = chosen[:-1]  # chosen = w alpha -> label w
        parent_node = node_parents[chosen]  # beta w
        parent[nk] = (adjacency.necklace_of(parent_node), label)
    return SpanningTree(
        adjacency=adjacency,
        root=root_necklace,
        parent=parent,
        node_levels=levels,
        node_parents=node_parents,
    )


def assemble_cycle_reference(
    bstar: BStar, adjacency: NecklaceAdjacencyGraph, dtree: ModifiedTree
) -> list[Word]:
    """Step 3 on tuple words: follow the successor rule until the cycle closes."""
    successor_cache: dict[Word, Word] = {}

    def successor(node: Word) -> Word:
        cached = successor_cache.get(node)
        if cached is not None:
            return cached
        w = node[1:]
        nk = adjacency.necklace_of(node)
        target = dtree.successor_necklace(nk, w)
        if target is not None:
            result = adjacency.entry_node(target, w)
        else:
            result = node[1:] + node[:1]  # necklace successor w alpha
        successor_cache[node] = result
        return result

    start = bstar.root
    cycle = [start]
    current = successor(start)
    while current != start:
        if len(cycle) > bstar.size:
            raise EmbeddingError("FFC successor walk failed to close into a cycle")
        cycle.append(current)
        current = successor(current)
    return cycle


def find_fault_free_cycle_reference(
    d: int,
    n: int,
    faults: Iterable[Sequence[int]] = (),
    root_hint: Sequence[int] | None = None,
):
    """The complete tuple pipeline, returning the same result type as the kernel.

    The returned :class:`~repro.core.ffc.FaultFreeCycleResult` carries its
    scaffolding eagerly (the tuple pipeline builds it anyway).
    """
    from .ffc import FaultFreeCycleResult

    fault_list = [tuple(int(x) for x in f) for f in faults]
    bstar = build_bstar_reference(d, n, fault_list, root_hint=root_hint)
    adjacency = NecklaceAdjacencyGraph(bstar)
    tree = spanning_tree_from_broadcast_reference(adjacency)
    dtree = ModifiedTree.from_spanning_tree(tree)

    cycle = assemble_cycle_reference(bstar, adjacency, dtree)
    embedding = RingEmbedding(
        d=d,
        n=n,
        cycle=tuple(cycle),
        faulty_nodes=frozenset(fault_list),
    )
    _validate_embedding_reference(embedding)
    if len(cycle) != bstar.size:
        raise EmbeddingError(
            f"FFC cycle has length {len(cycle)} but B* has {bstar.size} nodes"
        )
    return FaultFreeCycleResult(
        embedding=embedding,
        bstar=bstar,
        adjacency=adjacency,
        spanning_tree=tree,
        modified_tree=dtree,
    )


def _validate_embedding_reference(embedding: RingEmbedding) -> None:
    """The original per-edge tuple validation of the embedded ring."""
    host = DeBruijnGraph(embedding.d, embedding.n)
    if len(embedding.cycle) == 0:
        raise EmbeddingError("embedded ring is empty")
    if len(set(embedding.cycle)) != len(embedding.cycle):
        raise EmbeddingError("embedded ring visits a node twice")
    if not host.is_cycle(embedding.cycle):
        raise EmbeddingError("embedded ring is not a cycle of the host graph")
    hit_nodes = set(embedding.cycle) & embedding.faulty_nodes
    if hit_nodes:
        raise EmbeddingError(f"embedded ring visits faulty nodes {sorted(hit_nodes)}")
