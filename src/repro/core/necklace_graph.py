"""The necklace adjacency graph ``N*`` and its spanning/modified trees.

This module implements the combinatorial scaffolding of the FFC algorithm
(Chapter 2 of the paper):

1. ``B*`` — the largest component of ``B(d, n)`` after removing the faulty
   necklaces (Section 2.2).  ``B*`` is always a union of complete necklaces
   and, because removing whole necklaces keeps the digraph balanced, its weak
   and strong components coincide.
2. ``N*`` — the *necklace adjacency graph*: one vertex per necklace of
   ``B*``, with an edge labelled ``w`` (a ``(n-1)``-tuple) from ``[X]`` to
   ``[Y]`` whenever ``alpha w`` lies on ``[X]`` and ``beta w`` lies on
   ``[Y]`` for distinct digits ``alpha != beta``.
3. ``T`` — a spanning tree of ``N*`` in which, for every label ``w``, the
   ``w``-labelled edges form a height-one star.  It is derived from the BFS
   broadcast tree ``T'`` of ``B*`` exactly as prescribed by Steps 1.1/1.2 of
   the network-level algorithm (Section 2.4), so the distributed protocol in
   :mod:`repro.network` and this centralized version produce identical trees.
4. ``D`` — the *modified tree*: every star of ``T`` rewritten as a directed
   cycle over the same necklaces (Step 2), ordering the necklaces by their
   canonical representative as the paper's implementation section does.

The Hamiltonian cycle itself is assembled from ``D`` in :mod:`repro.core.ffc`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DisconnectedGraphError, EmbeddingError, InvalidParameterError
from ..graphs.components import ResidualGraph, bfs_levels, component_of, residual_after_node_faults
from ..words.alphabet import Word, int_to_word, word_to_int
from ..words.codec import WordCodec, get_codec
from ..words.necklaces import Necklace

__all__ = [
    "BStar",
    "FFCEngine",
    "NecklaceAdjacencyGraph",
    "SpanningTree",
    "ModifiedTree",
    "build_bstar",
]


@dataclass(frozen=True)
class BStar:
    """The largest surviving component ``B*`` of a node-faulty De Bruijn graph.

    Attributes
    ----------
    d, n:
        Host graph parameters.
    nodes:
        The surviving nodes of the chosen component (always whole necklaces).
    root:
        The distinguished node ``R`` used to seed the broadcast; it satisfies
        ``N(R) = [R]``, i.e. it is the canonical representative of its
        necklace, as required by Step 1.1 of the algorithm.
    faulty_nodes:
        The original faulty nodes (not necklace-expanded).
    """

    d: int
    n: int
    nodes: frozenset[Word]
    root: Word
    faulty_nodes: frozenset[Word] = field(default_factory=frozenset)
    #: Int codes of the surviving nodes, ascending (the fast-path view of
    #: ``nodes``; rebuilt lazily when the instance was constructed by hand).
    codes: np.ndarray | None = field(default=None, compare=False, repr=False)

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def codec(self) -> WordCodec:
        """The shared integer-word codec of the host graph."""
        return get_codec(self.d, self.n)

    def node_codes(self) -> np.ndarray:
        """Int codes of the surviving nodes, ascending."""
        if self.codes is not None:
            return self.codes
        codes = np.sort(self.codec.encode_many(self.nodes))
        object.__setattr__(self, "codes", codes)
        return codes

    @property
    def root_code(self) -> int:
        """Int code of the root ``R``."""
        return self.codec.encode(self.root)

    def necklaces(self) -> list[Necklace]:
        """The necklaces making up ``B*``, sorted by canonical representative."""
        codec = self.codec
        reps = np.unique(codec.rep[self.node_codes()])
        return [Necklace(rep, self.d) for rep in codec.decode_many(reps)]

    def __contains__(self, word: object) -> bool:
        return word in self.nodes


def build_bstar(
    d: int,
    n: int,
    faults: Iterable[Sequence[int]],
    root_hint: Sequence[int] | None = None,
) -> BStar:
    """Construct ``B*`` for a fault set, choosing the component and the root.

    Parameters
    ----------
    d, n:
        De Bruijn parameters (``n >= 2``; for ``n = 1`` the necklace machinery
        degenerates because edge labels would be empty words).
    faults:
        The faulty nodes.  Necklaces containing any of them are removed.
    root_hint:
        Optional preferred root.  If it survives, the component containing it
        is selected and the root is the canonical representative of its
        necklace; otherwise the largest component is selected and its
        numerically smallest canonical representative becomes the root
        (mirroring the paper's simulations, which fall back to "a neighboring
        node" when the preferred root dies).

    Raises
    ------
    DisconnectedGraphError
        If every node of the graph is removed.
    """
    if n < 2:
        raise InvalidParameterError("the FFC machinery requires n >= 2")
    codec = get_codec(d, n)
    fault_words = [tuple(int(x) for x in f) for f in faults]
    residual = residual_after_node_faults(d, n, fault_words, remove_whole_necklaces=True)
    if residual.num_alive == 0:
        raise DisconnectedGraphError("all nodes of B(d, n) are contained in faulty necklaces")

    hint_word: Word | None = None
    if root_hint is not None:
        hint_word = tuple(int(x) for x in root_hint)
        if len(hint_word) != n:
            raise InvalidParameterError(f"root hint {hint_word} must have length {n}")
        if not residual.is_alive(word_to_int(hint_word, d)):
            hint_word = None

    if hint_word is not None:
        comp = component_of(residual, word_to_int(hint_word, d))
    else:
        assigned = residual.removed_mask.copy()
        alive = residual.alive_nodes()
        best_comp = None
        idx = 0
        while idx < alive.size:
            value = int(alive[idx])
            if assigned[value]:
                idx += 1
                continue
            c = component_of(residual, value)
            assigned[c] = True
            if best_comp is None or len(c) > len(best_comp):
                best_comp = c
        comp = best_comp

    if hint_word is not None:
        root_code = int(codec.rep[word_to_int(hint_word, d)])
    else:
        root_code = int(codec.rep[comp].min())
    # The canonical representative of a surviving necklace is itself surviving.
    if not residual.is_alive(root_code):  # pragma: no cover - defensive: necklaces are whole
        raise EmbeddingError("internal error: chosen root fell outside B*")

    node_set = frozenset(codec.decode_many(comp))
    return BStar(
        d=d,
        n=n,
        nodes=node_set,
        root=codec.decode(root_code),
        faulty_nodes=frozenset(fault_words),
        codes=np.sort(np.asarray(comp, dtype=codec.dtype)),
    )


class NecklaceAdjacencyGraph:
    """The necklace adjacency graph ``N*`` of a component ``B*`` (Section 2.2).

    Vertices are :class:`~repro.words.necklaces.Necklace` objects; for every
    ``(n-1)``-tuple ``w`` and every pair of distinct surviving necklaces that
    contain nodes ``alpha w`` and ``beta w`` there are antiparallel edges
    labelled ``w`` between them.
    """

    def __init__(self, bstar: BStar) -> None:
        self.bstar = bstar
        self.d = bstar.d
        self.n = bstar.n
        self.necklaces: list[Necklace] = bstar.necklaces()
        self._necklace_of_node: dict[Word, Necklace] = {}
        for nk in self.necklaces:
            for node in nk.node_set:
                if node in bstar.nodes:
                    self._necklace_of_node[node] = nk
        # group the surviving nodes by their length-(n-1) suffix w:
        # node alpha w  ->  suffix w.  Each necklace contains at most one node
        # with a given suffix (two such nodes would be alpha w and beta w,
        # which always lie on different necklaces when alpha != beta).
        self._by_suffix: dict[Word, dict[Necklace, Word]] = {}
        for node in bstar.nodes:
            w = node[1:]
            self._by_suffix.setdefault(w, {})[self._necklace_of_node[node]] = node

    # -- queries ------------------------------------------------------------
    def necklace_of(self, node: Sequence[int]) -> Necklace:
        """Return the necklace of ``B*`` containing ``node``."""
        word = tuple(int(x) for x in node)
        try:
            return self._necklace_of_node[word]
        except KeyError:
            raise InvalidParameterError(f"{word} is not a node of B*") from None

    def labels(self) -> list[Word]:
        """All edge labels ``w`` with at least one incident edge in ``N*``."""
        return sorted(w for w, members in self._by_suffix.items() if len(members) >= 2)

    def neighbours_by_label(self, label: Sequence[int]) -> dict[Necklace, Word]:
        """Return ``{necklace: exit node alpha w}`` for all necklaces touching label ``w``."""
        w = tuple(int(x) for x in label)
        return dict(self._by_suffix.get(w, {}))

    def has_edge(self, a: Necklace, b: Necklace, label: Sequence[int]) -> bool:
        """Return True iff ``N*`` has a ``label``-edge between necklaces ``a`` and ``b``."""
        members = self.neighbours_by_label(label)
        return a != b and a in members and b in members

    def edges(self) -> list[tuple[Necklace, Necklace, Word]]:
        """All directed labelled edges of ``N*`` (antiparallel pairs listed both ways)."""
        out = []
        for w, members in sorted(self._by_suffix.items()):
            necks = sorted(members)
            for a in necks:
                for b in necks:
                    if a != b:
                        out.append((a, b, w))
        return out

    def entry_node(self, necklace: Necklace, label: Sequence[int]) -> Word:
        """Return the node ``w beta`` through which a ``label``-edge enters ``necklace``.

        The entry node is the left rotation of the necklace's unique member of
        the form ``beta w`` (its unique member whose *suffix* is ``w``).
        """
        members = self.neighbours_by_label(label)
        if necklace not in members:
            raise InvalidParameterError(
                f"necklace {necklace!r} has no node with suffix {tuple(label)}"
            )
        exit_node = members[necklace]  # beta w
        return exit_node[1:] + exit_node[:1]  # w beta

    def exit_node(self, necklace: Necklace, label: Sequence[int]) -> Word:
        """Return the node ``alpha w`` through which a ``label``-edge exits ``necklace``."""
        members = self.neighbours_by_label(label)
        if necklace not in members:
            raise InvalidParameterError(
                f"necklace {necklace!r} has no node with suffix {tuple(label)}"
            )
        return members[necklace]


@dataclass(frozen=True)
class SpanningTree:
    """A spanning tree ``T`` of ``N*`` whose same-label edge groups are stars.

    ``parent[child] = (parent_necklace, label w)``; the root has no entry.
    The construction follows Steps 1.1/1.2 of the paper exactly, so the
    height-one property of every ``T_w`` is guaranteed (and re-checked by
    :meth:`validate`).
    """

    adjacency: NecklaceAdjacencyGraph
    root: Necklace
    parent: dict[Necklace, tuple[Necklace, Word]]
    node_levels: dict[Word, int]
    node_parents: dict[Word, Word]

    @classmethod
    def from_broadcast(
        cls, adjacency: NecklaceAdjacencyGraph, engine: "FFCEngine | None" = None
    ) -> "SpanningTree":
        """Build ``T`` from the BFS broadcast tree ``T'`` of ``B*`` (Steps 1.1–1.2).

        The construction runs on integer codes (:class:`FFCEngine`) and is
        converted to the readable tuple/:class:`~repro.words.necklaces.Necklace`
        form at this boundary; the reference tuple implementation it replaced
        lives on in :mod:`repro.core.tuple_reference` and is cross-checked
        against this one in the test-suite.  Pass ``engine`` to reuse an
        already-built kernel instead of recomputing the broadcast.
        """
        bstar = adjacency.bstar
        if engine is None:
            engine = FFCEngine(bstar)
        elif engine.bstar is not bstar:
            raise InvalidParameterError("engine was built for a different B*")
        codec = bstar.codec
        d, n = bstar.d, bstar.n

        alive = bstar.node_codes()
        words = codec.decode_many(alive)
        lv = engine.levels[alive]
        levels: dict[Word, int] = {w: int(level) for w, level in zip(words, lv)}

        node_parents: dict[Word, Word] = {}
        for w, code in zip(words, alive.tolist()):
            p = int(engine.parent_of[code])
            if p >= 0:
                node_parents[w] = codec.decode(p)

        root_necklace = adjacency.necklace_of(bstar.root)
        parent: dict[Necklace, tuple[Necklace, Word]] = {}
        for child_rep, (parent_rep, label) in engine.tree_edges.items():
            child_nk = Necklace(codec.decode(child_rep), d)
            parent_nk = Necklace(codec.decode(parent_rep), d)
            label_word = int_to_word(label, d, n - 1)
            parent[child_nk] = (parent_nk, label_word)
        return cls(
            adjacency=adjacency,
            root=root_necklace,
            parent=parent,
            node_levels=levels,
            node_parents=node_parents,
        )

    # -- structure ------------------------------------------------------------
    def children(self) -> dict[Necklace, list[tuple[Necklace, Word]]]:
        """Return ``{parent: [(child, label), ...]}``."""
        out: dict[Necklace, list[tuple[Necklace, Word]]] = {}
        for child, (par, label) in self.parent.items():
            out.setdefault(par, []).append((child, label))
        return out

    def stars(self) -> dict[Word, list[Necklace]]:
        """Return, per label ``w``, the necklaces of the star ``T_w`` (parent first).

        Each ``T_w`` consists of the common parent followed by its ``w``-labelled
        children sorted by representative.
        """
        groups: dict[Word, list[Necklace]] = {}
        parents: dict[Word, Necklace] = {}
        for child, (par, label) in sorted(self.parent.items()):
            if label in parents and parents[label] != par:
                raise EmbeddingError(
                    f"label {label} has two distinct parents; T_w is not a star"
                )
            parents[label] = par
            groups.setdefault(label, []).append(child)
        return {label: [parents[label]] + sorted(children) for label, children in groups.items()}

    def validate(self) -> None:
        """Check the three defining properties of ``T`` (spanning, acyclic, starred)."""
        # spanning + acyclic: walking parents from any necklace reaches the root
        for nk in self.adjacency.necklaces:
            seen = set()
            current = nk
            while current != self.root:
                if current in seen:
                    raise EmbeddingError("spanning tree contains a cycle")
                seen.add(current)
                if current not in self.parent:
                    raise EmbeddingError(f"necklace {current!r} is disconnected from the root")
                current = self.parent[current][0]
        # every tree edge is an N* edge
        for child, (par, label) in self.parent.items():
            if not self.adjacency.has_edge(par, child, label):
                raise EmbeddingError(
                    f"tree edge {par!r} -> {child!r} (label {label}) is not an N* edge"
                )
        # height-one stars (raises inside stars() if violated)
        self.stars()


@dataclass(frozen=True)
class ModifiedTree:
    """The modified tree ``D``: every star ``T_w`` of ``T`` rewritten as a directed cycle.

    ``outgoing[(necklace, w)] = target`` gives, for each necklace with an
    incident ``w``-edge in ``D``, the necklace its outgoing ``w``-edge points
    to.  Step 3 of the FFC algorithm only ever needs this "outgoing" map.
    """

    tree: SpanningTree
    outgoing: dict[tuple[Necklace, Word], Necklace]

    @classmethod
    def from_spanning_tree(cls, tree: SpanningTree) -> "ModifiedTree":
        """Rewrite each star as a directed cycle ordered by necklace representative.

        Following Section 2.4 (Step 2): the necklaces of ``T_w`` are ordered
        by their representatives; each has a ``w``-edge to the next largest,
        and the largest closes the cycle back to the smallest.
        """
        outgoing: dict[tuple[Necklace, Word], Necklace] = {}
        for label, members in tree.stars().items():
            ordered = sorted(set(members))
            k = len(ordered)
            if k < 2:  # pragma: no cover - a star always has parent + >=1 child
                continue
            for i, nk in enumerate(ordered):
                nxt = ordered[(i + 1) % k]
                outgoing[(nk, label)] = nxt
        return cls(tree=tree, outgoing=outgoing)

    # -- queries ------------------------------------------------------------------
    def successor_necklace(self, necklace: Necklace, label: Sequence[int]) -> Necklace | None:
        """Return the target of the outgoing ``label``-edge of ``necklace`` in ``D``, if any."""
        return self.outgoing.get((necklace, tuple(int(x) for x in label)))

    def edges(self) -> list[tuple[Necklace, Necklace, Word]]:
        """All directed edges of ``D`` as ``(source, target, label)`` triples."""
        return [(src, dst, label) for (src, label), dst in sorted(self.outgoing.items())]

    def validate(self) -> None:
        """Check that ``D`` is a spanning subgraph of ``N*`` whose w-edges form cycles."""
        adjacency = self.tree.adjacency
        for (src, label), dst in self.outgoing.items():
            if not adjacency.has_edge(src, dst, label):
                raise EmbeddingError(
                    f"modified-tree edge {src!r} -> {dst!r} (label {label}) is not an N* edge"
                )
        # per label, the out-map must be a single cycle over the star's necklaces
        per_label: dict[Word, dict[Necklace, Necklace]] = {}
        for (src, label), dst in self.outgoing.items():
            per_label.setdefault(label, {})[src] = dst
        for label, mapping in per_label.items():
            members = set(mapping)
            if set(mapping.values()) != members:
                raise EmbeddingError(f"label {label} edges do not form a permutation")
            start = next(iter(members))
            seen = {start}
            current = mapping[start]
            while current != start:
                if current in seen:
                    raise EmbeddingError(f"label {label} edges split into several cycles")
                seen.add(current)
                current = mapping[current]
            if seen != members:
                raise EmbeddingError(f"label {label} edges split into several cycles")


class FFCEngine:
    """The integer-coded FFC kernel: Steps 1.1–3 on codes, no tuples anywhere.

    Given a :class:`BStar`, the engine computes — entirely on int codes and
    numpy arrays — the BFS broadcast levels, the minimal-predecessor parents
    of ``T'``, the per-necklace chosen members and tree edges of ``T``, the
    directed label cycles of the modified tree ``D``, and finally the
    Hamiltonian cycle of ``B*``.  Tie-breaking matches the tuple reference
    implementation exactly (base-``d`` numeric order coincides with the
    lexicographic order on digit tuples), so the cycle produced here is
    *identical* to the one from :mod:`repro.core.tuple_reference`; the
    test-suite pins that equivalence.

    Attributes
    ----------
    levels:
        Full-size int64 array; ``levels[x]`` is the broadcast level of code
        ``x`` (``-1`` outside ``B*``).
    parent_of:
        Full-size int64 array; ``parent_of[x]`` is the ``T'`` parent of ``x``
        (the minimal predecessor one level closer to the root), ``-1`` for the
        root and for codes outside ``B*``.
    tree_edges:
        ``{child_rep: (parent_rep, label)}`` — the tree ``T`` on necklace
        representative codes, labels encoded as length-``(n-1)`` ints.
    outgoing:
        ``{(rep, label): target_rep}`` — the modified tree ``D``.
    """

    def __init__(self, bstar: BStar) -> None:
        self.bstar = bstar
        codec = bstar.codec
        self.codec = codec
        self._suffix_members: dict[tuple[int, int], int] | None = None
        d, size = codec.d, codec.size
        alive = bstar.node_codes()
        root_code = bstar.root_code

        # --- Step 1.1: BFS broadcast from R over B* (vectorized sweep).
        removed = np.ones(size, dtype=bool)
        removed[alive] = False
        levels = bfs_levels(ResidualGraph(bstar.d, bstar.n, removed), root_code, direction="out")
        if (levels[alive] < 0).any():
            raise DisconnectedGraphError(
                "B* is not connected from the chosen root; pick the component's own root"
            )
        self.levels = levels

        # T' parent of every node: the minimal predecessor at the previous
        # level (the tie rule of the paper), computed for all nodes at once.
        # Construction-time read of the codec table (not a kernel-measurement
        # path, which must go through KernelExecutor).
        preds = codec.predecessor_table[alive].astype(np.int64)  # repro: noqa[REP004]
        want = (levels[alive] - 1)[:, None]
        candidates = np.where(levels[preds] == want, preds, size)
        parents = candidates.min(axis=1)
        parents[levels[alive] == 0] = -1  # the root has no T' parent
        if (parents >= size).any():  # pragma: no cover - BFS guarantees a parent
            raise EmbeddingError("broadcast produced a node with no parent at the previous level")
        parent_of = np.full(size, -1, dtype=np.int64)
        parent_of[alive] = parents
        self.parent_of = parent_of

        # --- Step 1.2: per necklace, the earliest-received member (ties:
        # minimal code) via one lexsort over (necklace, level, code).
        reps = codec.rep[alive]
        order = np.lexsort((alive, levels[alive], reps))
        sorted_reps = reps[order]
        first = np.r_[True, sorted_reps[1:] != sorted_reps[:-1]]
        chosen = alive[order[first]].astype(np.int64)  # one per necklace, rep-ascending
        chosen_reps = sorted_reps[first].astype(np.int64)
        self.necklace_reps = chosen_reps

        tree_edges: dict[int, tuple[int, int]] = {}
        root_rep = int(codec.rep[root_code])
        for child_rep, member in zip(chosen_reps.tolist(), chosen.tolist()):
            if child_rep == root_rep:
                continue
            label = member // d  # member reads "w alpha" -> label w
            parent_node = int(parent_of[member])  # "beta w"
            tree_edges[child_rep] = (int(codec.rep[parent_node]), label)
        self.tree_edges = tree_edges

        # --- Step 2: rewrite each star T_w as a directed label cycle ordered
        # by necklace representative (the modified tree D).
        star_parent: dict[int, int] = {}
        star_children: dict[int, list[int]] = {}
        for child_rep, (parent_rep, label) in tree_edges.items():
            if label in star_parent and star_parent[label] != parent_rep:
                raise EmbeddingError(
                    f"label {label} has two distinct parents; T_w is not a star"
                )
            star_parent[label] = parent_rep
            star_children.setdefault(label, []).append(child_rep)
        outgoing: dict[tuple[int, int], int] = {}
        for label, children in star_children.items():
            ordered = sorted({star_parent[label], *children})
            k = len(ordered)
            for i, rep in enumerate(ordered):
                outgoing[(rep, label)] = ordered[(i + 1) % k]
        self.outgoing = outgoing

    # -- queries ---------------------------------------------------------------
    def member_with_suffix(self, rep: int, suffix: int) -> int:
        """The unique member ``beta w`` of necklace ``rep`` with suffix ``w``."""
        member = self._suffix_map().get((int(rep), int(suffix)))
        if member is None:
            raise InvalidParameterError(
                f"necklace {rep} has no node with suffix code {suffix}"
            )
        return member

    def _suffix_map(self) -> dict[tuple[int, int], int]:
        """``{(rep, suffix): member}`` over all of ``B*`` (each pair is unique)."""
        if self._suffix_members is None:
            codec = self.codec
            alive = self.bstar.node_codes()
            reps = codec.rep[alive].tolist()
            suffixes = (alive % codec.high).tolist()
            self._suffix_members = dict(zip(zip(reps, suffixes), alive.tolist()))
        return self._suffix_members

    def successor_codes(self) -> np.ndarray:
        """Step 3: the FFC successor of every code (rotation unless D diverts).

        ``succ[x] = pi(x)`` by default; for each outgoing ``w``-edge of ``D``
        the exit node ``alpha w`` of the source necklace is redirected to the
        entry node ``w beta`` of the target necklace.
        """
        codec = self.codec
        succ = codec.rotate1.astype(np.int64)
        for (src_rep, label), dst_rep in self.outgoing.items():
            exit_node = self.member_with_suffix(src_rep, label)
            entry_node = int(codec.rotate1[self.member_with_suffix(dst_rep, label)])
            succ[exit_node] = entry_node
        return succ

    def cycle_codes(self) -> np.ndarray:
        """Assemble the fault-free cycle by walking the successor pointers."""
        succ = self.successor_codes().tolist()
        start = self.bstar.root_code
        limit = self.bstar.size
        cycle = [start]
        current = succ[start]
        while current != start:
            if len(cycle) > limit:
                raise EmbeddingError("FFC successor walk failed to close into a cycle")
            cycle.append(current)
            current = succ[current]
        return np.asarray(cycle, dtype=np.int64)
