"""Hamiltonian decompositions of the *modified* De Bruijn graph ``MB(d, n)`` (§3.2.3).

``B(d, n)`` itself can never be decomposed into Hamiltonian cycles: the ``d``
self-loops leave at least ``d**n`` edges outside any union of ``d - 1``
disjoint HCs.  Section 3.2.3 therefore modifies the graph: starting from the
``d`` shifted maximal cycles ``s + C``, each cycle gives up one *parallel
edge* ("p-edge", an edge between the two alternating words
``\\widehat{ab}`` and ``\\widehat{ba}``) in exchange for a detour through the
missing constant node ``s^n``.  The union of the resulting ``d`` Hamiltonian
cycles is the modified graph ``MB(d, n)``; it is ``d``-regular (in and out),
admits a Hamiltonian decomposition by construction, and its undirected
version still contains ``UB(d, n)`` as a subgraph because at most one edge of
each antiparallel p-edge pair is sacrificed.

Both the odd-prime-power construction and the special binary construction
(Example 3.6 / Figure 3.3) are implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..exceptions import InvalidParameterError
from ..gf.field import GF
from ..gf.lfsr import LinearRecurrence, default_maximal_cycle_recurrence, maximal_cycle, shifted_cycle
from ..gf.modular import as_prime_power
from ..words.alphabet import Word, alternating_word, constant_word
from .sequences import nodes_of_sequence

__all__ = ["HamiltonianDecomposition", "modified_debruijn_decomposition"]


@dataclass(frozen=True)
class HamiltonianDecomposition:
    """The modified graph ``MB(d, n)`` together with its decomposition into HCs.

    Attributes
    ----------
    d, n:
        Parameters of the underlying De Bruijn graph.
    cycles:
        ``d`` node-cycles (tuples of words); each visits every node exactly
        once and together they partition the edge set of ``MB(d, n)``.
    replaced_p_edges:
        The p-edges of ``B(d, n)`` that were replaced by detours, one per
        cycle (``None`` for cycles that kept all their De Bruijn edges).
    """

    d: int
    n: int
    cycles: tuple[tuple[Word, ...], ...]
    replaced_p_edges: tuple[tuple[Word, Word] | None, ...]

    # -- derived structure -----------------------------------------------------
    def edges(self) -> list[tuple[Word, Word]]:
        """All edges of ``MB(d, n)`` with multiplicity (the union of the cycles' edges).

        ``MB(d, n)`` is in general a directed *multigraph* (mirroring the
        paper's footnote that ``UMB(d, n)`` may be a multigraph): for ``n = 2``
        a detour edge can coincide with an ordinary De Bruijn edge, in which
        case both copies are listed.
        """
        out: list[tuple[Word, Word]] = []
        for cycle in self.cycles:
            k = len(cycle)
            out.extend((cycle[i], cycle[(i + 1) % k]) for i in range(k))
        return out

    def to_networkx(self) -> nx.MultiDiGraph:
        """Return ``MB(d, n)`` as a networkx MultiDiGraph (cycle index as edge key)."""
        g = nx.MultiDiGraph()
        for idx, cycle in enumerate(self.cycles):
            g.add_nodes_from(cycle)
            k = len(cycle)
            for i in range(k):
                g.add_edge(cycle[i], cycle[(i + 1) % k], key=idx)
        return g

    # -- verification -------------------------------------------------------------
    def is_decomposition(self) -> bool:
        """Check the defining properties of a Hamiltonian decomposition of ``MB(d, n)``.

        Every cycle must be Hamiltonian (each node exactly once) and the
        multigraph union must give every node indegree and outdegree exactly
        ``d`` — which is precisely the statement that the ``d`` cycles
        decompose the ``d``-regular graph they generate.
        """
        total_nodes = self.d**self.n
        for cycle in self.cycles:
            if len(cycle) != total_nodes or len(set(cycle)) != total_nodes:
                return False
        return len(self.cycles) == self.d and self.is_regular()

    def cycles_edge_disjoint(self) -> bool:
        """Check pairwise edge-disjointness of the cycles as plain edge sets.

        For ``n >= 3`` the detour edges are never De Bruijn edges, so the
        cycles are edge-disjoint even without multigraph bookkeeping; for
        ``n = 2`` parallel copies may make this False while
        :meth:`is_decomposition` still holds.
        """
        seen: set[tuple[Word, Word]] = set()
        for cycle in self.cycles:
            k = len(cycle)
            edge_set = {(cycle[i], cycle[(i + 1) % k]) for i in range(k)}
            if len(edge_set) != k or (seen & edge_set):
                return False
            seen |= edge_set
        return True

    def is_regular(self) -> bool:
        """Check that every node of ``MB(d, n)`` has indegree and outdegree ``d``."""
        g = self.to_networkx()
        if g.number_of_nodes() != self.d**self.n:
            return False
        return all(deg == self.d for _, deg in g.in_degree()) and all(
            deg == self.d for _, deg in g.out_degree()
        )

    def undirected_contains_ub(self) -> bool:
        """Check that ``UMB(d, n)`` contains ``UB(d, n)`` as a subgraph.

        Every pair of nodes adjacent in the undirected De Bruijn graph must
        also be adjacent (in some direction) in ``MB(d, n)``.
        """
        from ..graphs.undirected import UndirectedDeBruijnGraph

        ub = UndirectedDeBruijnGraph(self.d, self.n)
        undirected = {frozenset(e) for e in self.edges() if e[0] != e[1]}
        return all(frozenset((a, b)) in undirected for a, b in ub.edges())


def modified_debruijn_decomposition(
    d: int, n: int, recurrence: LinearRecurrence | None = None, initial=None
) -> HamiltonianDecomposition:
    """Construct the Hamiltonian decomposition of ``MB(d, n)`` (Section 3.2.3).

    Parameters
    ----------
    d:
        A prime power; the paper's construction covers ``d = 2`` and odd
        prime powers.  (Even prime powers ``> 2`` are not covered by the
        construction because the p-edge argument needs characteristic != 2;
        requesting one raises :class:`InvalidParameterError`.)
    n:
        Word length, ``n >= 2``.
    recurrence, initial:
        Optional explicit maximal-cycle recurrence / initial state (used by
        the tests to reproduce Example 3.6 exactly).
    """
    p, _ = as_prime_power(d)
    if n < 2:
        raise InvalidParameterError("the decomposition requires n >= 2")
    if recurrence is None:
        recurrence = default_maximal_cycle_recurrence(d, n)
    if d == 2:
        return _binary_decomposition(n, recurrence, initial)
    if p == 2:
        raise InvalidParameterError(
            "the MB(d, n) construction covers d = 2 and odd prime powers only"
        )
    return _odd_prime_power_decomposition(d, n, recurrence, initial)


# ---------------------------------------------------------------------------
# odd prime-power case
# ---------------------------------------------------------------------------

def _find_p_edge_on_cycle(nodes: list[Word], d: int) -> tuple[int, Word, Word]:
    """Find a p-edge lying on the cycle given by its node list.

    Returns ``(index, alpha, beta)`` such that ``nodes[index]`` is the
    alternating word ``\\widehat{alpha beta}`` and its successor on the cycle
    is ``\\widehat{beta alpha}``.
    """
    n = len(nodes[0])
    k = len(nodes)
    position = {node: i for i, node in enumerate(nodes)}
    for alpha in range(d):
        for beta in range(d):
            if alpha == beta:
                continue
            src = alternating_word(alpha, beta, n)
            dst = alternating_word(beta, alpha, n)
            i = position.get(src)
            if i is not None and nodes[(i + 1) % k] == dst:
                return i, alpha, beta
    raise InvalidParameterError(
        "the chosen maximal cycle contains no p-edge; "
        "retry with a different recurrence or initial state"
    )


def _odd_prime_power_decomposition(
    d: int, n: int, recurrence: LinearRecurrence, initial
) -> HamiltonianDecomposition:
    field = GF(d)
    base = maximal_cycle(d, n, recurrence=recurrence, initial=initial)
    base_nodes = nodes_of_sequence(base, n)
    idx, alpha, beta = _find_p_edge_on_cycle(base_nodes, d)

    cycles: list[tuple[Word, ...]] = []
    replaced: list[tuple[Word, Word] | None] = []
    for s in range(d):
        shifted_nodes = nodes_of_sequence(shifted_cycle(base, s, field), n)
        # the p-edge of s + C sits at the same position as in C, between the
        # alternating words over (alpha+s, beta+s)
        a_s, b_s = field.add(alpha, s), field.add(beta, s)
        src = alternating_word(a_s, b_s, n)
        dst = alternating_word(b_s, a_s, n)
        k = len(shifted_nodes)
        i = shifted_nodes.index(src)
        if shifted_nodes[(i + 1) % k] != dst:  # pragma: no cover - shift preserves position
            raise InvalidParameterError("shifted cycle lost its p-edge")
        constant = constant_word(s, n)
        cycle = tuple(shifted_nodes[: i + 1]) + (constant,) + tuple(shifted_nodes[i + 1 :])
        cycles.append(cycle)
        replaced.append((src, dst))
    return HamiltonianDecomposition(
        d=d, n=n, cycles=tuple(cycles), replaced_p_edges=tuple(replaced)
    )


# ---------------------------------------------------------------------------
# binary case (Example 3.6 / Figure 3.3)
# ---------------------------------------------------------------------------

def _binary_decomposition(
    n: int, recurrence: LinearRecurrence, initial
) -> HamiltonianDecomposition:
    if n < 3:
        raise InvalidParameterError("the binary MB(2, n) construction requires n >= 3")
    field = GF(2)
    base = maximal_cycle(2, n, recurrence=recurrence, initial=initial)
    base_nodes = nodes_of_sequence(base, n)
    zeros = constant_word(0, n)
    ones = constant_word(1, n)

    # Cycle H_0: insert 0^n between 1 0^{n-1} and 0^{n-1} 1 (a genuine HC of B(2,n)).
    pred_of_zero = (1,) + (0,) * (n - 1)
    i = base_nodes.index(pred_of_zero)
    cycle0 = tuple(base_nodes[: i + 1]) + (zeros,) + tuple(base_nodes[i + 1 :])

    # Cycle H_1: start from 1 + C, remove 0^n, then reroute a p-edge through
    # 0^n and 1^n.  Exactly one of the two antiparallel p-edges
    # (\hat{01} -> \hat{10}) / (\hat{10} -> \hat{01}) lies on 1 + C (they are
    # digit-wise complements of each other, and complementation swaps C and
    # 1 + C); use whichever it is — the paper's "without loss of generality".
    shifted_nodes = nodes_of_sequence(shifted_cycle(base, 1, field), n)
    without_zero = [node for node in shifted_nodes if node != zeros]
    k = len(without_zero)
    src = dst = None
    for a, b in ((0, 1), (1, 0)):
        cand_src = alternating_word(a, b, n)
        cand_dst = alternating_word(b, a, n)
        j = without_zero.index(cand_src)
        if without_zero[(j + 1) % k] == cand_dst:
            src, dst = cand_src, cand_dst
            break
    if src is None:
        raise InvalidParameterError(
            "1 + C does not traverse either p-edge; "
            "retry with a different recurrence or initial state"
        )
    j = without_zero.index(src)
    cycle1 = tuple(without_zero[: j + 1]) + (zeros, ones) + tuple(without_zero[j + 1 :])
    return HamiltonianDecomposition(
        d=2,
        n=n,
        cycles=(cycle0, cycle1),
        replaced_p_edges=(None, (src, dst)),
    )
