"""Cycles as circular sequences (Section 3.1) and De Bruijn sequences.

Chapter 3 manipulates cycles of ``B(d, n)`` through their *circular sequence*
representation: the sequence ``C = [c_0, c_1, ..., c_{k-1}]`` denotes the
closed path whose ``i``-th node is the window ``c_i c_{i+1} ... c_{i+n-1}``
(indices mod ``k``).  ``n``-windows are nodes, ``(n+1)``-windows are edges, a
sequence is a cycle iff its ``n``-windows are distinct and a Hamiltonian
cycle (a *De Bruijn sequence*) iff additionally ``k = d**n``.

This module provides the conversions between the two representations, the
edge/disjointness predicates used throughout Chapter 3, the Rees composition
of Hamiltonian cycles of coprime alphabets (Lemma 3.6) and a classical
necklace-concatenation De Bruijn sequence construction (the FKM theorem,
[FM78] in the paper's bibliography) that works for every ``d``.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_alphabet
from ..words.necklaces import iter_necklace_representatives
from ..words.rotation import aperiodic_root

__all__ = [
    "nodes_of_sequence",
    "edges_of_sequence",
    "sequence_of_cycle",
    "is_cycle_sequence",
    "is_hamiltonian_sequence",
    "sequences_edge_disjoint",
    "rees_composition",
    "decompose_rees_edge",
    "de_bruijn_sequence",
]


def nodes_of_sequence(seq: Sequence[int], n: int) -> list[Word]:
    """Return the nodes (length-``n`` circular windows) of a circular sequence.

    >>> nodes_of_sequence([0, 1, 2, 1, 2], 3)[:2]
    [(0, 1, 2), (1, 2, 1)]
    """
    k = len(seq)
    if k == 0:
        raise InvalidParameterError("empty sequences denote no cycle")
    if n < 1:
        raise InvalidParameterError("window length must be >= 1")
    s = [int(c) for c in seq]
    return [tuple(s[(i + j) % k] for j in range(n)) for i in range(k)]


def edges_of_sequence(seq: Sequence[int], n: int) -> list[Word]:
    """Return the edges (length-``n+1`` circular windows) of a circular sequence."""
    return nodes_of_sequence(seq, n + 1)


def sequence_of_cycle(nodes: Sequence[Sequence[int]]) -> list[int]:
    """Return the circular sequence of a cycle given as its node list.

    The ``i``-th sequence element is the first digit of the ``i``-th node;
    inverse of :func:`nodes_of_sequence` for genuine De Bruijn cycles.
    """
    cycle = [tuple(int(x) for x in w) for w in nodes]
    if not cycle:
        raise InvalidParameterError("empty cycles have no sequence")
    n = len(cycle[0])
    k = len(cycle)
    for i, node in enumerate(cycle):
        nxt = cycle[(i + 1) % k]
        if node[1:] != nxt[:-1]:
            raise InvalidParameterError(
                f"nodes {node} and {nxt} are not consecutive in a De Bruijn cycle"
            )
        if len(node) != n:
            raise InvalidParameterError("all cycle nodes must have the same length")
    return [node[0] for node in cycle]


def is_cycle_sequence(seq: Sequence[int], d: int, n: int) -> bool:
    """Return True iff ``seq`` denotes a cycle of ``B(d, n)`` (distinct node windows)."""
    validate_alphabet(d)
    if any(not 0 <= int(c) < d for c in seq):
        return False
    if len(seq) == 0:
        return False
    nodes = nodes_of_sequence(seq, n)
    return len(set(nodes)) == len(nodes)


def is_hamiltonian_sequence(seq: Sequence[int], d: int, n: int) -> bool:
    """Return True iff ``seq`` is a De Bruijn sequence (Hamiltonian cycle of ``B(d, n)``)."""
    return len(seq) == d**n and is_cycle_sequence(seq, d, n)


def sequences_edge_disjoint(a: Sequence[int], b: Sequence[int], n: int) -> bool:
    """Return True iff the cycles denoted by ``a`` and ``b`` share no edge.

    Per Section 3.1, two cycles are edge-disjoint iff their sets of
    ``(n+1)``-windows are disjoint.
    """
    return not (set(edges_of_sequence(a, n)) & set(edges_of_sequence(b, n)))


def rees_composition(a: Sequence[int], b: Sequence[int], s: int, t: int, n: int) -> list[int]:
    """Compose Hamiltonian cycles of ``B(s, n)`` and ``B(t, n)`` into one of ``B(st, n)``.

    This is the map ``(A, B)_i = a_{i mod s^n} * t + b_{i mod t^n}`` of
    Lemma 3.6 ([Ree46]); it produces a Hamiltonian cycle when ``gcd(s, t) = 1``.

    Raises
    ------
    InvalidParameterError
        If ``s`` and ``t`` are not coprime or the inputs are not Hamiltonian
        sequences of the advertised parameters.
    """
    if gcd(s, t) != 1:
        raise InvalidParameterError(f"Rees composition requires gcd(s, t) = 1, got {s}, {t}")
    if not is_hamiltonian_sequence(a, s, n):
        raise InvalidParameterError("first argument is not a Hamiltonian sequence of B(s, n)")
    if not is_hamiltonian_sequence(b, t, n):
        raise InvalidParameterError("second argument is not a Hamiltonian sequence of B(t, n)")
    len_a, len_b = s**n, t**n
    total = (s * t) ** n
    return [int(a[i % len_a]) * t + int(b[i % len_b]) for i in range(total)]


def decompose_rees_edge(edge: Sequence[int], s: int, t: int) -> tuple[Word, Word]:
    """Split an edge of ``B(st, n)`` into its ``B(s, n)`` and ``B(t, n)`` edge images.

    Every digit ``v`` of the composed alphabet decomposes uniquely as
    ``v = a*t + b`` with ``a in Z_s`` and ``b in Z_t``; applied digit-wise to
    an ``(n+1)``-tuple this recovers the pair of edges referenced in the
    proof of Proposition 3.3.
    """
    digits = tuple(int(v) for v in edge)
    if any(not 0 <= v < s * t for v in digits):
        raise InvalidParameterError(f"edge {digits} has digits outside Z_{s * t}")
    return tuple(v // t for v in digits), tuple(v % t for v in digits)


def de_bruijn_sequence(d: int, n: int) -> list[int]:
    """Return the lexicographically least De Bruijn sequence of ``B(d, n)``.

    Uses the classical Fredricksen–Kessler–Maiorana construction: concatenate,
    in lexicographic order, the aperiodic roots of the necklaces whose length
    divides ``n``.  Works for every alphabet size (no prime-power restriction),
    providing an always-available Hamiltonian cycle baseline for the
    benchmarks.
    """
    validate_alphabet(d)
    if n < 1:
        raise InvalidParameterError("n must be >= 1")
    seq: list[int] = []
    for rep in iter_necklace_representatives(d, n):
        root = aperiodic_root(rep)
        if n % len(root) == 0:
            seq.extend(root)
    if len(seq) != d**n:  # pragma: no cover - guaranteed by the FKM theorem
        raise InvalidParameterError("FKM construction failed to produce a De Bruijn sequence")
    return seq
