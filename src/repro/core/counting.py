"""Counting necklaces (Chapter 4).

The chapter derives exact formulae, via Möbius inversion, for the number of
necklaces of ``B(d, n)`` whose nodes satisfy a property ``f(x) = g(n)``
subject to two compatibility conditions (A: the property is
rotation-invariant, B: it restricts consistently to aperiodic roots):

* number of such necklaces of length ``t | n``:
  ``(1/t) * sum_{j | t} #Gamma(j) * mu(t/j)``           (Proposition 4.1)
* total number of such necklaces:
  ``(1/n) * sum_{j | n} #Gamma(j) * phi(n/j)``          (Proposition 4.2)

where ``#Gamma(j)`` counts the length-``j`` words satisfying the property at
scale ``j``.  The module exposes the generic propositions plus the worked
specialisations of Section 4.3 (all necklaces, by weight, by type) and
brute-force counterparts used by the tests to validate every formula.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from math import comb, factorial, prod

from ..exceptions import InvalidParameterError
from ..gf.modular import divisors, euler_phi, mobius
from ..words.alphabet import letter_count, weight
from ..words.necklaces import iter_necklace_representatives
from ..words.rotation import period

__all__ = [
    "count_from_gamma",
    "total_from_gamma",
    "count_necklaces_of_length",
    "count_necklaces_total",
    "dary_tuples_of_weight",
    "count_necklaces_by_weight",
    "count_necklaces_by_weight_total",
    "count_necklaces_by_type",
    "count_necklaces_by_type_total",
    "brute_force_necklace_count",
]


# ---------------------------------------------------------------------------
# the generic Propositions 4.1 and 4.2
# ---------------------------------------------------------------------------

def count_from_gamma(gamma: Callable[[int], int], t: int) -> int:
    """Proposition 4.1: necklaces of length ``t`` whose nodes satisfy the property.

    ``gamma(j)`` must return ``#Gamma(j)``, the number of length-``j`` words
    satisfying the property at scale ``j``.
    """
    if t < 1:
        raise InvalidParameterError("necklace length must be >= 1")
    total = sum(gamma(j) * mobius(t // j) for j in divisors(t))
    if total % t:  # pragma: no cover - impossible when conditions A/B hold
        raise InvalidParameterError("Gamma does not satisfy conditions A and B")
    return total // t


def total_from_gamma(gamma: Callable[[int], int], n: int) -> int:
    """Proposition 4.2: total number of necklaces whose nodes satisfy the property."""
    if n < 1:
        raise InvalidParameterError("word length must be >= 1")
    total = sum(gamma(j) * euler_phi(n // j) for j in divisors(n))
    if total % n:  # pragma: no cover - impossible when conditions A/B hold
        raise InvalidParameterError("Gamma does not satisfy conditions A and B")
    return total // n


# ---------------------------------------------------------------------------
# counting by length (Section 4.3, "Counting by Length")
# ---------------------------------------------------------------------------

def count_necklaces_of_length(d: int, n: int, t: int) -> int:
    """Number of necklaces of length ``t`` in ``B(d, n)``.

    ``(1/t) sum_{j|t} d**j mu(t/j)`` when ``t`` divides ``n`` (the count is
    independent of ``n`` beyond that divisibility), 0 otherwise.

    >>> count_necklaces_of_length(2, 12, 6)
    9
    """
    if d < 2 or n < 1 or t < 1:
        raise InvalidParameterError("require d >= 2, n >= 1, t >= 1")
    if n % t:
        return 0
    return count_from_gamma(lambda j: d**j, t)


def count_necklaces_total(d: int, n: int) -> int:
    """Total number of necklaces in ``B(d, n)``: ``(1/n) sum_{j|n} d**j phi(n/j)``.

    >>> count_necklaces_total(2, 12)
    352
    """
    if d < 2 or n < 1:
        raise InvalidParameterError("require d >= 2 and n >= 1")
    return total_from_gamma(lambda j: d**j, n)


# ---------------------------------------------------------------------------
# counting by weight (Section 4.3, binary and d-ary cases)
# ---------------------------------------------------------------------------

def dary_tuples_of_weight(d: int, n: int, k: int) -> int:
    """Number ``c_d(n, k)`` of d-ary n-tuples of weight ``k``.

    Uses the generating-function identity quoted from [Knu73]:
    ``c_d(n, k) = sum_i (-1)^i C(n, i) C(n - 1 + k - d*i, n - 1)``.
    """
    if d < 2 or n < 1:
        raise InvalidParameterError("require d >= 2 and n >= 1")
    if k < 0 or k > n * (d - 1):
        return 0
    total = 0
    for i in range(k // d + 1):
        total += (-1) ** i * comb(n, i) * comb(n - 1 + k - d * i, n - 1)
    return total


def _weight_gamma(d: int, n: int, k: int) -> Callable[[int], int]:
    """``#Gamma(j)`` for the weight property: words of length ``j`` and weight ``j*k/n``."""

    def gamma(j: int) -> int:
        if (j * k) % n:
            return 0
        return dary_tuples_of_weight(d, j, j * k // n)

    return gamma


def count_necklaces_by_weight(d: int, n: int, k: int, t: int) -> int:
    """Number of necklaces of length ``t`` in ``B(d, n)`` made of weight-``k`` nodes.

    >>> count_necklaces_by_weight(2, 12, 4, 6)
    2
    """
    if n % t:
        return 0
    return count_from_gamma(_weight_gamma(d, n, k), t)


def count_necklaces_by_weight_total(d: int, n: int, k: int) -> int:
    """Total number of necklaces of weight-``k`` nodes in ``B(d, n)``.

    >>> count_necklaces_by_weight_total(2, 12, 4)
    43
    """
    return total_from_gamma(_weight_gamma(d, n, k), n)


# ---------------------------------------------------------------------------
# counting by type (Section 4.3, "Counting by Type")
# ---------------------------------------------------------------------------

def _type_gamma(d: int, n: int, type_k: Sequence[int]) -> Callable[[int], int]:
    """``#Gamma(j)`` for the type property: multinomial coefficients at scale ``j``."""
    ks = tuple(int(x) for x in type_k)

    def gamma(j: int) -> int:
        counts = []
        for k in ks:
            if (j * k) % n:
                return 0
            counts.append(j * k // n)
        if sum(counts) != j:
            return 0
        return factorial(j) // prod(factorial(c) for c in counts)

    return gamma


def count_necklaces_by_type(d: int, n: int, type_k: Sequence[int], t: int) -> int:
    """Number of necklaces of length ``t`` whose nodes have letter-count vector ``type_k``.

    ``type_k[a]`` is the required number of occurrences of the letter ``a``.
    """
    ks = tuple(int(x) for x in type_k)
    if len(ks) != d:
        raise InvalidParameterError(f"type vector must have length d={d}")
    if sum(ks) != n:
        raise InvalidParameterError("type vector must sum to n")
    if n % t:
        return 0
    return count_from_gamma(_type_gamma(d, n, ks), t)


def count_necklaces_by_type_total(d: int, n: int, type_k: Sequence[int]) -> int:
    """Total number of necklaces whose nodes have letter-count vector ``type_k``."""
    ks = tuple(int(x) for x in type_k)
    if len(ks) != d:
        raise InvalidParameterError(f"type vector must have length d={d}")
    if sum(ks) != n:
        raise InvalidParameterError("type vector must sum to n")
    return total_from_gamma(_type_gamma(d, n, ks), n)


# ---------------------------------------------------------------------------
# brute force (enumeration-based) counterparts for validation
# ---------------------------------------------------------------------------

def brute_force_necklace_count(
    d: int,
    n: int,
    length: int | None = None,
    weight_k: int | None = None,
    type_k: Sequence[int] | None = None,
) -> int:
    """Count necklaces by explicit enumeration, with optional length/weight/type filters.

    Exists purely as an oracle for the closed-form counts; exponential in
    ``n`` and only intended for the small parameters used in the tests.
    """
    count = 0
    for rep in iter_necklace_representatives(d, n):
        if length is not None and period(rep) != length:
            continue
        if weight_k is not None and weight(rep) != weight_k:
            continue
        if type_k is not None and any(
            letter_count(rep, a) != type_k[a] for a in range(d)
        ):
            continue
        count += 1
    return count
