"""The ``python -m repro`` / ``repro`` command line interface.

Three subcommands expose the engine subsystem and the experiment registry:

``repro experiment [NAME ...]``
    Run entries of :mod:`repro.analysis.experiments` (every table and figure
    of the paper); ``--list`` enumerates them, ``--all`` runs everything.

``repro sweep --topology T --d D --n N``
    Drive a Table 2.1/2.2-style random-fault sweep through
    :class:`repro.engine.sweep.ParallelSweepEngine` on any backend of the
    :mod:`repro.topology` registry (``debruijn`` — the default — ``kautz``,
    ``hypercube``, ``shuffle_exchange``, ``undirected_debruijn``), with
    ``--workers`` for multiprocess sharding (bit-for-bit identical rows for
    any worker count), ``--checkpoint`` for JSON checkpoint/resume and
    ``--format json``/``--format csv`` for machine-readable output.

``repro bench``
    Time the bit-parallel 64-trial sweep kernel against the scalar path on
    the tracked configurations and write ``BENCH_sweep.json`` (uploaded as
    a CI artifact, so the perf trajectory is recorded per commit).

``repro embed --d D --n N --faults ...``
    One :class:`repro.engine.service.EmbeddingService` query: the fault-free
    ring for a faulty ``B(d, n)``, its length, and the guarantee check.

``repro serve``
    The async micro-batching gateway (:mod:`repro.server`): concurrent
    ``/embed`` and ``/measure`` requests over HTTP, coalesced into up to
    64-lane kernel launches, with backpressure, ``/stats`` metrics, the
    Prometheus ``/metrics`` exposition and per-request ``/traces``.

``repro stats``
    Scrape a running gateway's ``GET /metrics`` and pretty-print the
    metric families (``--raw`` for the untouched exposition text,
    ``--json`` for parsed machine-readable output, ``--match`` to filter
    by substring).

``repro churn gen`` / ``repro churn run``
    The dynamic-fault churn engine (:mod:`repro.churn`): ``gen`` writes a
    seeded, bit-for-bit replayable JSONL churn trace (independent,
    orbit-correlated or adversarial fault arrivals/heals); ``run`` replays
    a trace — offline against an in-process service, or with ``--url``
    against a live gateway (surviving injected chaos via client retries) —
    asserting every streamed answer is bit-for-bit identical to the
    offline batch recomputation, and optionally appending the scenario
    report to the ``BENCH_sweep.json`` run history.

``repro lint [paths]``
    The AST invariant auditor (:mod:`repro.lint`): the REP rule catalogue
    guarding determinism (seeded RNG streams), cache hygiene (bounded +
    audit-registered caches), locked lazy shared state, executor-only
    kernel access, non-blocking server coroutines and assert-free library
    code.  ``--format json`` emits a versioned machine-readable report;
    ``--baseline``/``--select``/``--ignore`` and ``# repro: noqa[REP0xx]``
    control suppression.  CI's ``analysis`` job gates every PR on it.

Faulty nodes are written either as compact digit strings (``020`` for the
word ``(0, 2, 0)``, alphabets up to 10) or comma-separated digits
(``10,3,0`` for ``(10, 3, 0)`` in larger alphabets).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from collections.abc import Sequence

from .analysis.experiments import available_experiments, run_experiment_result
from .analysis.reporting import format_fault_table, format_fault_table_csv
from .exceptions import ReproError
from .topology import available_topologies
from ._version import __version__

__all__ = ["main"]

#: Experiment names whose registry entries accept sweep kwargs
#: (``trials``/``seed``/``workers``).
_SWEEP_EXPERIMENTS = (
    "table_2_1",
    "table_2_2",
    "topology_sweep",
    "hypercube_vs_debruijn_sweep",
)

#: Experiment names that additionally accept the ``--topology`` selector.
_TOPOLOGY_EXPERIMENTS = ("topology_sweep",)


def parse_word(text: str) -> tuple[int, ...]:
    """Parse one node word: compact digits (``020``) or comma-separated (``0,2,0``).

    The compact form reads one digit per character, so alphabets with
    ``d > 10`` need the comma form (``11,0,3`` for the word ``(11, 0, 3)``).
    The empty word is rejected — no graph here has a length-0 node.
    """
    text = text.strip()
    try:
        if "," in text:
            word = tuple(int(part) for part in text.split(","))
        else:
            word = tuple(int(ch) for ch in text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse word {text!r}: use digits like 020 or comma form 0,2,0"
        ) from None
    if not word:
        raise argparse.ArgumentTypeError("node words cannot be empty")
    return word


def _parse_fault_counts(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip() != "")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse fault counts {text!r}: expected e.g. 0,1,2,5"
        ) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant ring embedding in De Bruijn networks "
        "(Rowley & Bose, ICPP'91) — experiments, fault sweeps and the "
        "embedding service.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "experiment", help="run entries of the paper's experiment registry"
    )
    exp.add_argument("names", nargs="*", help="experiment names (see --list)")
    exp.add_argument("--all", action="store_true", help="run every registered experiment")
    exp.add_argument("--list", action="store_true", help="list experiment names and exit")
    exp.add_argument("--trials", type=int, default=200,
                     help="random-fault trials per row for the fault tables")
    exp.add_argument("--seed", type=int, default=0, help="seed for the fault tables")
    exp.add_argument("--workers", type=int, default=0,
                     help="worker processes for the fault tables (0 = inline)")
    exp.add_argument("--topology", choices=available_topologies(), default=None,
                     help="backend for the topology_sweep experiment "
                     "(rejected if no selected experiment accepts it)")
    exp.add_argument("--format", choices=("table", "csv"), default="table",
                     help="output format (csv: structured rows, shared writer)")

    sweep = sub.add_parser(
        "sweep", help="run a Table 2.1/2.2-style fault sweep through the engine"
    )
    sweep.add_argument("--topology", choices=available_topologies(), default="debruijn",
                       help="network backend to sweep (default: the paper's "
                       "De Bruijn graph)")
    sweep.add_argument("--d", type=int, default=2,
                       help="alphabet size / degree parameter (default 2; the "
                       "hypercube backend requires 2)")
    sweep.add_argument("--n", type=int, required=True,
                       help="word length / dimension parameter")
    sweep.add_argument("--fault-counts", type=_parse_fault_counts, default=None,
                       help="comma-separated fault counts (default: the paper's 0..10,20..50)")
    sweep.add_argument("--trials", type=int, default=200, help="trials per row")
    sweep.add_argument("--seed", type=int, default=0, help="base seed of the trial streams")
    sweep.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = inline; results identical either way)")
    sweep.add_argument("--root", type=parse_word, default=None,
                       help="measurement root (default: the backend's analog "
                       "of the paper's 0...01)")
    sweep.add_argument("--batch", type=int, default=64,
                       help="trials per bit-parallel kernel call, 1..64 "
                       "(1 = scalar path; results identical either way)")
    sweep.add_argument("--checkpoint", default=None,
                       help="JSON checkpoint file for interrupt/resume "
                       "(validated against topology/d/n/root/seed)")
    sweep.add_argument("--no-resume", action="store_true",
                       help="ignore an existing checkpoint and start fresh")
    sweep.add_argument("--fresh", action="store_true",
                       help="delete the checkpoint file before running — the "
                       "escape hatch for a corrupt or mismatched checkpoint")
    sweep.add_argument("--progress", action="store_true",
                       help="report completed trials on stderr")
    sweep.add_argument("--format", choices=("table", "json", "csv"), default=None,
                       help="output format (default: table)")
    sweep.add_argument("--json", action="store_true",
                       help="emit rows as JSON (same as --format json)")

    bench = sub.add_parser(
        "bench", help="benchmark the batched sweep kernel and write BENCH_sweep.json"
    )
    bench.add_argument("--topology", choices=available_topologies(), default="debruijn",
                       help="benchmark this backend's tracked configurations")
    bench.add_argument("--out", default="BENCH_sweep.json",
                       help="output JSON file (default: BENCH_sweep.json)")
    bench.add_argument("--trials", type=int, default=192, help="trials per row")
    bench.add_argument("--seed", type=int, default=0, help="base seed of the trial streams")
    bench.add_argument("--batch", type=int, default=64,
                       help="kernel batch width to benchmark against the scalar path")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats per configuration (best-of-N)")
    bench.add_argument("--quick", action="store_true",
                       help="small trial count for CI smoke (still writes the file)")
    bench.add_argument("--no-serve", action="store_true",
                       help="skip the micro-batching serve benchmark")
    bench.add_argument("--serve-requests", type=int, default=256,
                       help="requests per serving mode in the serve benchmark")
    bench.add_argument("--no-obs", action="store_true",
                       help="skip the instrumentation-overhead benchmark "
                       "(instrumented vs REPRO_OBS_DISABLED sweep)")

    serve = sub.add_parser(
        "serve", help="run the async micro-batching gateway (HTTP, JSON)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (0 = ephemeral, printed on startup)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="fault masks coalesced per kernel launch, 1..64 "
                       "(1 = single-query serving)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="longest a request waits for lane-mates before "
                       "its batch launches (default 2 ms)")
    serve.add_argument("--queue-limit", type=int, default=1024,
                       help="pending requests per shard before 503 "
                       "backpressure kicks in")
    serve.add_argument("--max-cached-answers", type=int, default=256,
                       help="bound on the gateway and service answer LRUs")
    serve.add_argument("--deadline-ms", type=float, default=0.0,
                       help="default per-request /measure deadline in ms "
                       "(0 = none; requests may override via 'deadline_ms')")
    serve.add_argument("--degraded", action="store_true",
                       help="serve guarantee-bound-only answers flagged "
                       "'degraded: true' on queue saturation instead of 503")
    serve.add_argument("--drain-timeout-s", type=float, default=10.0,
                       help="seconds the SIGTERM/SIGINT graceful drain waits "
                       "for in-flight batches")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the fault-injection decision stream")
    serve.add_argument("--chaos-drop-p", type=float, default=0.0,
                       help="probability of dropping the connection unanswered")
    serve.add_argument("--chaos-error-p", type=float, default=0.0,
                       help="probability of answering 503 (retryable)")
    serve.add_argument("--chaos-delay-p", type=float, default=0.0,
                       help="probability of delaying the response")
    serve.add_argument("--chaos-delay-ms", type=float, default=25.0,
                       help="injected delay length in ms")
    serve.add_argument("--chaos-saturate-p", type=float, default=0.0,
                       help="probability of treating the request as queue "
                       "saturation (degraded answer or 503)")

    stats = sub.add_parser(
        "stats", help="scrape and pretty-print a gateway's /metrics exposition"
    )
    stats.add_argument("--url", default="http://127.0.0.1:8787",
                       help="base URL of the running gateway "
                       "(default: http://127.0.0.1:8787)")
    stats.add_argument("--raw", action="store_true",
                       help="print the Prometheus exposition text untouched")
    stats.add_argument("--json", action="store_true",
                       help="emit the parsed samples as JSON")
    stats.add_argument("--match", default=None,
                       help="only show metric families whose name contains "
                       "this substring")

    lint = sub.add_parser(
        "lint", help="audit the source tree against the REP invariant catalogue"
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    churn = sub.add_parser(
        "churn", help="generate and replay dynamic-fault churn scenarios"
    )
    churn_sub = churn.add_subparsers(dest="churn_command", required=True)

    gen = churn_sub.add_parser(
        "gen", help="write a seeded, replayable JSONL churn trace"
    )
    gen.add_argument("--generator", choices=("independent", "orbit", "adversarial"),
                     default="independent",
                     help="fault-arrival model (orbit clusters faults within "
                     "necklace fault-units; adversarial targets the current "
                     "fault-free cycle, debruijn only)")
    gen.add_argument("--topology", choices=available_topologies(), default="debruijn",
                     help="network backend the trace targets")
    gen.add_argument("--d", type=int, default=2, help="degree/alphabet parameter")
    gen.add_argument("--n", type=int, required=True, help="word length / dimension")
    gen.add_argument("--events", type=int, required=True, help="number of events")
    gen.add_argument("--seed", type=int, default=0, help="trace seed")
    gen.add_argument("--p-fault", type=float, default=0.6,
                     help="probability an event is a fault (vs a heal)")
    gen.add_argument("--cluster-p", type=float, default=0.8,
                     help="orbit generator: probability a new fault lands in "
                     "an already-faulty fault-unit")
    gen.add_argument("--max-faults", type=int, default=None,
                     help="ceiling on simultaneous faults (default: "
                     "min(8, nodes//4))")
    gen.add_argument("--out", default="-",
                     help="output trace file ('-' = stdout)")

    run_p = churn_sub.add_parser(
        "run", help="replay a churn trace and hold every answer to the oracle"
    )
    run_p.add_argument("--trace", required=True, help="JSONL trace file to replay")
    run_p.add_argument("--url", default=None,
                       help="base URL of a live gateway (omitted = offline "
                       "replay against an in-process service)")
    run_p.add_argument("--retries", type=int, default=0,
                       help="client retries per request (503 / dropped "
                       "connections) when driving a live gateway")
    run_p.add_argument("--report", default=None,
                       help="write the scenario report JSON to this file "
                       "(default: print to stdout)")
    run_p.add_argument("--bench-out", default=None,
                       help="append the report to this BENCH_sweep.json "
                       "run history")
    run_p.add_argument("--no-strict", action="store_true",
                       help="report mismatches instead of failing on them")

    embed = sub.add_parser(
        "embed", help="query the embedding service for one fault-free ring"
    )
    embed.add_argument("--d", type=int, required=True, help="De Bruijn alphabet size")
    embed.add_argument("--n", type=int, required=True, help="De Bruijn word length")
    embed.add_argument("--faults", type=parse_word, nargs="*", default=[],
                       help="faulty nodes, e.g. --faults 020 112")
    embed.add_argument("--root", type=parse_word, default=None,
                       help="preferred root node for the returned cycle")
    embed.add_argument("--show-cycle", action="store_true",
                       help="print the full cycle (can be huge)")
    embed.add_argument("--json", action="store_true", help="emit the response as JSON")

    return parser


# -- subcommand implementations ------------------------------------------------

def _cmd_experiment(args: argparse.Namespace) -> int:
    names = available_experiments()
    if args.list:
        print("\n".join(names))
        return 0
    selected = names if args.all or not args.names else list(args.names)
    unknown = [name for name in selected if name not in names]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"choose from: {', '.join(names)}", file=sys.stderr)
        return 1
    if args.topology is not None and not any(
        name in _TOPOLOGY_EXPERIMENTS for name in selected
    ):
        # refuse rather than silently run the default backend
        print(f"--topology only applies to: {', '.join(_TOPOLOGY_EXPERIMENTS)}; "
              f"selected experiment(s) ignore it", file=sys.stderr)
        return 1
    for name in selected:
        kwargs = {}
        if name in _SWEEP_EXPERIMENTS:
            kwargs = {
                "trials": args.trials,
                "seed": args.seed,
                "workers": args.workers or None,
            }
        if name in _TOPOLOGY_EXPERIMENTS and args.topology is not None:
            kwargs["topology"] = args.topology
        result = run_experiment_result(name, **kwargs)
        if args.format == "csv":
            # one CSV document per experiment, description as a comment line
            print(f"# {name}: {result.description}")
            print(result.csv(), end="")
            continue
        print("=" * 78)
        print(f"{name}: {result.description}")
        print("-" * 78)
        print(result.text)
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.fault_simulation import PAPER_FAULT_COUNTS
    from .engine.sweep import ParallelSweepEngine, SweepProgress
    from .topology import get_topology

    fmt = args.format or ("json" if args.json else "table")

    if args.fresh and args.checkpoint is not None:
        import os

        try:
            os.unlink(args.checkpoint)
            print(f"repro sweep: discarded checkpoint {args.checkpoint}",
                  file=sys.stderr)
        except FileNotFoundError:
            pass

    def report(progress: SweepProgress) -> None:
        line = (
            f"\r{progress.done_trials}/{progress.total_trials} trials "
            f"(row f={progress.f})"
        )
        if progress.trials_per_s > 0:
            line += (
                f" | {progress.trials_per_s:.0f} trials/s"
                f" | eta {progress.eta_s:.0f}s"
            )
        if progress.workers > 1:
            line += f" | {progress.workers} workers"
        if args.checkpoint is not None:
            line += f" | ckpt lag {progress.checkpoint_lag}"
        # pad so a shorter rewrite fully covers the previous \r line
        print(line.ljust(78), end="", file=sys.stderr, flush=True)

    engine = ParallelSweepEngine(
        args.d,
        args.n,
        root=args.root,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        progress=report if args.progress else None,
        batch=args.batch,
        topology=args.topology,
    )
    rows = engine.run(
        fault_counts=args.fault_counts if args.fault_counts is not None else PAPER_FAULT_COUNTS,
        trials=args.trials,
        seed=args.seed,
        resume=not args.no_resume,
    )
    if args.progress:
        print(file=sys.stderr)
    if fmt == "json":
        payload = {
            "topology": engine.topology,
            "d": args.d,
            "n": args.n,
            "trials": args.trials,
            "seed": args.seed,
            "rows": [dataclasses.asdict(row) for row in rows],
        }
        print(json.dumps(payload, indent=2))
    elif fmt == "csv":
        print(format_fault_table_csv(rows), end="")
    else:
        topo = get_topology(args.topology, args.d, args.n)
        print(format_fault_table(
            rows,
            title=f"Random-fault sweep of {topo.name}",
            reference_header=topo.reference_label,
        ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .engine.bench import (
        run_obs_overhead_bench,
        run_serve_bench,
        run_sweep_bench,
        write_bench_file,
    )

    trials = 24 if args.quick else args.trials
    results = run_sweep_bench(
        trials=trials, seed=args.seed, batch=args.batch, repeats=args.repeats,
        topology=args.topology,
    )
    serve_results = []
    if not args.no_serve:
        serve_results = run_serve_bench(
            requests=64 if args.quick else args.serve_requests, seed=args.seed,
        )
    obs_result = None
    if not args.no_obs:
        obs_result = run_obs_overhead_bench(
            trials=trials, seed=args.seed, batch=args.batch, repeats=args.repeats,
        )
    write_bench_file(
        results, args.out, serve_results=serve_results, obs_result=obs_result
    )
    for r in results:
        equal = "rows identical" if r.rows_equal else "ROWS DIFFER"
        print(
            f"{r.name} [{r.topology}]: {r.nodes} nodes, "
            f"{len(r.fault_counts)}x{r.trials} trials — "
            f"scalar {r.scalar_s:.3f} s, batch={r.batch} {r.batched_s:.3f} s, "
            f"speedup {r.speedup:.1f}x ({equal})"
        )
    for r in serve_results:
        equal = "answers identical" if r.answers_equal else "ANSWERS DIFFER"
        print(
            f"{r.name} [{r.topology}]: {r.requests} requests — "
            f"single-query {r.single_rps:.0f} req/s "
            f"(p50 {r.single_p50_s * 1e3:.2f} ms, p99 {r.single_p99_s * 1e3:.2f} ms), "
            f"micro-batched {r.batched_rps:.0f} req/s "
            f"(p50 {r.batched_p50_s * 1e3:.2f} ms, p99 {r.batched_p99_s * 1e3:.2f} ms), "
            f"occupancy {r.batch_occupancy:.1f}, "
            f"throughput x{r.throughput_gain:.1f} ({equal})"
        )
    if obs_result is not None:
        equal = "rows identical" if obs_result.rows_equal else "ROWS DIFFER"
        print(
            f"{obs_result.name} [{obs_result.topology}]: "
            f"instrumented {obs_result.instrumented_s:.3f} s, "
            f"disabled {obs_result.disabled_s:.3f} s, "
            f"overhead {obs_result.overhead_frac * 100:+.1f}% ({equal})"
        )
    print(f"wrote {args.out}")
    ok = all(r.rows_equal for r in results) and all(
        r.answers_equal for r in serve_results
    )
    if obs_result is not None:
        ok = ok and obs_result.rows_equal
    return 0 if ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import parse_prometheus_text
    from .server.client import ServeClient

    try:
        text = ServeClient(args.url).metrics()
    except OSError as exc:  # no gateway at --url, connection refused, ...
        print(f"repro stats: cannot scrape {args.url}/metrics: {exc}", file=sys.stderr)
        return 1
    if args.raw:
        print(text, end="")
        return 0
    families = parse_prometheus_text(text)
    if args.match is not None:
        families = {
            name: samples
            for name, samples in families.items()
            if args.match in name
        }
    if args.json:
        payload = {
            name: [{"labels": labels, "value": value} for labels, value in samples]
            for name, samples in sorted(families.items())
        }
        print(json.dumps(payload, indent=2))
        return 0
    for name, samples in sorted(families.items()):
        print(name)
        for labels, value in samples:
            label_text = (
                "{" + ", ".join(f"{k}={v!r}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            rendered = f"{int(value)}" if float(value).is_integer() else f"{value:.6g}"
            print(f"  {label_text or '(no labels)'}: {rendered}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .churn.chaos import ChaosConfig
    from .server.gateway import GatewayConfig, run

    chaos = ChaosConfig(
        seed=args.chaos_seed,
        drop_p=args.chaos_drop_p,
        error_p=args.chaos_error_p,
        delay_p=args.chaos_delay_p,
        saturate_p=args.chaos_saturate_p,
        delay_ms=args.chaos_delay_ms,
    )
    return run(GatewayConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        max_cached_answers=args.max_cached_answers,
        deadline_ms=args.deadline_ms,
        degraded=args.degraded,
        chaos=chaos if chaos.enabled else None,
        drain_timeout_s=args.drain_timeout_s,
    ))


def _cmd_churn(args: argparse.Namespace) -> int:
    from .churn import generate_trace, read_trace, run_scenario, write_trace
    from .exceptions import ScenarioMismatchError

    if args.churn_command == "gen":
        trace = generate_trace(
            args.generator,
            topology=args.topology,
            d=args.d,
            n=args.n,
            events=args.events,
            seed=args.seed,
            p_fault=args.p_fault,
            cluster_p=args.cluster_p,
            max_faults=args.max_faults,
        )
        if args.out == "-":
            print(trace.dumps(), end="")
        else:
            write_trace(trace, args.out)
            print(f"wrote {len(trace.events)} events to {args.out}", file=sys.stderr)
        return 0

    trace = read_trace(args.trace)
    client = None
    if args.url is not None:
        from .server.client import ServeClient

        client = ServeClient(args.url, retries=args.retries)
    status = 0
    try:
        report = run_scenario(
            trace,
            client=client,
            strict=not args.no_strict,
            bench_path=args.bench_out,
        )
    except ScenarioMismatchError as exc:
        if exc.report is None:
            raise
        report = exc.report
        status = 1
        print(f"repro churn: {exc}", file=sys.stderr)
    payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if args.report is None:
        print(payload)
    else:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    summary = (
        f"{report.events} events [{report.transport}]: "
        f"{report.incremental} incremental, {report.full} full, "
        f"{report.replayed} replayed, {report.degraded} degraded, "
        f"{report.retries} retries, {len(report.mismatches)} mismatches"
    )
    print(f"repro churn: {summary}", file=sys.stderr)
    return status


def _cmd_embed(args: argparse.Namespace) -> int:
    from .engine.service import EmbeddingService

    service = EmbeddingService()
    response = service.embed(args.d, args.n, faults=args.faults, root_hint=args.root)
    if args.json:
        print(json.dumps(response.as_dict(include_cycle=args.show_cycle), indent=2))
        return 0
    faults = ", ".join("".join(map(str, w)) for w in response.faults) or "(none)"
    necklaces = ", ".join("".join(map(str, w)) for w in response.faulty_necklaces) or "(none)"
    bound = "none (outside guaranteed regimes)" if response.guarantee_bound is None \
        else str(response.guarantee_bound)
    print(f"B({response.d},{response.n}) with {len(response.faults)} faulty node(s): {faults}")
    print(f"faulty necklaces (canonical): {necklaces}")
    print(f"fault-free ring length: {response.length} of {response.d ** response.n} nodes")
    print(f"worst-case guarantee: {bound}; met: {response.meets_guarantee}")
    print(f"service time: {response.elapsed_s * 1e3:.2f} ms")
    if args.show_cycle:
        print("cycle:", " ".join("".join(map(str, w)) for w in response.cycle))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "embed":
            return _cmd_embed(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "churn":
            return _cmd_churn(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except BrokenPipeError:  # e.g. `repro experiment --all | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:  # domain errors become one-line diagnostics
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
