"""The shuffle-exchange graph — the De Bruijn graph's undirected sibling.

The paper repeatedly cites shuffle-exchange results (the necklace-based VLSI
layouts of [Lei83], the permutation routing of [LMR88], the Hamiltonian-cycle
counting of [LHC89]) because the ``N``-node shuffle-exchange graph shares the
De Bruijn graph's necklace structure: its *shuffle* edges are precisely the
rotation (necklace) edges ``x -> pi(x)`` and its *exchange* edges flip the
last digit.  Chapter 4's necklace-counting formulae therefore apply verbatim
to it, and this module exists so those counts can be cross-checked against an
explicit graph in the tests and benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import networkx as nx

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_alphabet, validate_word
from ..words.rotation import rotate_left

__all__ = ["ShuffleExchangeGraph"]


class ShuffleExchangeGraph:
    """The d-ary shuffle-exchange graph on the words of length ``n``.

    Edges (undirected):

    * *shuffle*:  ``x_1...x_n  --  x_2...x_n x_1`` (left rotation),
    * *exchange*: ``x_1...x_{n-1} a  --  x_1...x_{n-1} b`` for ``a != b``
      (in the classical binary case: flip the last bit).
    """

    def __init__(self, d: int, n: int) -> None:
        self.d = validate_alphabet(d)
        if n < 1:
            raise InvalidParameterError(f"word length must be >= 1, got {n}")
        self.n = int(n)

    @property
    def num_nodes(self) -> int:
        return self.d**self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShuffleExchangeGraph(d={self.d}, n={self.n})"

    def nodes(self) -> Iterator[Word]:
        from ..words.alphabet import iter_words

        return iter_words(self.d, self.n)

    def shuffle_neighbor(self, word: Sequence[int]) -> Word:
        """The left-rotation neighbour (a necklace edge)."""
        w = validate_word(word, self.d)
        return rotate_left(w)

    def exchange_neighbors(self, word: Sequence[int]) -> list[Word]:
        """The ``d - 1`` neighbours differing only in the last digit."""
        w = validate_word(word, self.d)
        return [w[:-1] + (a,) for a in range(self.d) if a != w[-1]]

    def neighbors(self, word: Sequence[int]) -> list[Word]:
        w = validate_word(word, self.d)
        result = {rotate_left(w), rotate_left(w, self.n - 1)} | set(self.exchange_neighbors(w))
        result.discard(w)
        return sorted(result)

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        for w in self.nodes():
            shuffled = rotate_left(w)
            if shuffled != w:
                g.add_edge(w, shuffled)
            for other in self.exchange_neighbors(w):
                g.add_edge(w, other)
        return g

    def necklace_edges(self) -> Iterator[tuple[Word, Word]]:
        """Iterate over the shuffle (necklace) edges only."""
        for w in self.nodes():
            shuffled = rotate_left(w)
            if w < shuffled:
                yield w, shuffled
