"""Interconnection-network topologies and connectivity analysis.

Provides the De Bruijn digraph ``B(d, n)`` and its undirected version, the
wrapped butterfly ``F(d, n)`` with its De Bruijn quotient, the hypercube
``Q(n)`` comparison baseline, the Kautz and shuffle-exchange relatives, the
line-graph correspondence used by the paper's optimality argument and fast
vectorized component/eccentricity analysis of faulty graphs.
"""

from .butterfly import ButterflyGraph, ButterflyNode, debruijn_node_class, lift_cycle, lift_edge
from .components import (
    ComponentStats,
    ResidualGraph,
    bfs_levels,
    bfs_levels_table,
    component_of,
    component_sizes,
    component_stats_from_root,
    diameter,
    eccentricity,
    residual_after_node_faults,
    strongly_connected_components,
    weakly_connected_components,
)
from .msbfs import (
    WORD_WIDTH,
    BatchStats,
    batched_root_stats,
    lane_popcounts,
    lane_removed_mask,
    pack_fault_lanes,
)
from .debruijn import (
    DeBruijnGraph,
    edge_label,
    is_debruijn_edge,
    predecessor_matrix,
    predecessors,
    successor_matrix,
    successors,
)
from .hypercube import (
    HypercubeGraph,
    fault_free_cycle_bound,
    gray_code_cycle,
    longest_fault_free_cycle_bruteforce,
)
from .kautz import KautzGraph
from .line_graph import (
    circuit_to_cycle,
    cycle_to_circuit,
    is_balanced_after_removal,
    is_circuit,
    lower_edge_to_node,
    node_to_lower_edge,
)
from .shuffle_exchange import ShuffleExchangeGraph
from .undirected import UndirectedDeBruijnGraph, degree_census

__all__ = [
    "ButterflyGraph",
    "ButterflyNode",
    "debruijn_node_class",
    "lift_cycle",
    "lift_edge",
    "ComponentStats",
    "ResidualGraph",
    "bfs_levels",
    "bfs_levels_table",
    "component_of",
    "component_sizes",
    "component_stats_from_root",
    "diameter",
    "eccentricity",
    "residual_after_node_faults",
    "strongly_connected_components",
    "weakly_connected_components",
    "WORD_WIDTH",
    "BatchStats",
    "batched_root_stats",
    "lane_popcounts",
    "lane_removed_mask",
    "pack_fault_lanes",
    "DeBruijnGraph",
    "edge_label",
    "is_debruijn_edge",
    "predecessor_matrix",
    "predecessors",
    "successor_matrix",
    "successors",
    "HypercubeGraph",
    "fault_free_cycle_bound",
    "gray_code_cycle",
    "longest_fault_free_cycle_bruteforce",
    "KautzGraph",
    "circuit_to_cycle",
    "cycle_to_circuit",
    "is_balanced_after_removal",
    "is_circuit",
    "lower_edge_to_node",
    "node_to_lower_edge",
    "ShuffleExchangeGraph",
    "UndirectedDeBruijnGraph",
    "degree_census",
]
