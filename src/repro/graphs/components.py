"""Connectivity, eccentricity and diameter of (faulty) De Bruijn graphs.

The size of the fault-free cycle found by the FFC algorithm equals the size
of ``B*`` — the largest component of ``B(d, n)`` minus the faulty necklaces —
and the number of communication steps is governed by the eccentricity of the
chosen root within that component (Section 2.5).  Tables 2.1 and 2.2 of the
paper report exactly these two quantities over random fault sets, so this
module provides fast, vectorized primitives for computing them:

* BFS over the int-encoded node set using the numpy successor matrix
  (:func:`repro.graphs.debruijn.successor_matrix`), processing whole BFS
  frontiers per step instead of one node at a time;
* weak/strong component extraction of the residual graph.

A useful structural fact (proved via the line-graph argument in Section 2.5):
removing complete necklaces from ``B(d, n)`` leaves a *balanced* digraph
(every node keeps indegree equal to outdegree), and a connected balanced
digraph is strongly connected.  Hence weak and strong components coincide for
the residual graphs studied here — the test-suite checks this on small cases
— and the cheaper weak-component computation is the default.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, int_to_word, validate_word, word_to_int
from ..words.codec import get_codec

__all__ = [
    "ResidualGraph",
    "residual_after_node_faults",
    "bfs_levels",
    "bfs_levels_table",
    "eccentricity",
    "component_of",
    "weakly_connected_components",
    "strongly_connected_components",
    "component_sizes",
    "diameter",
    "ComponentStats",
    "component_stats_from_root",
]


@dataclass(frozen=True)
class ResidualGraph:
    """``B(d, n)`` minus a set of removed (int-encoded) nodes.

    The removed set is stored as a boolean mask so that BFS sweeps can be
    fully vectorized.  Instances are cheap value objects; all analysis
    functions below take one as their first argument.
    """

    d: int
    n: int
    removed_mask: np.ndarray  # bool, shape (d**n,)

    @property
    def num_total(self) -> int:
        return self.d**self.n

    @property
    def num_removed(self) -> int:
        return int(self.removed_mask.sum())

    @property
    def num_alive(self) -> int:
        return self.num_total - self.num_removed

    def alive_nodes(self) -> np.ndarray:
        """Int encodings of the surviving nodes, ascending."""
        return np.flatnonzero(~self.removed_mask)

    def is_alive(self, node: int) -> bool:
        return not bool(self.removed_mask[node])

    def alive_words(self) -> list[Word]:
        """Tuple encodings of the surviving nodes (for the algorithmic layer)."""
        return [int_to_word(int(v), self.d, self.n) for v in self.alive_nodes()]


def residual_after_node_faults(
    d: int, n: int, faults: Iterable[Sequence[int] | int], remove_whole_necklaces: bool = True
) -> ResidualGraph:
    """Return the residual graph after node faults.

    Parameters
    ----------
    d, n:
        De Bruijn parameters.
    faults:
        Faulty nodes, each given either as a tuple word or an int encoding.
    remove_whole_necklaces:
        When True (the paper's convention), every necklace containing a
        faulty node is removed entirely; when False only the faulty nodes
        themselves are removed.
    """
    codec = get_codec(d, n)
    fault_codes: list[int] = []
    for f in faults:
        if isinstance(f, (int, np.integer)):
            int_to_word(int(f), d, n)  # range check
            fault_codes.append(int(f))
        else:
            word = validate_word(f, d)
            if len(word) != n:
                raise InvalidParameterError(
                    f"fault {word} has length {len(word)}, expected {n} for B({d},{n})"
                )
            fault_codes.append(word_to_int(word, d))
    codes = np.asarray(fault_codes, dtype=codec.dtype)
    if remove_whole_necklaces:
        # one isin over the representative table replaces the per-necklace
        # Python expansion: a word dies iff its necklace contains a fault.
        mask = codec.faulty_necklace_mask(codes)
    else:
        mask = np.zeros(codec.size, dtype=bool)
        mask[codes] = True
    return ResidualGraph(d, n, mask)


def bfs_levels(residual: ResidualGraph, root: int, direction: str = "out") -> np.ndarray:
    """Return BFS distance from ``root`` to every node (``-1`` = unreachable/removed).

    ``direction`` selects edge orientation: ``"out"`` follows successor edges
    (the broadcast of Step 1.1 of the FFC algorithm), ``"in"`` follows
    predecessor edges, ``"both"`` ignores orientation (weak connectivity).
    The sweep processes an entire frontier per iteration using the successor
    matrix, so its cost is ``O(diameter)`` vectorized numpy operations.
    """
    if direction not in ("out", "in", "both"):
        raise InvalidParameterError(f"direction must be 'out', 'in' or 'both', got {direction!r}")
    size = residual.num_total
    if not 0 <= root < size:
        raise InvalidParameterError(f"root {root} outside node range")
    if residual.removed_mask[root]:
        raise InvalidParameterError(f"root {root} has been removed from the graph")

    codec = get_codec(residual.d, residual.n)
    if direction == "out":
        table = codec.successor_table
    elif direction == "in":
        table = codec.predecessor_table
    else:
        table = codec.neighbour_table
    return bfs_levels_table(table, residual.removed_mask, root)


def bfs_levels_table(table: np.ndarray, removed_mask: np.ndarray, root: int) -> np.ndarray:
    """Frontier-vectorized BFS over an explicit ``(N, k)`` neighbour table.

    This is the table-driven core of :func:`bfs_levels`, shared with the
    topology backends of :mod:`repro.topology`: ``table[x]`` lists the
    neighbours of ``x`` in whichever edge orientation the caller selected
    (self-entries are valid padding for irregular degrees — a node gathered
    from itself is already visited, so the entry is inert).  Returns the BFS
    distance from ``root`` to every node, ``-1`` for unreachable/removed.
    """
    size = len(table)
    # `fresh_mask[x]` is True exactly while x is alive and still unvisited, so
    # each branch below needs a single AND instead of recomputing
    # `alive & (dist == -1)` from scratch every level.
    fresh_mask = ~removed_mask
    fresh_mask[root] = False
    dist = np.full(size, -1, dtype=np.int64)
    dist[root] = 0
    frontier = np.array([root], dtype=np.int64)
    flags = np.empty(size, dtype=bool)  # dense-branch scratch, allocated once
    # `size >> 3` alone degenerates to 0 for size < 8 (the dense branch would
    # then run even for single-node frontiers); tiny frontiers always dedup
    # faster by sorting, whatever the graph size.
    dense_threshold = max(size >> 3, 32)
    level = 0
    while frontier.size:
        level += 1
        nxt = table[frontier].ravel()
        if nxt.size < dense_threshold:
            # sparse frontier: sort-based dedup beats a full-size flag pass
            cand = np.unique(nxt)
            fresh = cand[fresh_mask[cand]]
        else:
            flags[:] = False
            flags[nxt] = True
            flags &= fresh_mask
            fresh = np.flatnonzero(flags)
        dist[fresh] = level
        fresh_mask[fresh] = False
        frontier = fresh
    return dist


def component_of(residual: ResidualGraph, root: int) -> np.ndarray:
    """Return the int-encoded nodes of the weak component containing ``root``."""
    dist = bfs_levels(residual, root, direction="both")
    return np.flatnonzero(dist >= 0)


def eccentricity(residual: ResidualGraph, root: int, within_component: bool = True) -> int:
    """Return the directed eccentricity of ``root``: the largest BFS distance.

    ``within_component=True`` (the paper's measurement) takes the maximum
    over the nodes reachable from ``root``; otherwise unreachable alive nodes
    make the eccentricity infinite, reported as ``-1``.
    """
    dist = bfs_levels(residual, root, direction="out")
    reachable = dist >= 0
    if not within_component:
        alive = ~residual.removed_mask
        if np.any(alive & ~reachable):
            return -1
    return int(dist[reachable].max())


def weakly_connected_components(residual: ResidualGraph) -> list[np.ndarray]:
    """Return the weak components of the residual graph, largest first."""
    return _components(residual, direction="both")


def strongly_connected_components(residual: ResidualGraph) -> list[np.ndarray]:
    """Return the strong components of the residual graph, largest first.

    Implemented as forward/backward BFS intersection from an unassigned node
    (a simple variant adequate for the modest graph sizes studied here).
    """
    size = residual.num_total
    assigned = residual.removed_mask.copy()
    components: list[np.ndarray] = []
    for root in range(size):
        if assigned[root]:
            continue
        fwd = bfs_levels(_masked(residual, assigned), root, direction="out") >= 0
        bwd = bfs_levels(_masked(residual, assigned), root, direction="in") >= 0
        comp = np.flatnonzero(fwd & bwd)
        components.append(comp)
        assigned[comp] = True
    components.sort(key=len, reverse=True)
    return components


def component_sizes(residual: ResidualGraph) -> list[int]:
    """Return the sizes of the weak components, largest first."""
    return [len(c) for c in weakly_connected_components(residual)]


def diameter(residual: ResidualGraph, component: np.ndarray | None = None) -> int:
    """Return the directed diameter of a component (largest pairwise BFS distance).

    When ``component`` is omitted, the largest weak component is used.
    Returns ``-1`` if some node of the component cannot reach another
    (possible only when the component is not strongly connected).
    """
    if component is None:
        comps = weakly_connected_components(residual)
        if not comps:
            raise InvalidParameterError("residual graph has no surviving nodes")
        component = comps[0]
    comp_set = set(int(v) for v in component)
    best = 0
    sub_mask = residual.removed_mask.copy()
    outside = np.ones(residual.num_total, dtype=bool)
    outside[list(comp_set)] = False
    sub_mask |= outside
    sub = ResidualGraph(residual.d, residual.n, sub_mask)
    for node in comp_set:
        dist = bfs_levels(sub, node, direction="out")
        reach = dist >= 0
        if reach.sum() < len(comp_set):
            return -1
        best = max(best, int(dist[reach].max()))
    return best


@dataclass(frozen=True)
class ComponentStats:
    """Size and root-eccentricity of the component containing a chosen root.

    These are exactly the two columns measured per trial by the simulations
    behind Tables 2.1 and 2.2.
    """

    root: int
    component_size: int
    root_eccentricity: int


def component_stats_from_root(
    residual: ResidualGraph, root: int, check_balanced: bool = False
) -> ComponentStats:
    """Return size and eccentricity of the component containing ``root``.

    Follows the measurement procedure of Section 2.5.2: the component is the
    weak component containing ``root`` and the eccentricity is the largest
    directed BFS distance from ``root`` within it (the number of broadcast
    steps of FFC Step 1.1).

    Whole-necklace removal keeps the residual digraph balanced, so each weak
    component is strongly connected (module docstring) and ONE directed
    out-BFS yields both numbers — this function runs exactly that single
    sweep.  For residuals that are *not* balanced (e.g. built with
    ``remove_whole_necklaces=False``) the out-reachable set can be a strict
    subset of the weak component; pass ``check_balanced=True`` to rerun the
    historical two-BFS form and raise if the two disagree.
    """
    dist = bfs_levels(residual, root, direction="out")
    reached = np.flatnonzero(dist >= 0)
    if check_balanced:
        comp = component_of(residual, root)
        if not np.array_equal(comp, reached):
            raise InvalidParameterError(
                f"residual graph is not balanced at root {root}: the directed "
                f"out-BFS reaches {len(reached)} nodes but the weak component "
                f"has {len(comp)} — use bfs_levels/component_of directly for "
                f"non-necklace removals"
            )
    return ComponentStats(
        root=root,
        component_size=int(len(reached)),
        root_eccentricity=int(dist.max()),
    )


# -- internals ----------------------------------------------------------------

def _masked(residual: ResidualGraph, extra_mask: np.ndarray) -> ResidualGraph:
    return ResidualGraph(residual.d, residual.n, residual.removed_mask | extra_mask)


def _components(residual: ResidualGraph, direction: str) -> list[np.ndarray]:
    assigned = residual.removed_mask.copy()
    components: list[np.ndarray] = []
    for root in range(residual.num_total):
        if assigned[root]:
            continue
        dist = bfs_levels(ResidualGraph(residual.d, residual.n, assigned), root, direction=direction)
        comp = np.flatnonzero(dist >= 0)
        components.append(comp)
        assigned[comp] = True
    components.sort(key=len, reverse=True)
    return components
