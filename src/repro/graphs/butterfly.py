"""The d-ary wrapped butterfly digraph ``F(d, n)`` and its De Bruijn quotient.

Section 3.4 of the paper transfers the edge-fault ring-embedding results from
``B(d, n)`` to butterflies.  ``F(d, n)`` has node set ``Z_n x Z_d^n`` — node
``(k, x)`` sits at *level* ``k`` and *column* ``x`` — and edges

    ``(k, x_0 x_1 ... x_{n-1})  ->  (k+1 mod n, x_0 ... x_{k-1} a x_{k+1} ... x_{n-1})``

for every digit ``a`` (the level-``k`` digit may be rewritten while moving to
the next level).  Following [ABR90], grouping the butterfly nodes into the
sets ``S_x = {(i, pi^{-i}(x)) : 0 <= i < n}`` and merging each set into a
single vertex collapses ``F(d, n)`` onto ``B(d, n)``; Lemma 3.8 states the
edge-level compatibility and Lemma 3.9/3.10 lift cycles of ``B(d, n)`` to
cycles of ``F(d, n)`` of length ``lcm(k, n)``.  All of those maps are
implemented here and exercised by the Chapter 3 benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from math import lcm

import networkx as nx

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_alphabet, validate_word
from ..words.rotation import rotate_right

__all__ = ["ButterflyGraph", "ButterflyNode", "debruijn_node_class", "lift_cycle", "lift_edge"]

#: A butterfly node: (level, column word).
ButterflyNode = tuple[int, Word]


def debruijn_node_class(word: Sequence[int], d: int) -> list[ButterflyNode]:
    """Return ``S_x``: the butterfly nodes associated with De Bruijn node ``x``.

    ``S_x = {(0, x), (1, pi^{-1}(x)), ..., (n-1, pi^{-(n-1)}(x))}`` as in
    Section 3.4 of the paper.
    """
    w = validate_word(word, d)
    return [(i, rotate_right(w, i)) for i in range(len(w))]


def lift_edge(src: Sequence[int], dst: Sequence[int], d: int, level: int) -> tuple[ButterflyNode, ButterflyNode]:
    """Lift the De Bruijn edge ``src -> dst`` to the butterfly edge at ``level``.

    By Lemma 3.8 the level-``i`` member of ``S_src`` has a butterfly edge to
    the level-``i+1`` member of ``S_dst``; this returns that pair.
    """
    s = validate_word(src, d)
    t = validate_word(dst, d)
    n = len(s)
    if s[1:] != t[:-1]:
        raise InvalidParameterError(f"({s}, {t}) is not a De Bruijn edge")
    return (level % n, rotate_right(s, level)), ((level + 1) % n, rotate_right(t, level + 1))


def lift_cycle(cycle: Sequence[Sequence[int]], d: int) -> list[ButterflyNode]:
    """Lift a cycle of ``B(d, n)`` to a cycle of ``F(d, n)`` (the map ``Phi`` of Lemma 3.9).

    A ``k``-cycle lifts to a cycle of length ``lcm(k, n)``: the lift walks the
    De Bruijn cycle repeatedly while the butterfly level advances by one per
    step, closing up exactly when both the cycle position and the level
    return to their starting values.
    """
    nodes = [tuple(int(x) for x in w) for w in cycle]
    if not nodes:
        raise InvalidParameterError("cannot lift an empty cycle")
    n = len(nodes[0])
    k = len(nodes)
    t = lcm(k, n)
    return [(i % n, rotate_right(nodes[i % k], i)) for i in range(t)]


class ButterflyGraph:
    """The d-ary wrapped butterfly digraph ``F(d, n)``.

    Examples
    --------
    >>> f = ButterflyGraph(2, 3)
    >>> f.num_nodes, f.num_edges
    (24, 48)
    >>> f.successors((0, (1, 0, 1)))
    [(1, (0, 0, 1)), (1, (1, 0, 1))]
    """

    def __init__(self, d: int, n: int) -> None:
        self.d = validate_alphabet(d)
        if n < 1:
            raise InvalidParameterError(f"butterfly dimension must be >= 1, got {n}")
        self.n = int(n)

    # -- census -------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``n * d**n`` nodes."""
        return self.n * self.d**self.n

    @property
    def num_edges(self) -> int:
        """``n * d**(n+1)`` directed edges."""
        return self.n * self.d ** (self.n + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ButterflyGraph(d={self.d}, n={self.n})"

    # -- nodes / edges ---------------------------------------------------------
    def nodes(self) -> Iterator[ButterflyNode]:
        from ..words.alphabet import iter_words

        for level in range(self.n):
            for w in iter_words(self.d, self.n):
                yield (level, w)

    def _check_node(self, node: ButterflyNode) -> ButterflyNode:
        level, word = node
        if not 0 <= level < self.n:
            raise InvalidParameterError(f"level {level} outside range(0, {self.n})")
        w = validate_word(word, self.d)
        if len(w) != self.n:
            raise InvalidParameterError(f"column word {w} must have length {self.n}")
        return level, w

    def successors(self, node: ButterflyNode) -> list[ButterflyNode]:
        """The ``d`` successors: rewrite the level-``k`` digit, advance a level."""
        level, w = self._check_node(node)
        nxt = (level + 1) % self.n
        return [(nxt, w[:level] + (a,) + w[level + 1 :]) for a in range(self.d)]

    def predecessors(self, node: ButterflyNode) -> list[ButterflyNode]:
        """The ``d`` predecessors of a butterfly node."""
        level, w = self._check_node(node)
        prev = (level - 1) % self.n
        return [(prev, w[:prev] + (a,) + w[prev + 1 :]) for a in range(self.d)]

    def has_edge(self, src: ButterflyNode, dst: ButterflyNode) -> bool:
        try:
            src = self._check_node(src)
            dst = self._check_node(dst)
        except (InvalidParameterError, ValueError):
            return False
        return dst in self.successors(src)

    def edges(self) -> Iterator[tuple[ButterflyNode, ButterflyNode]]:
        for node in self.nodes():
            for succ in self.successors(node):
                yield node, succ

    # -- cycles ------------------------------------------------------------------
    def is_cycle(self, nodes: Sequence[ButterflyNode]) -> bool:
        """Return True iff ``nodes`` is a simple directed cycle of ``F(d, n)``."""
        checked = [self._check_node(v) for v in nodes]
        if not checked or len(set(checked)) != len(checked):
            return False
        closed = list(checked) + [checked[0]]
        return all(self.has_edge(a, b) for a, b in zip(closed, closed[1:]))

    def is_hamiltonian_cycle(self, nodes: Sequence[ButterflyNode]) -> bool:
        return len(nodes) == self.num_nodes and self.is_cycle(nodes)

    # -- De Bruijn quotient ----------------------------------------------------------
    def node_class(self, word: Sequence[int]) -> list[ButterflyNode]:
        """Return ``S_x`` for a De Bruijn node ``x`` (see :func:`debruijn_node_class`)."""
        w = validate_word(word, self.d)
        if len(w) != self.n:
            raise InvalidParameterError(f"De Bruijn node {w} must have length {self.n}")
        return debruijn_node_class(w, self.d)

    def quotient_is_debruijn(self) -> bool:
        """Check that merging every ``S_x`` reproduces ``B(d, n)`` (the [ABR90] partition).

        Returns True when, after contracting each class to a single vertex and
        merging parallel edges (and collapsing the resulting self-loops), the
        quotient's edge relation equals that of ``B(d, n)``.
        """
        from .debruijn import DeBruijnGraph
        from ..words.alphabet import iter_words

        b = DeBruijnGraph(self.d, self.n)
        # map each butterfly node to its De Bruijn class representative
        owner: dict[ButterflyNode, Word] = {}
        for x in iter_words(self.d, self.n):
            for member in debruijn_node_class(x, self.d):
                owner[member] = x
        quotient_edges = set()
        for src, dst in self.edges():
            a, b_ = owner[src], owner[dst]
            quotient_edges.add((a, b_))
        debruijn_edges = {(u, v) for u, v in b.edges()}
        return quotient_edges == debruijn_edges

    def lift_cycle(self, cycle: Sequence[Sequence[int]]) -> list[ButterflyNode]:
        """Lift a De Bruijn cycle into this butterfly (see :func:`lift_cycle`)."""
        return lift_cycle(cycle, self.d)

    # -- conversions ---------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.edges())
        return g
