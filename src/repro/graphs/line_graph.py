"""The line-graph structure of De Bruijn graphs: ``B(d, n) = L(B(d, n-1))``.

Labelling the edge ``x_1...x_{n-1} -> x_2...x_n`` of ``B(d, n-1)`` by the
``n``-tuple ``x_1...x_n`` identifies the edges of ``B(d, n-1)`` with the
nodes of ``B(d, n)``, and adjacency of edges with De Bruijn adjacency of the
labels — i.e. ``B(d, n)`` is the line graph of ``B(d, n-1)``.  Section 2.5 of
the paper uses this to prove the worst-case optimality of the FFC algorithm:
a cycle ``C`` of ``B(d, n)`` corresponds to a circuit ``C'`` of ``B(d, n-1)``,
and removing a circuit from a balanced digraph leaves a balanced digraph
whose components are Eulerian, so the nodes of ``B(d, n) - C`` can always be
partitioned into cycles.  These correspondences are implemented here and the
optimality argument itself lives in
:func:`repro.core.bounds.worst_case_fault_placement`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_word

__all__ = [
    "node_to_lower_edge",
    "lower_edge_to_node",
    "cycle_to_circuit",
    "circuit_to_cycle",
    "is_circuit",
    "is_balanced_after_removal",
]


def node_to_lower_edge(word: Sequence[int], d: int) -> tuple[Word, Word]:
    """Map a node of ``B(d, n)`` to the edge of ``B(d, n-1)`` it labels.

    ``x_1...x_n`` labels the edge ``(x_1...x_{n-1}, x_2...x_n)``.
    """
    w = validate_word(word, d)
    if len(w) < 2:
        raise InvalidParameterError("line-graph correspondence requires n >= 2")
    return w[:-1], w[1:]


def lower_edge_to_node(src: Sequence[int], dst: Sequence[int], d: int) -> Word:
    """Map an edge of ``B(d, n-1)`` to the node of ``B(d, n)`` labelling it."""
    s = validate_word(src, d)
    t = validate_word(dst, d)
    if s[1:] != t[:-1]:
        raise InvalidParameterError(f"({s}, {t}) is not an edge of B({d},{len(s)})")
    return s + (t[-1],)


def cycle_to_circuit(cycle: Sequence[Sequence[int]], d: int) -> list[Word]:
    """Map a cycle of ``B(d, n)`` to the corresponding circuit of ``B(d, n-1)``.

    The circuit is returned as its vertex sequence (length equal to the cycle
    length); consecutive vertices are joined by the edges labelled by the
    cycle's nodes.  Example from the paper: the cycle
    ``(012, 122, 221, 212, 120, 201)`` of ``B(3, 3)`` corresponds to the
    circuit ``(01, 12, 22, 21, 12, 20)`` of ``B(3, 2)`` (closing back to 01).
    """
    nodes = [validate_word(w, d) for w in cycle]
    if not nodes:
        raise InvalidParameterError("cannot convert an empty cycle")
    return [w[:-1] for w in nodes]


def circuit_to_cycle(circuit: Sequence[Sequence[int]], d: int) -> list[Word]:
    """Map a circuit of ``B(d, n-1)`` (vertex sequence) to the cycle of ``B(d, n)``.

    Inverse of :func:`cycle_to_circuit`: the ``i``-th node of the result is
    the label of the circuit's ``i``-th edge.
    """
    vertices = [validate_word(w, d) for w in circuit]
    if len(vertices) < 1:
        raise InvalidParameterError("cannot convert an empty circuit")
    k = len(vertices)
    out = []
    for i in range(k):
        src = vertices[i]
        dst = vertices[(i + 1) % k]
        out.append(lower_edge_to_node(src, dst, d))
    return out


def is_circuit(circuit: Sequence[Sequence[int]], d: int) -> bool:
    """Return True iff the closed vertex sequence is a circuit of ``B(d, m)``.

    A circuit is a closed walk whose *edges* are all distinct (vertices may
    repeat).
    """
    vertices = [validate_word(w, d) for w in circuit]
    if not vertices:
        return False
    k = len(vertices)
    edges = []
    for i in range(k):
        src, dst = vertices[i], vertices[(i + 1) % k]
        if src[1:] != dst[:-1]:
            return False
        edges.append((src, dst))
    return len(set(edges)) == len(edges)


def is_balanced_after_removal(d: int, n: int, removed_cycle: Sequence[Sequence[int]]) -> bool:
    """Check that ``B(d, n-1)`` stays balanced after removing a cycle's edge image.

    The optimality argument of Section 2.5 rests on the fact that removing a
    circuit from a balanced digraph (equal in/outdegree everywhere) leaves it
    balanced.  This helper verifies the fact concretely for the circuit in
    ``B(d, n-1)`` induced by a cycle of ``B(d, n)``.
    """
    cycle = [validate_word(w, d) for w in removed_cycle]
    in_deficit: dict[Word, int] = {}
    out_deficit: dict[Word, int] = {}
    circuit = cycle_to_circuit(cycle, d)
    k = len(circuit)
    for i in range(k):
        src = circuit[i]
        dst = circuit[(i + 1) % k]
        out_deficit[src] = out_deficit.get(src, 0) + 1
        in_deficit[dst] = in_deficit.get(dst, 0) + 1
    vertices = set(in_deficit) | set(out_deficit)
    return all(in_deficit.get(v, 0) == out_deficit.get(v, 0) for v in vertices)
