"""The Kautz digraph ``K(d, n)`` — a De Bruijn relative named in the paper's future work.

``K(d, n)`` has as nodes the words of length ``n`` over a ``(d+1)``-letter
alphabet in which consecutive digits differ, and edges
``x_1...x_n -> x_2...x_n a`` for every ``a != x_n``.  It has
``(d+1) d^{n-1}`` nodes, is ``d``-regular and loop-free, and — like the De
Bruijn graph — is a line-graph iterate of a complete digraph, which is why
the paper lists it (Chapter 5) as a natural next target for the ring
embedding techniques.  The class mirrors the
:class:`~repro.graphs.debruijn.DeBruijnGraph` interface so the FFC machinery
can be pointed at it in the extension benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import networkx as nx

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_alphabet

__all__ = ["KautzGraph"]


class KautzGraph:
    """The Kautz digraph ``K(d, n)`` with degree ``d`` and diameter ``n``."""

    def __init__(self, d: int, n: int) -> None:
        self.d = validate_alphabet(d + 1) - 1  # alphabet has d+1 letters
        if self.d < 1:
            raise InvalidParameterError("Kautz graphs require degree d >= 1")
        if n < 1:
            raise InvalidParameterError(f"word length must be >= 1, got {n}")
        self.n = int(n)

    @property
    def alphabet_size(self) -> int:
        return self.d + 1

    @property
    def num_nodes(self) -> int:
        """``(d+1) * d**(n-1)`` nodes."""
        return (self.d + 1) * self.d ** (self.n - 1)

    @property
    def num_edges(self) -> int:
        """``(d+1) * d**n`` directed edges (no loops)."""
        return (self.d + 1) * self.d**self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KautzGraph(d={self.d}, n={self.n})"

    def is_node(self, word: Sequence[int]) -> bool:
        w = tuple(int(x) for x in word)
        if len(w) != self.n:
            return False
        if any(not 0 <= x <= self.d for x in w):
            return False
        return all(a != b for a, b in zip(w, w[1:]))

    def _check(self, word: Sequence[int]) -> Word:
        w = tuple(int(x) for x in word)
        if not self.is_node(w):
            raise InvalidParameterError(f"{w} is not a node of K({self.d},{self.n})")
        return w

    def nodes(self) -> Iterator[Word]:
        def extend(prefix: tuple[int, ...]) -> Iterator[Word]:
            if len(prefix) == self.n:
                yield prefix
                return
            for a in range(self.d + 1):
                if not prefix or a != prefix[-1]:
                    yield from extend(prefix + (a,))

        yield from extend(())

    def successors(self, word: Sequence[int]) -> list[Word]:
        w = self._check(word)
        return [w[1:] + (a,) for a in range(self.d + 1) if a != w[-1]]

    def predecessors(self, word: Sequence[int]) -> list[Word]:
        w = self._check(word)
        return [(a,) + w[:-1] for a in range(self.d + 1) if a != w[0]]

    def has_edge(self, src: Sequence[int], dst: Sequence[int]) -> bool:
        if not (self.is_node(src) and self.is_node(dst)):
            return False
        s, t = tuple(src), tuple(dst)
        return s[1:] == t[:-1] and s != t

    def edges(self) -> Iterator[tuple[Word, Word]]:
        for w in self.nodes():
            for s in self.successors(w):
                yield w, s

    def is_cycle(self, nodes: Sequence[Sequence[int]]) -> bool:
        checked = [self._check(w) for w in nodes]
        if not checked or len(set(checked)) != len(checked):
            return False
        closed = checked + [checked[0]]
        return all(self.has_edge(a, b) for a, b in zip(closed, closed[1:]))

    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.edges())
        return g
