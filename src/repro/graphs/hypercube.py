"""The binary hypercube ``Q(n)`` — the comparison baseline of Chapter 2.

The introduction to Chapter 2 compares the De Bruijn results against the
known hypercube results of [WC92, CL91a]: a fault-free cycle of length
``2**n - 2f`` exists in the ``2**n``-node hypercube whenever ``f <= n - 2``
nodes fail.  The headline example compares the 4096-node hypercube ``Q(12)``
(24,576 edges) against the 4096-node De Bruijn graph ``B(4, 6)`` (16,384
non-loop edges) with two faults.

The paper only *quotes* the hypercube bound, so this module provides the
graph itself, the analytic bound, a Gray-code Hamiltonian cycle and a small
constructive fault-avoiding cycle search used to sanity-check the bound on
small cubes.  The full constructions of [WC92, CL91a] are out of scope; the
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import networkx as nx

from ..exceptions import InvalidParameterError

__all__ = [
    "HypercubeGraph",
    "gray_code_cycle",
    "fault_free_cycle_bound",
    "longest_fault_free_cycle_bruteforce",
]


def fault_free_cycle_bound(n: int, f: int) -> int:
    """Return the guaranteed fault-free cycle length ``2**n - 2f`` for ``f <= n-2`` faults.

    Raises
    ------
    InvalidParameterError
        If ``f`` exceeds the bound's fault budget ``n - 2``.
    """
    if n < 2:
        raise InvalidParameterError("hypercube bound requires n >= 2")
    if f < 0 or f > n - 2:
        raise InvalidParameterError(f"the [WC92] bound covers 0 <= f <= n-2, got f={f}")
    return 2**n - 2 * f


def gray_code_cycle(n: int) -> list[int]:
    """Return a Hamiltonian cycle of ``Q(n)`` as the reflected Gray code sequence."""
    if n < 2:
        raise InvalidParameterError("Q(n) has a Hamiltonian cycle only for n >= 2")
    return [i ^ (i >> 1) for i in range(2**n)]


class HypercubeGraph:
    """The n-dimensional binary hypercube with ``2**n`` nodes (int-encoded bitstrings)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise InvalidParameterError(f"hypercube dimension must be >= 1, got {n}")
        self.n = int(n)

    @property
    def num_nodes(self) -> int:
        return 2**self.n

    @property
    def num_edges(self) -> int:
        """``n * 2**(n-1)`` undirected edges."""
        return self.n * 2 ** (self.n - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HypercubeGraph(n={self.n})"

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def neighbors(self, node: int) -> list[int]:
        """Return the ``n`` nodes at Hamming distance one."""
        self._check(node)
        return [node ^ (1 << i) for i in range(self.n)]

    def has_edge(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        diff = a ^ b
        return diff != 0 and (diff & (diff - 1)) == 0

    def edges(self) -> Iterator[tuple[int, int]]:
        for a in self.nodes():
            for b in self.neighbors(a):
                if a < b:
                    yield a, b

    def is_cycle(self, nodes: Sequence[int]) -> bool:
        """Return True iff ``nodes`` is a simple cycle of ``Q(n)`` (length >= 4)."""
        if len(nodes) < 4 or len(set(nodes)) != len(nodes):
            return False
        closed = list(nodes) + [nodes[0]]
        return all(self.has_edge(a, b) for a, b in zip(closed, closed[1:]))

    def is_hamiltonian_cycle(self, nodes: Sequence[int]) -> bool:
        return len(nodes) == self.num_nodes and self.is_cycle(nodes)

    def hamiltonian_cycle(self) -> list[int]:
        """Return the Gray-code Hamiltonian cycle."""
        return gray_code_cycle(self.n)

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.edges())
        return g

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise InvalidParameterError(f"{node} is not a node of Q({self.n})")


def longest_fault_free_cycle_bruteforce(n: int, faults: Iterable[int], limit_nodes: int = 1 << 14) -> list[int]:
    """Return a longest cycle of ``Q(n)`` avoiding ``faults`` by exhaustive DFS.

    Exponential-time reference implementation used only to validate
    :func:`fault_free_cycle_bound` on very small cubes (``n <= 4``) in the
    test-suite; guarded by ``limit_nodes`` to avoid accidental blow-ups.
    """
    cube = HypercubeGraph(n)
    fault_set = {int(f) for f in faults}
    for f in fault_set:
        cube._check(f)
    alive = [v for v in cube.nodes() if v not in fault_set]
    if len(alive) < 4:
        return []
    if cube.num_nodes > limit_nodes:
        raise InvalidParameterError("bruteforce search restricted to small hypercubes")

    best: list[int] = []
    start = alive[0]
    visited = {start}
    path = [start]

    def dfs() -> None:
        nonlocal best
        current = path[-1]
        for nxt in cube.neighbors(current):
            if nxt in fault_set:
                continue
            if nxt == start and len(path) >= 4 and len(path) > len(best):
                best = list(path)
            if nxt not in visited:
                visited.add(nxt)
                path.append(nxt)
                dfs()
                path.pop()
                visited.remove(nxt)

    # try every start node so that an isolated-looking start cannot hide the optimum
    for s in alive:
        start = s
        visited = {start}
        path = [start]
        dfs()
        if len(best) == len(alive):
            break
    return best
