"""The directed De Bruijn graph ``B(d, n)``.

``B(d, n)`` has the ``d**n`` words of length ``n`` over ``Z_d`` as nodes and a
directed edge from ``x_1 x_2 ... x_n`` to ``x_2 ... x_n a`` for every digit
``a``.  Every node has indegree and outdegree ``d``; the ``d`` constant words
``a^n`` carry self-loops.  Edges are in one-to-one correspondence with words
of length ``n + 1`` (the edge ``x_1...x_n -> x_2...x_{n+1}`` is labelled
``x_1...x_{n+1}``), which is why ``B(d, n+1)`` is the line graph of
``B(d, n)`` — a fact the paper exploits in its optimality argument
(Section 2.5) and that :mod:`repro.graphs.line_graph` implements.

Two access styles are provided, mirroring the package-wide convention:

* tuple-encoded words with per-node successor/predecessor queries (readable,
  used by the algorithmic code in :mod:`repro.core`);
* int-encoded words with whole-graph numpy successor/predecessor matrices
  (the vectorized fast path used by :mod:`repro.graphs.components` and the
  random-fault simulations of :mod:`repro.analysis`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from ..exceptions import InvalidParameterError
from ..words.alphabet import (
    Word,
    int_to_word,
    iter_words,
    validate_alphabet,
    validate_word,
    word_to_int,
)
from ..words.codec import WordCodec, get_codec

__all__ = [
    "DeBruijnGraph",
    "successors",
    "predecessors",
    "successor_matrix",
    "predecessor_matrix",
    "edge_label",
    "is_debruijn_edge",
]


def successors(word: Sequence[int], d: int) -> list[Word]:
    """Return the ``d`` successors of ``word`` in ``B(d, n)``: ``x_2...x_n a``."""
    w = validate_word(word, d)
    return [w[1:] + (a,) for a in range(d)]


def predecessors(word: Sequence[int], d: int) -> list[Word]:
    """Return the ``d`` predecessors of ``word`` in ``B(d, n)``: ``a x_1...x_{n-1}``."""
    w = validate_word(word, d)
    return [(a,) + w[:-1] for a in range(d)]


def is_debruijn_edge(src: Sequence[int], dst: Sequence[int], d: int) -> bool:
    """Return True iff ``(src, dst)`` is an edge of ``B(d, n)``."""
    s = validate_word(src, d)
    t = validate_word(dst, d)
    return len(s) == len(t) and s[1:] == t[:-1]


def edge_label(src: Sequence[int], dst: Sequence[int], d: int) -> Word:
    """Return the ``(n+1)``-tuple labelling the edge ``src -> dst``.

    The label is ``x_1 ... x_n a`` where ``src = x_1...x_n`` and ``dst``
    ends in ``a``; it is simultaneously a node of ``B(d, n+1)``, realising the
    line-graph correspondence.
    """
    if not is_debruijn_edge(src, dst, d):
        raise InvalidParameterError(f"({src}, {dst}) is not an edge of B({d}, {len(src)})")
    return tuple(src) + (tuple(dst)[-1],)


def successor_matrix(d: int, n: int) -> np.ndarray:
    """Return the ``(d**n, d)`` int64 matrix ``S`` with ``S[x, a] = (x*d + a) mod d**n``.

    Row ``x`` lists the int-encoded successors of the int-encoded node ``x``.
    The whole matrix is built with two vectorized numpy operations, which is
    the preferred representation for BFS/eccentricity sweeps over large
    graphs (Tables 2.1/2.2 run thousands of BFS traversals).
    """
    validate_alphabet(d)
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    size = d**n
    base = (np.arange(size, dtype=np.int64) * d) % size
    return base[:, None] + np.arange(d, dtype=np.int64)[None, :]


def predecessor_matrix(d: int, n: int) -> np.ndarray:
    """Return the ``(d**n, d)`` int64 matrix ``P`` with ``P[x, a] = a*d**(n-1) + x // d``."""
    validate_alphabet(d)
    if n < 1:
        raise InvalidParameterError(f"word length must be >= 1, got {n}")
    size = d**n
    high = d ** (n - 1)
    base = np.arange(size, dtype=np.int64) // d
    return base[:, None] + np.arange(d, dtype=np.int64)[None, :] * high


class DeBruijnGraph:
    """The d-ary directed De Bruijn graph ``B(d, n)``.

    The instance is lightweight: nodes and edges are generated on demand from
    the arithmetic structure rather than stored, so constructing
    ``DeBruijnGraph(2, 20)`` is free even though it has a million nodes.

    Examples
    --------
    >>> g = DeBruijnGraph(2, 3)
    >>> g.num_nodes, g.num_edges
    (8, 16)
    >>> g.successors((1, 0, 1))
    [(0, 1, 0), (0, 1, 1)]
    """

    def __init__(self, d: int, n: int) -> None:
        self.d = validate_alphabet(d)
        if n < 1:
            raise InvalidParameterError(f"word length must be >= 1, got {n}")
        self.n = int(n)

    # -- census ---------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``d**n`` nodes."""
        return self.d**self.n

    @property
    def num_edges(self) -> int:
        """``d**(n+1)`` directed edges, including the ``d`` self-loops."""
        return self.d ** (self.n + 1)

    @property
    def num_loops(self) -> int:
        """The ``d`` self-loop edges at the constant words ``a^n``."""
        return self.d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeBruijnGraph(d={self.d}, n={self.n})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeBruijnGraph):
            return NotImplemented
        return (self.d, self.n) == (other.d, other.n)

    def __hash__(self) -> int:
        return hash(("DeBruijnGraph", self.d, self.n))

    # -- nodes ------------------------------------------------------------------
    def nodes(self) -> Iterator[Word]:
        """Iterate over all nodes in base-``d`` numeric order."""
        return iter_words(self.d, self.n)

    def __contains__(self, word: object) -> bool:
        if not isinstance(word, tuple) or len(word) != self.n:
            return False
        return all(isinstance(x, int) and 0 <= x < self.d for x in word)

    def node_from_int(self, value: int) -> Word:
        """Return the tuple-encoded node with int encoding ``value``."""
        return int_to_word(value, self.d, self.n)

    def node_to_int(self, word: Sequence[int]) -> int:
        """Return the int encoding of a tuple-encoded node."""
        return word_to_int(validate_word(word, self.d), self.d)

    # -- edges ------------------------------------------------------------------
    def successors(self, word: Sequence[int]) -> list[Word]:
        """Return the ``d`` successors of ``word`` (Section 1.2's edge rule)."""
        w = validate_word(word, self.d)
        self._check_length(w)
        return successors(w, self.d)

    def predecessors(self, word: Sequence[int]) -> list[Word]:
        """Return the ``d`` predecessors of ``word``."""
        w = validate_word(word, self.d)
        self._check_length(w)
        return predecessors(w, self.d)

    def has_edge(self, src: Sequence[int], dst: Sequence[int]) -> bool:
        """Return True iff ``src -> dst`` is an edge of this graph."""
        try:
            s = validate_word(src, self.d)
            t = validate_word(dst, self.d)
        except InvalidParameterError:
            return False
        return len(s) == self.n and len(t) == self.n and s[1:] == t[:-1]

    def edges(self) -> Iterator[tuple[Word, Word]]:
        """Iterate over all directed edges (including self-loops)."""
        for w in self.nodes():
            for s in successors(w, self.d):
                yield w, s

    def edge_labels(self) -> Iterator[Word]:
        """Iterate over all edges as their ``(n+1)``-tuple labels."""
        return iter_words(self.d, self.n + 1)

    def edge_from_label(self, label: Sequence[int]) -> tuple[Word, Word]:
        """Return the edge ``(x_1...x_n, x_2...x_{n+1})`` labelled by an ``(n+1)``-tuple."""
        lab = validate_word(label, self.d)
        if len(lab) != self.n + 1:
            raise InvalidParameterError(
                f"edge labels of B({self.d},{self.n}) have length {self.n + 1}, got {len(lab)}"
            )
        return lab[:-1], lab[1:]

    def successor_matrix(self) -> np.ndarray:
        """Vectorized successor table; see :func:`successor_matrix`."""
        return successor_matrix(self.d, self.n)

    def predecessor_matrix(self) -> np.ndarray:
        """Vectorized predecessor table; see :func:`predecessor_matrix`."""
        return predecessor_matrix(self.d, self.n)

    @property
    def codec(self) -> WordCodec:
        """The shared integer-word codec for this graph (cached per ``(d, n)``).

        The codec carries the rotation/necklace-representative/period tables
        and the read-only successor/predecessor matrices that power every
        vectorized fast path (:mod:`repro.graphs.components`,
        :mod:`repro.analysis.fault_simulation`).
        """
        return get_codec(self.d, self.n)

    # -- degrees -------------------------------------------------------------------
    def in_degree(self, word: Sequence[int]) -> int:
        """Indegree (always ``d``; loops count once)."""
        self._check_length(validate_word(word, self.d))
        return self.d

    def out_degree(self, word: Sequence[int]) -> int:
        """Outdegree (always ``d``; loops count once)."""
        self._check_length(validate_word(word, self.d))
        return self.d

    def has_loop(self, word: Sequence[int]) -> bool:
        """Return True iff ``word`` is a constant word ``a^n`` (carries a self-loop)."""
        w = validate_word(word, self.d)
        self._check_length(w)
        return len(set(w)) == 1

    # -- verification helpers ---------------------------------------------------------
    def is_path(self, nodes: Sequence[Sequence[int]]) -> bool:
        """Return True iff consecutive elements of ``nodes`` are joined by edges."""
        nodes = [validate_word(w, self.d) for w in nodes]
        return all(self.has_edge(a, b) for a, b in zip(nodes, nodes[1:]))

    def is_cycle(self, nodes: Sequence[Sequence[int]]) -> bool:
        """Return True iff ``nodes`` lists a simple directed cycle of this graph.

        ``nodes`` lists the cycle's vertices once each (the closing edge from
        the last back to the first vertex is implicit).  A single node is a
        cycle only if it carries a self-loop.
        """
        nodes = [validate_word(w, self.d) for w in nodes]
        if not nodes:
            return False
        if len(set(nodes)) != len(nodes):
            return False
        if len(nodes) == 1:
            return self.has_loop(nodes[0])
        return self.is_path(nodes) and self.has_edge(nodes[-1], nodes[0])

    def is_hamiltonian_cycle(self, nodes: Sequence[Sequence[int]]) -> bool:
        """Return True iff ``nodes`` is a Hamiltonian cycle of ``B(d, n)``."""
        return len(nodes) == self.num_nodes and self.is_cycle(nodes)

    # -- conversions ------------------------------------------------------------------
    def to_networkx(self, remove_loops: bool = False) -> nx.DiGraph:
        """Return the graph as a :class:`networkx.DiGraph` (tuple-encoded nodes)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes())
        for src, dst in self.edges():
            if remove_loops and src == dst:
                continue
            g.add_edge(src, dst)
        return g

    def subgraph_without(self, removed: Iterable[Sequence[int]]) -> nx.DiGraph:
        """Return the networkx digraph of ``B(d, n)`` minus a set of nodes.

        This is the "faulty graph" of Chapter 2: the removed nodes (typically
        full necklaces) disappear along with all their incident edges.
        """
        removed_set = {validate_word(w, self.d) for w in removed}
        g = nx.DiGraph()
        for w in self.nodes():
            if w not in removed_set:
                g.add_node(w)
        for src, dst in self.edges():
            if src not in removed_set and dst not in removed_set:
                g.add_edge(src, dst)
        return g

    # -- internals -----------------------------------------------------------------------
    def _check_length(self, w: Word) -> None:
        if len(w) != self.n:
            raise InvalidParameterError(
                f"node {w} has length {len(w)}, expected {self.n} for B({self.d},{self.n})"
            )
