"""Bit-parallel multi-trial BFS: measure up to 64 fault trials per sweep.

The random-fault simulations behind Tables 2.1/2.2 reduce to one directed
BFS per trial, all over the *same* successor structure — only the
removed-node mask differs between trials.  This module collapses that
redundancy by the machine word width: each node carries one ``uint64`` whose
bit ``t`` says "node is on trial ``t``'s frontier", so a single vectorized
BFS step advances up to :data:`WORD_WIDTH` trials at once.

The kernel is topology-generic: it consumes any *source* exposing ``size``
(node count) and ``predecessor_columns`` (contiguous in-neighbour gather
columns) — the De Bruijn :class:`~repro.words.codec.WordCodec` and every
:class:`~repro.topology.base.Topology` backend alike.  Columns may pad
irregular in-degrees with the node's own code; a self-gather only re-reads a
visited lane and is masked off by ``avail``.

The step itself is a pure gather.  A node ``y`` with in-neighbour columns
``P[y, a]`` gets the out-direction frontier update

``next[y] = (frontier[P[y, 0]] | ... | frontier[P[y, k-1]]) & alive[y] & ~visited[y]``

— ``k`` full-array gathers and a few bitwise ops per level, with no scatter
and no per-trial work.  Per-trial results are recovered cheaply:

* *eccentricity*: an OR-reduction of the newly-reached lanes yields one
  ``uint64`` whose set bits are the trials that gained nodes this level, so
  each trial's eccentricity is the last level its bit was set;
* *component size*: one transposed popcount of the final ``visited`` lanes
  (``np.unpackbits``) counts each trial's reached nodes.

For the De Bruijn graph whole-necklace removal keeps the residual digraph
balanced (see :mod:`repro.graphs.components`), so the out-reachable set from
the root *is* its component and this one sweep produces exactly the paper's
``(component size, root eccentricity)`` measurement for every packed trial;
for undirected topologies the same holds trivially.

Trials whose root is itself removed are not handled here: the kernel reports
them in ``root_dead`` and the caller peels them onto the scalar
root-fallback path (:meth:`repro.analysis.fault_simulation.FaultSweepRunner`),
which is statistically rare in the tabulated regimes.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "WORD_WIDTH",
    "BatchStats",
    "BatchWorkspace",
    "pack_fault_lanes",
    "pack_mask_lanes",
    "lane_removed_mask",
    "lane_popcounts",
    "batched_root_stats",
]

#: Number of trials packed into one lane word (the uint64 width).
WORD_WIDTH = 64

_ONE = np.uint64(1)
_BITS = _ONE << np.arange(WORD_WIDTH, dtype=np.uint64)


class BatchStats:
    """Result of one batched sweep over ``B <= 64`` trials.

    ``sizes[t]``/``eccs[t]`` are valid only for trials whose bit is clear in
    ``root_dead``; the caller measures the others via the scalar fallback.
    ``levels`` is the number of BFS frontier expansions the sweep ran (the
    deepest level reached by any lane) — profiling metadata, not a result.
    """

    __slots__ = ("sizes", "eccs", "root_dead", "levels")

    def __init__(
        self,
        sizes: np.ndarray,
        eccs: np.ndarray,
        root_dead: int,
        levels: int = 0,
    ) -> None:
        self.sizes = sizes
        self.eccs = eccs
        self.root_dead = root_dead
        self.levels = levels

    def dead_trials(self) -> list[int]:
        """Indices of the trials whose root was removed (to be peeled)."""
        return [t for t in range(len(self.sizes)) if (self.root_dead >> t) & 1]


class BatchWorkspace:
    """Reusable per-graph scratch buffers for :func:`batched_root_stats`.

    A resident executor launches the kernel thousands of times over the same
    graph; the three ``uint64[size]`` sweep arrays (frontier, next, gather
    scratch) dominate the kernel's allocation cost and never change shape, so
    a long-lived caller allocates them once here and passes the workspace to
    every launch.  The workspace is NOT safe for concurrent launches — the
    owner (e.g. :class:`repro.engine.executor.KernelExecutor`) serialises
    access.
    """

    __slots__ = ("size", "frontier", "nxt", "scratch")

    def __init__(self, size: int) -> None:
        self.size = int(size)
        self.frontier = np.empty(self.size, dtype=np.uint64)
        self.nxt = np.empty(self.size, dtype=np.uint64)
        self.scratch = np.empty(self.size, dtype=np.uint64)


class KernelSource(Protocol):
    """Structural contract on the graph supplier of the packed kernels.

    Satisfied by :class:`~repro.words.codec.WordCodec` and every
    :class:`~repro.topology.base.Topology` backend; the kernels read only
    the node count and the contiguous predecessor gather columns (plus, for
    fault packing, an optional ``fault_unit_members`` closure probed with
    ``getattr``).
    """

    @property
    def size(self) -> int: ...

    @property
    def predecessor_columns(self) -> tuple[np.ndarray, ...]: ...


def pack_fault_lanes(source: KernelSource, fault_codes: np.ndarray | Sequence) -> np.ndarray:
    """Pack a batch of trials' fault sets into removed-lanes: ``uint64[size]``.

    ``source`` is a :class:`~repro.words.codec.WordCodec` (necklace fault
    units) or any :class:`~repro.topology.base.Topology` backend (its own
    ``fault_unit_members`` closure).  ``fault_codes`` is a ``(B, f)`` integer
    array — trial ``t``'s ``f`` faulty node codes in row ``t`` (``B <= 64``;
    ``f`` is fixed within a table row, so the batch is rectangular; ``f = 0``
    packs to all-zero lanes).  Bit ``t`` of ``lanes[x]`` is set iff node
    ``x`` lies in a fault unit containing one of trial ``t``'s faults —
    bit-for-bit the mask ``source``'s unit closure computes for that trial
    alone (:meth:`~repro.words.codec.WordCodec.faulty_necklace_mask` in the
    De Bruijn case).
    """
    codes = np.asarray(fault_codes, dtype=np.int64)
    if codes.ndim != 2:
        raise InvalidParameterError(
            f"expected a (batch, f) fault-code array, got shape {codes.shape}"
        )
    batch = codes.shape[0]
    if not 1 <= batch <= WORD_WIDTH:
        raise InvalidParameterError(f"batch size must be in 1..{WORD_WIDTH}, got {batch}")
    lanes = np.zeros(source.size, dtype=np.uint64)
    if codes.shape[1] == 0:
        return lanes
    if codes.min() < 0 or codes.max() >= source.size:
        raise InvalidParameterError("fault code outside node range")
    members_of = getattr(source, "fault_unit_members", None)
    if members_of is None:  # a plain WordCodec: units are necklaces
        members_of = source.necklace_member_matrix
    members = members_of(codes)  # (k, B, f)
    for t in range(batch):
        # Duplicate indices are harmless under |= with a single constant bit.
        lanes[members[:, t, :].ravel()] |= _BITS[t]
    return lanes


def pack_mask_lanes(masks: Sequence[np.ndarray], size: int) -> np.ndarray:
    """Pack per-request boolean removed-masks into lanes: ``uint64[size]``.

    The ragged-batch dual of :func:`pack_fault_lanes`: request ``t`` supplies
    its own ``bool[size]`` removed mask (requests in one micro-batch may
    remove different numbers of fault units — the serving case), and bit
    ``t`` of ``lanes[x]`` is set iff request ``t`` removed node ``x``.
    """
    if not 1 <= len(masks) <= WORD_WIDTH:
        raise InvalidParameterError(
            f"batch size must be in 1..{WORD_WIDTH}, got {len(masks)}"
        )
    lanes = np.zeros(size, dtype=np.uint64)
    for t, mask in enumerate(masks):
        if mask.shape != (size,):
            raise InvalidParameterError(
                f"mask {t} has shape {mask.shape}, expected ({size},)"
            )
        lanes |= mask.astype(np.uint64) << np.uint64(t)
    return lanes


def lane_removed_mask(lanes: np.ndarray, trial: int) -> np.ndarray:
    """Extract trial ``trial``'s boolean removed-mask from packed lanes."""
    return (lanes >> np.uint64(trial)) & _ONE != 0


def lane_popcounts(lanes: np.ndarray, batch: int) -> np.ndarray:
    """Per-trial popcount over nodes: ``out[t] = #{x : bit t of lanes[x]}``.

    One transposed popcount via ``np.unpackbits`` on the little-endian byte
    view — ``O(64 * d**n)`` byte ops once per batch, instead of 64 masked
    passes over the lane array.
    """
    le = lanes.astype("<u8", copy=False)
    bits = np.unpackbits(le.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little")
    return bits.sum(axis=0, dtype=np.int64)[:batch]


def batched_root_stats(
    source: KernelSource,
    removed_lanes: np.ndarray,
    root: int | np.ndarray,
    batch: int,
    workspace: BatchWorkspace | None = None,
) -> BatchStats:
    """Run one bit-parallel out-BFS across all packed trials.

    ``source`` supplies the graph structure: any object with ``size`` and
    ``predecessor_columns`` — a :class:`~repro.words.codec.WordCodec` or a
    :class:`~repro.topology.base.Topology` backend.  ``root`` is either one
    shared root code (the fault-sweep case: every trial measures from the
    paper's ``R``) or a ``(batch,)`` array giving lane ``t`` its own root
    (the root-fallback case: tied candidate roots racing over one shared
    fault mask).  Returns per-trial ``(reached-region size, root
    eccentricity)`` for every lane whose root survives, exactly as the
    scalar path measures them (reached-node count and deepest BFS level).
    Lanes whose root is removed are skipped and flagged in
    :attr:`BatchStats.root_dead`.

    ``workspace`` optionally supplies preallocated sweep buffers
    (:class:`BatchWorkspace`) so resident callers amortise the per-launch
    allocations; results are identical with or without it.
    """
    size = source.size
    if removed_lanes.shape != (size,) or removed_lanes.dtype != np.uint64:
        raise InvalidParameterError(
            f"removed_lanes must be uint64 of shape ({size},), "
            f"got {removed_lanes.dtype} {removed_lanes.shape}"
        )
    if not 1 <= batch <= WORD_WIDTH:
        raise InvalidParameterError(f"batch size must be in 1..{WORD_WIDTH}, got {batch}")
    roots = np.broadcast_to(np.asarray(root, dtype=np.int64), (batch,))
    if roots.size and (roots.min() < 0 or roots.max() >= size):
        raise InvalidParameterError(f"root {root} outside node range")

    trial_bits = _BITS[:batch]
    all_bits = np.uint64(2**batch - 1)
    dead_mask = (removed_lanes[roots] & trial_bits) != 0
    root_dead = int(np.bitwise_or.reduce(trial_bits[dead_mask])) if dead_mask.any() else 0
    sizes = np.zeros(batch, dtype=np.int64)
    eccs = np.zeros(batch, dtype=np.int64)
    if root_dead == int(all_bits):
        return BatchStats(sizes, eccs, root_dead)

    if workspace is not None and workspace.size != size:
        raise InvalidParameterError(
            f"workspace sized for {workspace.size} nodes, graph has {size}"
        )
    if workspace is None:
        frontier = np.zeros(size, dtype=np.uint64)
        nxt = np.empty(size, dtype=np.uint64)
        scratch = np.empty(size, dtype=np.uint64)
    else:
        frontier, nxt, scratch = workspace.frontier, workspace.nxt, workspace.scratch
        frontier.fill(0)
    np.bitwise_or.at(frontier, roots[~dead_mask], trial_bits[~dead_mask])
    # `avail[x]` holds the lanes in which x is alive and not yet visited —
    # one AND per step instead of `& alive & ~visited`, and since every
    # newly-reached lane set is a subset of `avail`, marking it visited is a
    # XOR.  The visited set itself is never materialised: it is recovered at
    # the end as `alive ^ avail` (visited lanes are always alive).
    alive = ~removed_lanes
    avail = alive ^ frontier  # root lanes start visited
    pred_cols = source.predecessor_columns
    gains: list[np.uint64] = []  # per-level OR of the newly-reached lanes
    while True:
        np.take(frontier, pred_cols[0], out=nxt)
        for col in pred_cols[1:]:
            np.take(frontier, col, out=scratch)
            np.bitwise_or(nxt, scratch, out=nxt)
        np.bitwise_and(nxt, avail, out=nxt)
        gained = np.bitwise_or.reduce(nxt)
        if not int(gained):
            break
        np.bitwise_xor(avail, nxt, out=avail)
        gains.append(gained)
        frontier, nxt = nxt, frontier  # ping-pong: old frontier becomes scratch
    if gains:
        # eccentricity of lane t = deepest level whose gained-word set bit t
        # (levels are 1-based; lanes never gaining stay at 0)
        hit = (np.asarray(gains, dtype=np.uint64)[:, None] & trial_bits) != 0
        depth = len(gains)
        eccs[:] = np.where(hit.any(axis=0), depth - np.argmax(hit[::-1], axis=0), 0)
    np.bitwise_xor(alive, avail, out=alive)
    sizes[:] = lane_popcounts(alive, batch)
    return BatchStats(sizes, eccs, root_dead, levels=len(gains))
