"""The undirected De Bruijn graph ``UB(d, n)``.

``UB(d, n)`` is obtained from the digraph ``B(d, n)`` by deleting loops,
forgetting edge orientation and merging any resulting parallel edges
(Section 1.2).  The paper quotes the degree census of [PR82]:

* ``d`` nodes of degree ``2d - 2`` (the constant words ``a^n``),
* ``d(d-1)`` nodes of degree ``2d - 1`` (the words ``\\widehat{ab}`` whose
  successor set and predecessor set overlap in one node),
* ``d^n - d^2`` nodes of degree ``2d``.

The census is exposed here and verified in the test-suite; it is also the
structural check behind Figure 1.2 in the benchmark harness.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import networkx as nx

from ..exceptions import InvalidParameterError
from ..words.alphabet import Word, validate_word
from .debruijn import DeBruijnGraph

__all__ = ["UndirectedDeBruijnGraph", "degree_census"]


def degree_census(d: int, n: int) -> dict[int, int]:
    """Return the theoretical degree census ``{degree: node count}`` of ``UB(d, n)``.

    Follows [PR82] as quoted in Section 1.2 of the paper.  For very small
    parameters some of the three classes coincide or are empty (e.g.
    ``UB(2, 1)``), so counts for equal degrees are merged and zero counts
    dropped.
    """
    if n == 1:
        # UB(d,1) is the complete graph K_d: every node has degree d-1.
        return {d - 1: d}
    census: dict[int, int] = {}
    for degree, count in ((2 * d - 2, d), (2 * d - 1, d * (d - 1)), (2 * d, d**n - d * d)):
        if count:
            census[degree] = census.get(degree, 0) + count
    return census


class UndirectedDeBruijnGraph:
    """The undirected De Bruijn graph ``UB(d, n)``.

    The graph is materialised as a :class:`networkx.Graph` on construction
    (unlike :class:`~repro.graphs.debruijn.DeBruijnGraph` it has no simple
    arithmetic edge rule once loops are dropped and parallel edges merged),
    which is fine for the sizes the paper studies.
    """

    def __init__(self, d: int, n: int) -> None:
        self.directed = DeBruijnGraph(d, n)
        self.d = self.directed.d
        self.n = self.directed.n
        g = nx.Graph()
        g.add_nodes_from(self.directed.nodes())
        for src, dst in self.directed.edges():
            if src != dst:  # delete loops
                g.add_edge(src, dst)  # orientation dropped, parallels merged
        self._graph = g

    # -- census ---------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def degree(self, word: Sequence[int]) -> int:
        """Return the degree of a node in ``UB(d, n)``."""
        w = validate_word(word, self.d)
        if w not in self._graph:
            raise InvalidParameterError(f"{w} is not a node of UB({self.d},{self.n})")
        return self._graph.degree(w)

    def degree_census(self) -> dict[int, int]:
        """Return the measured degree census ``{degree: node count}``."""
        census: dict[int, int] = {}
        for _, deg in self._graph.degree():
            census[deg] = census.get(deg, 0) + 1
        return census

    # -- structure -----------------------------------------------------------
    def nodes(self) -> Iterator[Word]:
        return iter(self._graph.nodes())

    def edges(self) -> Iterator[tuple[Word, Word]]:
        return iter(self._graph.edges())

    def has_edge(self, a: Sequence[int], b: Sequence[int]) -> bool:
        return self._graph.has_edge(tuple(a), tuple(b))

    def neighbors(self, word: Sequence[int]) -> list[Word]:
        w = validate_word(word, self.d)
        return list(self._graph.neighbors(w))

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)

    def to_networkx(self) -> nx.Graph:
        """Return a copy of the underlying :class:`networkx.Graph`."""
        return self._graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UndirectedDeBruijnGraph(d={self.d}, n={self.n})"
