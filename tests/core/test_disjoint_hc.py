"""Tests for disjoint Hamiltonian cycles (Section 3.2) and the bound tables."""

import pytest

from repro.core import (
    PrimePowerHCFamily,
    conflict_function,
    cycles_conflict,
    disjoint_hamiltonian_cycles,
    disjoint_hamiltonian_cycles_prime_power,
    disjoint_hc_upper_bound,
    edge_fault_phi,
    edge_fault_tolerance,
    edges_of_sequence,
    is_hamiltonian_sequence,
    maximal_cycle_shifts,
    psi,
    psi_prime_power,
    sequences_edge_disjoint,
    shifted_hamiltonian_cycle,
    strategy_for_prime,
    table_3_1,
    table_3_2,
    verify_pairwise_disjoint,
)
from repro.exceptions import InvalidParameterError, NotPrimePowerError
from repro.gf import GF, LinearRecurrence


class TestStrategySelection:
    def test_p_equals_two_uses_strategy_one(self):
        assert strategy_for_prime(2)["strategy"] == 1

    def test_p_13_uses_strategy_two(self):
        # Example 3.3: 13 satisfies condition (b) with (p-1)/2 = 6 even
        info = strategy_for_prime(13)
        assert info["strategy"] == 2
        assert info["A"] % 2 == 1 and info["B"] % 2 == 1
        lam = info["lambda"]
        assert (pow(lam, info["A"], 13) + pow(lam, info["B"], 13)) % 13 == 2

    def test_p_5_uses_strategy_three(self):
        # Example 3.4: only condition (a) holds for 5
        info = strategy_for_prime(5)
        assert info["strategy"] == 3
        assert pow(info["lambda"], info["A"], 5) == 2
        assert info["A"] % 2 == 1

    def test_every_small_odd_prime_has_a_strategy(self):
        for p in [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]:
            info = strategy_for_prime(p)
            assert info["strategy"] in (2, 3)


class TestBoundTables:
    def test_psi_prime_power_values(self):
        assert psi_prime_power(2, 1) == 1
        assert psi_prime_power(2, 3) == 7
        assert psi_prime_power(2, 5) == 31
        assert psi_prime_power(3, 1) == 1
        assert psi_prime_power(3, 2) == 4
        assert psi_prime_power(5, 1) == 2
        assert psi_prime_power(7, 1) == 3
        assert psi_prime_power(13, 1) == 7
        assert psi_prime_power(17, 1) == 9

    def test_table_3_1_matches_paper(self):
        # Table 3.1 for 2 <= d <= 38 (values read from the thesis; the OCR of
        # the second row is partially garbled but the first row is clean and
        # the rest follow from multiplicativity).
        expected = {
            2: 1, 3: 1, 4: 3, 5: 2, 6: 1, 7: 3, 8: 7, 9: 4, 10: 2, 11: 5,
            12: 3, 13: 7, 14: 3, 15: 2, 16: 15, 17: 9, 18: 4, 19: 9, 20: 6,
            21: 3, 22: 5, 23: 11, 24: 7, 25: 12, 26: 7, 27: 13, 28: 9,
            30: 2, 31: 15, 32: 31, 33: 5, 34: 9, 35: 6, 36: 12, 38: 9,
        }
        table = table_3_1(38)
        for d, value in expected.items():
            assert table[d] == value, f"psi({d})"

    def test_psi_multiplicative(self):
        assert psi(6) == psi(2) * psi(3)
        assert psi(12) == psi(4) * psi(3)
        assert psi(36) == psi(4) * psi(9)
        assert psi(30) == psi(2) * psi(3) * psi(5)

    def test_psi_below_upper_bound(self):
        for d in range(2, 40):
            assert psi(d) <= disjoint_hc_upper_bound(d)

    def test_psi_optimal_for_powers_of_two(self):
        for d in [2, 4, 8, 16, 32]:
            assert psi(d) == d - 1

    def test_phi_values(self):
        assert edge_fault_phi(2) == 0
        assert edge_fault_phi(5) == 3
        assert edge_fault_phi(6) == 1
        assert edge_fault_phi(12) == 3
        assert edge_fault_phi(28) == 7
        assert edge_fault_phi(36) == 4 + 9 - 4

    def test_table_3_2_matches_paper(self):
        # MAX{psi(d)-1, phi(d)}; the paper notes the only d where psi(d)-1
        # beats phi(d) is d = 28.
        table = table_3_2(35)
        expected = {
            2: 0, 3: 1, 4: 2, 5: 3, 6: 1, 7: 5, 8: 6, 9: 7, 10: 3, 11: 9,
            12: 3, 13: 11, 14: 5, 15: 4, 16: 14, 17: 15, 18: 7, 19: 17,
            20: 5, 21: 6, 22: 9, 23: 21, 24: 7, 25: 23, 26: 11, 27: 25,
            28: 8, 29: 27, 30: 4, 31: 29, 32: 30, 33: 10, 34: 15, 35: 8,
        }
        for d, value in expected.items():
            assert table[d] == value, f"tolerance({d})"

    def test_28_is_the_sole_exception(self):
        for d in range(2, 36):
            if d == 28:
                assert psi(d) - 1 > edge_fault_phi(d)
            else:
                assert edge_fault_tolerance(d) == edge_fault_phi(d)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            psi(1)
        with pytest.raises(InvalidParameterError):
            edge_fault_phi(1)
        with pytest.raises(InvalidParameterError):
            psi_prime_power(4, 1)


class TestShiftedCycles:
    def test_maximal_cycle_shifts_partition_nonloop_edges(self):
        d, n = 5, 2
        _, shifts = maximal_cycle_shifts(d, n)
        all_edges = set()
        for s_cycle in shifts:
            edges = set(edges_of_sequence(s_cycle, n))
            assert not (all_edges & edges)
            all_edges |= edges
        assert len(all_edges) == d * (d**n - 1)
        # no loop edge appears
        for a in range(d):
            assert (a,) * (n + 1) not in all_edges

    def test_shifted_hamiltonian_cycle_paper_example_3_4(self):
        # Example 3.4: d=5, n=2, recurrence s_{i+2} = s_{i+1} + 3 s_i,
        # lambda = 3 with 2 = 3^3, i.e. f(x) = (3^3)x = 2x; H_1 and H_4 as
        # printed in the thesis.
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        h1 = shifted_hamiltonian_cycle(5, 2, 1, f.mul(2, 1), recurrence=rec, initial=(0, 1))
        h4 = shifted_hamiltonian_cycle(5, 2, 4, f.mul(2, 4), recurrence=rec, initial=(0, 1))
        assert h1 == [1, 2, 2, 0, 3, 0, 1, 1, 3, 3, 4, 0, 4, 1, 0, 0, 2, 4, 2, 1, 4, 4, 3, 2, 3]
        assert h4 == [4, 0, 0, 3, 1, 3, 4, 1, 1, 2, 3, 2, 4, 3, 3, 0, 2, 0, 4, 4, 2, 2, 1, 0, 1]
        assert is_hamiltonian_sequence(h1, 5, 2)
        assert is_hamiltonian_sequence(h4, 5, 2)
        assert sequences_edge_disjoint(h1, h4, 2)

    def test_shifted_hc_requires_f_neq_s(self):
        with pytest.raises(InvalidParameterError):
            shifted_hamiltonian_cycle(5, 2, 1, 1)

    def test_shifted_hc_requires_prime_power(self):
        with pytest.raises(NotPrimePowerError):
            shifted_hamiltonian_cycle(6, 2, 1, 0)

    def test_every_shift_produces_hamiltonian_cycle(self):
        d, n = 7, 2
        fmap = conflict_function(d)
        for s, fs in fmap.items():
            seq = shifted_hamiltonian_cycle(d, n, s, fs)
            assert is_hamiltonian_sequence(seq, d, n)


class TestConflictStructure:
    def test_conflict_function_never_fixes_a_point(self):
        for d in [2, 3, 4, 5, 7, 8, 9, 13]:
            fmap = conflict_function(d)
            for x, fx in fmap.items():
                assert fx != x

    def test_lemma_3_4_predicts_actual_conflicts(self):
        # construct every H_s and check that edge-sharing occurs only where
        # Lemma 3.4 allows it
        d, n = 5, 2
        fmap = conflict_function(d)
        cycles = {s: shifted_hamiltonian_cycle(d, n, s, fs) for s, fs in fmap.items()}
        for x in cycles:
            for y in cycles:
                if x >= y:
                    continue
                share = not sequences_edge_disjoint(cycles[x], cycles[y], n)
                if share:
                    assert cycles_conflict(x, y, d, fmap)

    def test_figure_3_2_conflict_relation_for_13(self):
        # H_x conflicts with H_y for y in {7x, 7^9 x, 7^-1 x, 7^-9 x} (mod 13)
        fmap = conflict_function(13)
        info = strategy_for_prime(13)
        lam, A, B = info["lambda"], info["A"], info["B"]
        x = 2
        expected = {
            (x * pow(lam, A, 13)) % 13,
            (x * pow(lam, B, 13)) % 13,
            (x * pow(lam, (13 - 1) - A, 13)) % 13,
            (x * pow(lam, (13 - 1) - B, 13)) % 13,
        }
        for y in range(1, 13):
            if y == x:
                continue
            assert cycles_conflict(x, y, 13, fmap) == (y in expected)

    def test_self_conflict(self):
        assert cycles_conflict(3, 3, 5)


class TestDisjointFamilies:
    @pytest.mark.parametrize("d,n", [(2, 4), (3, 3), (4, 2), (4, 3), (5, 2), (7, 2), (8, 2), (9, 2), (13, 2)])
    def test_prime_power_family_meets_psi(self, d, n):
        family = disjoint_hamiltonian_cycles_prime_power(d, n)
        assert isinstance(family, PrimePowerHCFamily)
        cycles = family.as_list()
        assert len(cycles) >= psi(d)
        assert verify_pairwise_disjoint(cycles, d, n)

    @pytest.mark.parametrize("d,n", [(6, 2), (10, 2), (12, 2), (6, 3), (15, 2)])
    def test_composite_family_meets_psi(self, d, n):
        cycles = disjoint_hamiltonian_cycles(d, n)
        assert len(cycles) >= psi(d)
        assert verify_pairwise_disjoint(cycles, d, n)

    def test_powers_of_two_achieve_optimum(self):
        for d, n in [(4, 2), (8, 2)]:
            cycles = disjoint_hamiltonian_cycles(d, n)
            assert len(cycles) == d - 1  # optimal

    def test_strategy_two_adds_h0(self):
        family = disjoint_hamiltonian_cycles_prime_power(13, 2)
        assert family.strategy == 2
        assert 0 in family.selected_shifts
        assert len(family.selected_shifts) == (13 + 1) // 2

    def test_strategy_three_family_size(self):
        family = disjoint_hamiltonian_cycles_prime_power(5, 2)
        assert family.strategy == 3
        assert 0 not in family.selected_shifts
        assert len(family.selected_shifts) == 2

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            disjoint_hamiltonian_cycles(1, 2)
        with pytest.raises(InvalidParameterError):
            disjoint_hamiltonian_cycles(4, 1)

    def test_verify_pairwise_disjoint_detects_violations(self):
        d, n = 4, 2
        cycles = disjoint_hamiltonian_cycles(d, n)
        assert not verify_pairwise_disjoint([cycles[0], cycles[0]], d, n)
        assert not verify_pairwise_disjoint([cycles[0][:-1]], d, n)
