"""Tests for repro.core.sequences (Section 3.1 representation + Rees composition)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    de_bruijn_sequence,
    decompose_rees_edge,
    edges_of_sequence,
    is_cycle_sequence,
    is_hamiltonian_sequence,
    nodes_of_sequence,
    rees_composition,
    sequence_of_cycle,
    sequences_edge_disjoint,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import DeBruijnGraph


class TestWindows:
    def test_paper_5_cycle_example(self):
        # [0,1,2,1,2] denotes the 5-cycle (012, 121, 212, 120, 201) in B(3,3)
        nodes = nodes_of_sequence([0, 1, 2, 1, 2], 3)
        assert nodes == [(0, 1, 2), (1, 2, 1), (2, 1, 2), (1, 2, 0), (2, 0, 1)]
        assert is_cycle_sequence([0, 1, 2, 1, 2], 3, 3)

    def test_edges_are_nplus1_windows(self):
        edges = edges_of_sequence([0, 1, 2, 1, 2], 3)
        assert edges[0] == (0, 1, 2, 1)
        assert len(edges) == 5

    def test_empty_sequence_rejected(self):
        with pytest.raises(InvalidParameterError):
            nodes_of_sequence([], 3)

    def test_sequence_of_cycle_roundtrip(self):
        seq = [0, 1, 2, 1, 2]
        assert sequence_of_cycle(nodes_of_sequence(seq, 3)) == seq

    def test_sequence_of_cycle_rejects_non_cycle(self):
        with pytest.raises(InvalidParameterError):
            sequence_of_cycle([(0, 1, 2), (2, 1, 0)])

    def test_sequence_of_loop_node(self):
        assert sequence_of_cycle([(1, 1, 1)]) == [1]

    def test_is_cycle_rejects_repeated_window(self):
        assert not is_cycle_sequence([0, 1, 0, 1], 2, 2)  # windows 01,10,01,10 repeat

    def test_is_cycle_rejects_bad_digit(self):
        assert not is_cycle_sequence([0, 1, 2], 2, 2)

    def test_is_hamiltonian_requires_full_length(self):
        assert is_hamiltonian_sequence([0, 0, 0, 1, 0, 1, 1, 1], 2, 3)
        assert not is_hamiltonian_sequence([0, 0, 1, 1], 2, 3)

    def test_edge_disjointness(self):
        a = [0, 0, 1, 1]  # edges of a 4-cycle in B(2,2)
        b = [0, 1]        # 2-cycle (01, 10)
        assert sequences_edge_disjoint(a, b, 2)
        assert not sequences_edge_disjoint(a, a, 2)


class TestReesComposition:
    def test_paper_example_3_5(self):
        # A = [0,0,1,1] in B(2,2), B = [0,0,2,2,1,2,0,1,1] in B(3,2)
        a = [0, 0, 1, 1]
        b = [0, 0, 2, 2, 1, 2, 0, 1, 1]
        expected = [0, 0, 5, 5, 1, 2, 3, 4, 1, 0, 3, 5, 2, 1, 5, 3, 1, 1,
                    3, 3, 2, 2, 4, 5, 0, 1, 4, 3, 0, 2, 5, 4, 2, 0, 4, 4]
        assert rees_composition(a, b, 2, 3, 2) == expected
        assert is_hamiltonian_sequence(expected, 6, 2)

    def test_requires_coprime(self):
        a = de_bruijn_sequence(2, 2)
        b = de_bruijn_sequence(4, 2)
        with pytest.raises(InvalidParameterError):
            rees_composition(a, b, 2, 4, 2)

    def test_requires_hamiltonian_inputs(self):
        with pytest.raises(InvalidParameterError):
            rees_composition([0, 1], de_bruijn_sequence(3, 2), 2, 3, 2)

    @pytest.mark.parametrize("s,t,n", [(2, 3, 2), (2, 3, 3), (3, 4, 2), (2, 5, 2), (4, 3, 2)])
    def test_composition_is_hamiltonian(self, s, t, n):
        a = de_bruijn_sequence(s, n)
        b = de_bruijn_sequence(t, n)
        composed = rees_composition(a, b, s, t, n)
        assert is_hamiltonian_sequence(composed, s * t, n)

    def test_decompose_rees_edge(self):
        a_edge, b_edge = decompose_rees_edge((5, 3, 1), 2, 3)
        assert a_edge == (1, 1, 0)
        assert b_edge == (2, 0, 1)

    def test_decompose_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            decompose_rees_edge((6, 0), 2, 3)

    def test_composed_edges_project_correctly(self):
        s, t, n = 2, 3, 2
        a = de_bruijn_sequence(s, n)
        b = de_bruijn_sequence(t, n)
        composed = rees_composition(a, b, s, t, n)
        a_edges = set(edges_of_sequence(a, n))
        b_edges = set(edges_of_sequence(b, n))
        for edge in edges_of_sequence(composed, n):
            ea, eb = decompose_rees_edge(edge, s, t)
            assert ea in a_edges
            assert eb in b_edges


class TestDeBruijnSequence:
    @pytest.mark.parametrize("d,n", [(2, 1), (2, 3), (2, 6), (3, 3), (4, 2), (5, 2), (6, 2), (3, 4)])
    def test_fkm_sequence_is_hamiltonian(self, d, n):
        seq = de_bruijn_sequence(d, n)
        assert is_hamiltonian_sequence(seq, d, n)

    def test_lexicographically_least_binary(self):
        # the classical "grand-daddy" De Bruijn sequence for d=2, n=4
        assert de_bruijn_sequence(2, 4) == [0, 0, 0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1, 1]

    def test_nodes_form_debruijn_hamiltonian_cycle(self):
        d, n = 3, 3
        seq = de_bruijn_sequence(d, n)
        cycle = nodes_of_sequence(seq, n)
        assert DeBruijnGraph(d, n).is_hamiltonian_cycle(cycle)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            de_bruijn_sequence(1, 3)
        with pytest.raises(InvalidParameterError):
            de_bruijn_sequence(2, 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 4), st.integers(2, 4))
def test_every_sequence_cycle_is_graph_cycle(d, n):
    seq = de_bruijn_sequence(d, n)
    cycle = nodes_of_sequence(seq, n)
    g = DeBruijnGraph(d, n)
    assert g.is_cycle(cycle)
    assert sequence_of_cycle(cycle) == seq
