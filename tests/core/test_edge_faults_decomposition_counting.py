"""Tests for edge-fault embedding (3.3), butterfly transfer (3.4), MB decomposition
(3.2.3) and necklace counting (Chapter 4)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    brute_force_necklace_count,
    butterfly_disjoint_hamiltonian_cycles,
    butterfly_edge_fault_free_hc,
    count_necklaces_by_type,
    count_necklaces_by_type_total,
    count_necklaces_by_weight,
    count_necklaces_by_weight_total,
    count_necklaces_of_length,
    count_necklaces_total,
    dary_tuples_of_weight,
    edge_fault_phi,
    edge_fault_tolerance,
    edge_fault_free_hc_prime_power,
    edges_of_sequence,
    find_edge_fault_free_hc,
    is_hamiltonian_sequence,
    modified_debruijn_decomposition,
    nodes_of_sequence,
    normalize_edge_faults,
    project_butterfly_edge,
    psi,
)
from repro.exceptions import FaultBudgetExceededError, InvalidParameterError
from repro.graphs import ButterflyGraph, DeBruijnGraph
from repro.words import iter_words, weight


class TestNormalizeEdgeFaults:
    def test_accepts_labels_and_pairs(self):
        labels = normalize_edge_faults(3, 2, [(0, 1, 2), ((1, 2), (2, 0))])
        assert labels == {(0, 1, 2), (1, 2, 0)}

    def test_rejects_non_edges(self):
        with pytest.raises(InvalidParameterError):
            normalize_edge_faults(3, 2, [((0, 1), (0, 1))])
        with pytest.raises(InvalidParameterError):
            normalize_edge_faults(3, 2, [(0, 1)])
        with pytest.raises(InvalidParameterError):
            normalize_edge_faults(3, 2, [(0, 1, 3)])


class TestEdgeFaultHC:
    @pytest.mark.parametrize("d,n", [(3, 2), (4, 2), (5, 2), (4, 3), (7, 2), (8, 2), (9, 2), (5, 3)])
    def test_prime_power_tolerates_d_minus_2_faults(self, d, n):
        # adversarial-ish fault set: d-2 edges all incident to the node 0^n
        faults = [(a,) + (0,) * n for a in range(1, d - 1)]
        seq = edge_fault_free_hc_prime_power(d, n, faults, strict=True)
        assert is_hamiltonian_sequence(seq, d, n)
        assert not (set(edges_of_sequence(seq, n)) & normalize_edge_faults(d, n, faults))

    def test_prime_power_strict_rejects_excess(self):
        faults = [(a,) + (0, 0) for a in range(1, 4)]
        with pytest.raises(FaultBudgetExceededError):
            edge_fault_free_hc_prime_power(4, 2, faults, strict=True)

    @pytest.mark.parametrize("d,n", [(6, 2), (10, 2), (12, 2), (15, 2), (6, 3)])
    def test_composite_tolerates_phi_faults(self, d, n):
        rng = np.random.default_rng(d * 100 + n)
        budget = edge_fault_phi(d)
        g = DeBruijnGraph(d, n)
        faults = set()
        while len(faults) < budget:
            label = tuple(int(x) for x in rng.integers(0, d, size=n + 1))
            if len(set(label)) > 1:  # avoid loop edges, which no HC uses anyway
                faults.add(label)
        seq = find_edge_fault_free_hc(d, n, faults, method="shifted", strict=True)
        assert is_hamiltonian_sequence(seq, d, n)
        assert not (set(edges_of_sequence(seq, n)) & faults)
        assert g.is_hamiltonian_cycle(nodes_of_sequence(seq, n))

    def test_prop_3_4_tolerance_via_auto(self):
        # d = 28 is the one value where the disjoint-HC route beats phi(d);
        # use a smaller stand-in (d=8, psi-1=6 = phi(8)=6) and check 'auto'
        # handles tolerance-many faults for several d.
        for d, n in [(4, 2), (8, 2), (9, 2)]:
            tolerance = edge_fault_tolerance(d)
            rng = np.random.default_rng(d)
            faults = set()
            while len(faults) < tolerance:
                label = tuple(int(x) for x in rng.integers(0, d, size=n + 1))
                if len(set(label)) > 1:
                    faults.add(label)
            seq = find_edge_fault_free_hc(d, n, faults, method="auto", strict=True)
            assert is_hamiltonian_sequence(seq, d, n)
            assert not (set(edges_of_sequence(seq, n)) & faults)

    def test_disjoint_method(self):
        d, n = 4, 2
        faults = [(0, 1, 2)]
        seq = find_edge_fault_free_hc(d, n, faults, method="disjoint")
        assert is_hamiltonian_sequence(seq, d, n)
        assert (0, 1, 2) not in edges_of_sequence(seq, n)

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidParameterError):
            find_edge_fault_free_hc(4, 2, [], method="magic")

    def test_strict_auto_rejects_more_than_tolerance(self):
        d, n = 4, 2
        faults = {(0, 1, 2), (1, 2, 3), (2, 3, 0), (3, 0, 1)}
        assert len(faults) > edge_fault_tolerance(d)
        with pytest.raises(FaultBudgetExceededError):
            find_edge_fault_free_hc(d, n, faults, strict=True)

    def test_single_fault_any_d(self):
        # every non-binary De Bruijn graph tolerates one edge fault
        for d in [3, 4, 5, 6, 7, 9, 10]:
            seq = find_edge_fault_free_hc(d, 2, [(0, 1, 1)], strict=True)
            assert is_hamiltonian_sequence(seq, d, 2)
            assert (0, 1, 1) not in edges_of_sequence(seq, 2)


class TestButterflyTransfer:
    def test_projection_matches_lemma_3_8(self):
        f = ButterflyGraph(2, 3)
        b = DeBruijnGraph(2, 3)
        for src, dst in itertools.islice(f.edges(), 100):
            label = project_butterfly_edge(src, dst, 2)
            assert b.has_edge(label[:-1], label[1:])

    def test_projection_rejects_non_edges(self):
        with pytest.raises(InvalidParameterError):
            project_butterfly_edge((0, (0, 1)), (0, (1, 1)), 2)

    @pytest.mark.parametrize("d,n", [(3, 2), (2, 3), (4, 3), (5, 2)])
    def test_fault_free_hc_avoids_butterfly_faults(self, d, n):
        butterfly = ButterflyGraph(d, n)
        faulty = list(itertools.islice(butterfly.edges(), 1))
        cycle = butterfly_edge_fault_free_hc(d, n, faulty)
        assert butterfly.is_hamiltonian_cycle(cycle)
        cycle_edges = set(zip(cycle, cycle[1:] + cycle[:1]))
        assert not (cycle_edges & set(faulty))

    def test_requires_coprime_parameters(self):
        with pytest.raises(InvalidParameterError):
            butterfly_edge_fault_free_hc(2, 4, [])
        with pytest.raises(InvalidParameterError):
            butterfly_disjoint_hamiltonian_cycles(3, 3)

    @pytest.mark.parametrize("d,n", [(4, 3), (3, 2), (5, 2)])
    def test_disjoint_butterfly_hcs(self, d, n):
        butterfly = ButterflyGraph(d, n)
        cycles = butterfly_disjoint_hamiltonian_cycles(d, n)
        assert len(cycles) >= psi(d)
        edge_sets = []
        for cycle in cycles:
            assert butterfly.is_hamiltonian_cycle(cycle)
            edge_sets.append(set(zip(cycle, cycle[1:] + cycle[:1])))
        for i in range(len(edge_sets)):
            for j in range(i + 1, len(edge_sets)):
                assert not (edge_sets[i] & edge_sets[j])


class TestHamiltonianDecomposition:
    @pytest.mark.parametrize("d,n", [(2, 3), (2, 4), (3, 2), (3, 3), (5, 2), (7, 2), (9, 2)])
    def test_decomposition_properties(self, d, n):
        dec = modified_debruijn_decomposition(d, n)
        assert len(dec.cycles) == d
        assert dec.is_decomposition()
        assert dec.is_regular()
        assert dec.undirected_contains_ub()

    def test_edge_disjoint_for_n_at_least_3(self):
        for d, n in [(2, 3), (3, 3), (5, 3)]:
            assert modified_debruijn_decomposition(d, n).cycles_edge_disjoint()

    def test_example_3_6_binary_cycles(self):
        # Example 3.6: C from c_{i+3} = c_{i+2} + c_i with (0,0,1) gives
        # [0,0,1,1,1,0,1]; H_0 inserts 000 between 100 and 001; H_1 removes
        # 000 from 1+C and routes 010 -> 000 -> 111 -> 101.
        from repro.gf import GF, LinearRecurrence

        rec = LinearRecurrence(GF(2), (1, 0, 1))
        dec = modified_debruijn_decomposition(2, 3, recurrence=rec, initial=(0, 0, 1))
        h0, h1 = dec.cycles
        assert set(h0) == set(iter_words(2, 3))
        assert set(h1) == set(iter_words(2, 3))
        # H_0 is a genuine De Bruijn Hamiltonian cycle
        assert DeBruijnGraph(2, 3).is_hamiltonian_cycle(h0)
        # H_1 contains the detour 010 -> 000 -> 111 -> 101
        i = h1.index((0, 1, 0))
        k = len(h1)
        assert h1[(i + 1) % k] == (0, 0, 0)
        assert h1[(i + 2) % k] == (1, 1, 1)
        assert h1[(i + 3) % k] == (1, 0, 1)
        assert dec.replaced_p_edges[1] == ((0, 1, 0), (1, 0, 1))

    def test_binary_n2_rejected(self):
        with pytest.raises(InvalidParameterError):
            modified_debruijn_decomposition(2, 2)

    def test_even_prime_power_above_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            modified_debruijn_decomposition(4, 3)

    def test_composite_rejected(self):
        from repro.exceptions import NotPrimePowerError

        with pytest.raises(NotPrimePowerError):
            modified_debruijn_decomposition(6, 3)


class TestCounting:
    def test_paper_example_length_6_in_b2_12(self):
        assert count_necklaces_of_length(2, 12, 6) == 9

    def test_paper_example_total_b2_12(self):
        assert count_necklaces_total(2, 12) == 352

    def test_paper_example_weight_4_length_6(self):
        assert count_necklaces_by_weight(2, 12, 4, 6) == 2

    def test_paper_example_weight_4_total(self):
        assert count_necklaces_by_weight_total(2, 12, 4) == 43

    def test_paper_example_ternary_weight_4_length_4(self):
        assert count_necklaces_by_weight(3, 4, 4, 4) == 4

    def test_length_not_dividing_n_gives_zero(self):
        assert count_necklaces_of_length(2, 12, 5) == 0
        assert count_necklaces_by_weight(2, 12, 4, 5) == 0

    def test_totals_match_enumeration(self):
        for d, n in [(2, 6), (2, 8), (3, 4), (3, 5), (4, 4), (5, 3)]:
            assert count_necklaces_total(d, n) == brute_force_necklace_count(d, n)

    def test_by_length_matches_enumeration(self):
        for d, n in [(2, 8), (3, 6), (4, 4)]:
            from repro.gf import divisors

            for t in divisors(n):
                assert count_necklaces_of_length(d, n, t) == brute_force_necklace_count(
                    d, n, length=t
                )

    def test_by_weight_matches_enumeration(self):
        for d, n in [(2, 6), (2, 8), (3, 4), (3, 6), (4, 3)]:
            for k in range(n * (d - 1) + 1):
                assert count_necklaces_by_weight_total(d, n, k) == brute_force_necklace_count(
                    d, n, weight_k=k
                ), (d, n, k)

    def test_by_type_matches_enumeration(self):
        d, n = 3, 6
        for k0 in range(n + 1):
            for k1 in range(n - k0 + 1):
                k2 = n - k0 - k1
                type_k = (k0, k1, k2)
                assert count_necklaces_by_type_total(d, n, type_k) == brute_force_necklace_count(
                    d, n, type_k=type_k
                ), type_k

    def test_by_type_example_from_paper(self):
        # 312211 is of type [0,3,2,1] (paper's example); count necklaces of
        # that type in B(4,6) and cross-check by enumeration
        type_k = (0, 3, 2, 1)
        total = count_necklaces_by_type_total(4, 6, type_k)
        assert total == brute_force_necklace_count(4, 6, type_k=type_k)

    def test_binary_type_equals_weight(self):
        # when d = 2, type (n-k, k) corresponds exactly to weight k
        d, n = 2, 8
        for k in range(n + 1):
            assert count_necklaces_by_type_total(d, n, (n - k, k)) == \
                count_necklaces_by_weight_total(d, n, k)

    def test_dary_tuples_of_weight_matches_enumeration(self):
        for d, n in [(2, 6), (3, 4), (4, 3), (5, 3)]:
            by_weight = {}
            for w in iter_words(d, n):
                by_weight[weight(w)] = by_weight.get(weight(w), 0) + 1
            for k in range(n * (d - 1) + 1):
                assert dary_tuples_of_weight(d, n, k) == by_weight.get(k, 0)

    def test_dary_tuples_out_of_range_weight(self):
        assert dary_tuples_of_weight(3, 4, 100) == 0
        assert dary_tuples_of_weight(3, 4, -1) == 0

    def test_weight_counts_sum_to_total(self):
        d, n = 3, 6
        total = sum(count_necklaces_by_weight_total(d, n, k) for k in range(n * (d - 1) + 1))
        assert total == count_necklaces_total(d, n)

    def test_length_counts_sum_to_total(self):
        from repro.gf import divisors

        for d, n in [(2, 12), (3, 6), (4, 6)]:
            total = sum(count_necklaces_of_length(d, n, t) for t in divisors(n))
            assert total == count_necklaces_total(d, n)

    def test_type_vector_validation(self):
        with pytest.raises(InvalidParameterError):
            count_necklaces_by_type(3, 4, (1, 1), 4)
        with pytest.raises(InvalidParameterError):
            count_necklaces_by_type_total(3, 4, (1, 1, 1))

    def test_necklace_count_equals_histogram(self):
        from repro.words import necklace_lengths_histogram

        for d, n in [(2, 10), (3, 5)]:
            hist = necklace_lengths_histogram(d, n)
            for t, count in hist.items():
                assert count_necklaces_of_length(d, n, t) == count


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 4), st.integers(2, 6), st.data())
def test_counting_weight_property(d, n, data):
    k = data.draw(st.integers(0, n * (d - 1)))
    assert count_necklaces_by_weight_total(d, n, k) == brute_force_necklace_count(
        d, n, weight_k=k
    )
