"""Tests for the FFC algorithm (Chapter 2) and its supporting structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FaultFreeCycleResult,
    RingEmbedding,
    build_bstar,
    find_fault_free_cycle,
    guaranteed_cycle_length,
    necklaces_visited_in_order,
    node_fault_cycle_bound,
    worst_case_fault_placement,
)
from repro.exceptions import (
    DisconnectedGraphError,
    EmbeddingError,
    FaultBudgetExceededError,
    InvalidParameterError,
)
from repro.graphs import DeBruijnGraph
from repro.words import necklace_of


class TestGuarantees:
    def test_no_fault_guarantee(self):
        assert guaranteed_cycle_length(3, 4, 0) == 81

    def test_prop_2_2_guarantee(self):
        assert guaranteed_cycle_length(4, 6, 2) == 4096 - 12
        assert guaranteed_cycle_length(3, 3, 1) == 24

    def test_prop_2_3_binary_guarantee(self):
        assert guaranteed_cycle_length(2, 10, 1) == 1024 - 11

    def test_out_of_regime_raises(self):
        with pytest.raises(FaultBudgetExceededError):
            guaranteed_cycle_length(3, 3, 2)
        with pytest.raises(FaultBudgetExceededError):
            guaranteed_cycle_length(2, 5, 2)
        with pytest.raises(InvalidParameterError):
            guaranteed_cycle_length(3, 3, -1)


class TestBStar:
    def test_example_2_1_bstar(self):
        bstar = build_bstar(3, 3, [(0, 2, 0), (1, 1, 2)])
        assert bstar.size == 21
        assert len(bstar.necklaces()) == 9
        assert (0, 2, 0) not in bstar
        assert (0, 0, 2) not in bstar  # same necklace as 020
        assert (0, 0, 0) in bstar

    def test_root_is_canonical_representative(self):
        bstar = build_bstar(3, 3, [(0, 2, 0)])
        root_neck = necklace_of(bstar.root, 3)
        assert bstar.root == root_neck.representative

    def test_root_hint_respected(self):
        bstar = build_bstar(2, 5, [(1, 1, 1, 1, 1)], root_hint=(0, 0, 0, 0, 1))
        assert bstar.root == (0, 0, 0, 0, 1)

    def test_faulty_root_hint_falls_back(self):
        bstar = build_bstar(2, 5, [(0, 0, 0, 0, 1)], root_hint=(0, 0, 0, 0, 1))
        assert bstar.root != (0, 0, 0, 0, 1)
        assert bstar.size > 0

    def test_all_nodes_faulty_raises(self):
        with pytest.raises(DisconnectedGraphError):
            build_bstar(2, 2, [(0, 0), (0, 1), (1, 1)])

    def test_n_must_be_at_least_two(self):
        with pytest.raises(InvalidParameterError):
            build_bstar(3, 1, [])

    def test_bstar_is_union_of_whole_necklaces(self):
        bstar = build_bstar(2, 6, [(0, 1, 1, 0, 1, 1)])
        for node in bstar.nodes:
            assert necklace_of(node, 2).node_set <= bstar.nodes


class TestTreesOnExample21:
    """Walk the paper's Example 2.1 through every intermediate structure."""

    @pytest.fixture
    def result(self):
        return find_fault_free_cycle(3, 3, [(0, 2, 0), (1, 1, 2)], root_hint=(0, 0, 0))

    def test_nstar_vertices(self, result):
        reps = {nk.representative for nk in result.adjacency.necklaces}
        assert reps == {
            (0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1), (0, 1, 2),
            (1, 2, 2), (2, 2, 2), (0, 2, 1), (0, 2, 2),
        }

    def test_nstar_edges_match_figure_2_3(self, result):
        adj = result.adjacency
        nk = lambda w: necklace_of(w, 3)
        # a few labelled adjacencies read off Figure 2.3
        assert adj.has_edge(nk((0, 0, 0)), nk((0, 0, 1)), (0, 0))
        assert adj.has_edge(nk((0, 0, 1)), nk((0, 1, 1)), (0, 1))
        assert adj.has_edge(nk((0, 1, 1)), nk((1, 1, 1)), (1, 1))
        assert adj.has_edge(nk((0, 1, 2)), nk((1, 2, 2)), (1, 2))
        assert adj.has_edge(nk((1, 2, 2)), nk((2, 2, 2)), (2, 2))
        assert adj.has_edge(nk((0, 0, 1)), nk((0, 2, 1)), (1, 0))
        assert adj.has_edge(nk((0, 2, 1)), nk((0, 2, 2)), (0, 2))
        assert not adj.has_edge(nk((0, 0, 0)), nk((1, 1, 1)), (1, 1))

    def test_spanning_tree_is_valid(self, result):
        result.spanning_tree.validate()
        # 9 necklaces -> 8 tree edges
        assert len(result.spanning_tree.parent) == 8

    def test_stars_have_single_parent(self, result):
        for label, members in result.spanning_tree.stars().items():
            assert len(members) == len(set(members))
            assert len(label) == 2

    def test_modified_tree_is_valid(self, result):
        result.modified_tree.validate()
        # D has as many edges as T edges plus one closing edge per label group
        tree_edges = len(result.spanning_tree.parent)
        labels = len(result.spanning_tree.stars())
        assert len(result.modified_tree.edges()) == tree_edges + labels

    def test_cycle_matches_paper(self, result):
        expected = [
            (0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1), (1, 1, 0), (1, 0, 1),
            (0, 1, 2), (1, 2, 2), (2, 2, 2), (2, 2, 1), (2, 1, 2), (1, 2, 0),
            (2, 0, 1), (0, 1, 0), (1, 0, 2), (0, 2, 2), (2, 2, 0), (2, 0, 2),
            (0, 2, 1), (2, 1, 0), (1, 0, 0),
        ]
        assert list(result.cycle) == expected

    def test_necklace_walk_is_closed(self, result):
        walk = necklaces_visited_in_order(result)
        assert len(walk) == 21
        # the walk visits every surviving necklace at least once
        assert set(walk) == set(result.adjacency.necklaces)


class TestFFCCorrectness:
    @pytest.mark.parametrize(
        "d,n,faults",
        [
            (2, 4, []),
            (2, 5, [(0, 1, 0, 1, 1)]),
            (2, 6, [(1, 1, 1, 1, 1, 1)]),
            (3, 3, [(0, 2, 0), (1, 1, 2)]),
            (3, 4, [(0, 1, 2, 2)]),
            (4, 3, [(0, 1, 2), (3, 3, 1)]),
            (4, 4, [(0, 1, 2, 3), (3, 2, 1, 0)]),
            (5, 3, [(0, 1, 2), (3, 4, 0), (2, 2, 4)]),
        ],
    )
    def test_cycle_is_valid_and_spans_bstar(self, d, n, faults):
        result = find_fault_free_cycle(d, n, faults)
        assert isinstance(result, FaultFreeCycleResult)
        result.embedding.validate()
        assert result.length == result.bstar.size
        assert result.embedding.dilation == 1
        assert result.embedding.congestion == 1
        # no faulty node appears on the cycle
        assert not (set(result.cycle) & set(map(tuple, faults)))

    def test_no_faults_gives_debruijn_hamiltonian_cycle(self):
        for d, n in [(2, 5), (3, 3), (4, 2)]:
            result = find_fault_free_cycle(d, n)
            assert result.embedding.is_hamiltonian()
            assert DeBruijnGraph(d, n).is_hamiltonian_cycle(result.cycle)

    def test_prop_2_2_bound_met(self):
        # f <= d-2 faults: cycle length >= d^n - nf
        for d, n, f in [(3, 3, 1), (4, 3, 2), (4, 4, 2), (5, 3, 3), (6, 3, 4)]:
            faults = worst_case_fault_placement(d, n, f)
            result = find_fault_free_cycle(d, n, faults)
            assert result.length >= node_fault_cycle_bound(d, n, f)
            assert result.meets_guarantee()

    def test_prop_2_2_bound_is_tight_on_worst_case_placement(self):
        # the adversarial placement removes exactly nf nodes and the FFC cycle
        # achieves exactly d^n - nf, so the bound is met with equality
        for d, n, f in [(4, 3, 2), (5, 3, 3), (4, 4, 2)]:
            faults = worst_case_fault_placement(d, n, f)
            result = find_fault_free_cycle(d, n, faults)
            assert result.length == d**n - n * f

    def test_prop_2_3_binary_single_fault(self):
        for n in range(4, 9):
            for fault in [(0,) * n, (0, 1) * (n // 2) + (0,) * (n % 2), (1,) * n]:
                result = find_fault_free_cycle(2, n, [fault])
                assert result.length >= 2**n - (n + 1)

    def test_strict_mode_rejects_excess_faults(self):
        with pytest.raises(FaultBudgetExceededError):
            find_fault_free_cycle(3, 3, [(0, 0, 1), (0, 1, 1), (1, 1, 1)], strict=True)

    def test_non_strict_mode_handles_many_faults(self):
        rng = np.random.default_rng(7)
        faults = [tuple(rng.integers(0, 2, size=8)) for _ in range(20)]
        result = find_fault_free_cycle(2, 8, faults)
        result.embedding.validate()
        assert result.length == result.bstar.size

    def test_duplicate_faults_are_deduplicated(self):
        result = find_fault_free_cycle(3, 3, [(0, 2, 0), (0, 2, 0), (2, 0, 0)])
        assert result.length == 24

    def test_rotated_embedding_preserves_validity(self):
        result = find_fault_free_cycle(3, 3, [(0, 2, 0)])
        other = result.embedding.rotated_to(result.cycle[5])
        other.validate()
        assert set(other.cycle) == set(result.cycle)


class TestRingEmbeddingClass:
    def test_invalid_cycle_detected(self):
        emb = RingEmbedding(2, 3, ((0, 0, 1), (1, 1, 1)))
        assert not emb.is_valid()
        with pytest.raises(EmbeddingError):
            emb.validate()

    def test_fault_hit_detected(self):
        cycle = ((0, 0, 1), (0, 1, 0), (1, 0, 0))
        emb = RingEmbedding(2, 3, cycle, faulty_nodes=frozenset({(0, 1, 0)}))
        assert not emb.is_valid()

    def test_faulty_edge_hit_detected(self):
        cycle = ((0, 0, 1), (0, 1, 0), (1, 0, 0))
        emb = RingEmbedding(2, 3, cycle, faulty_edges=frozenset({((0, 0, 1), (0, 1, 0))}))
        assert not emb.is_valid()

    def test_avoids_helper(self):
        cycle = ((0, 0, 1), (0, 1, 0), (1, 0, 0))
        emb = RingEmbedding(2, 3, cycle)
        assert emb.avoids(nodes=[(1, 1, 1)])
        assert not emb.avoids(nodes=[(0, 1, 0)])
        assert not emb.avoids(edges=[((1, 0, 0), (0, 0, 1))])

    def test_as_sequence(self):
        cycle = ((0, 0, 1), (0, 1, 0), (1, 0, 0))
        assert RingEmbedding(2, 3, cycle).as_sequence() == [0, 0, 1]

    def test_rotate_to_unknown_node_rejected(self):
        emb = RingEmbedding(2, 3, ((0, 0, 1), (0, 1, 0), (1, 0, 0)))
        with pytest.raises(InvalidParameterError):
            emb.rotated_to((1, 1, 1))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(2, 4),
    st.integers(3, 5),
    st.data(),
)
def test_ffc_random_faults_property(d, n, data):
    """Property: for random fault sets the FFC output is always a valid simple
    cycle covering exactly the surviving component and avoiding every fault."""
    num_faults = data.draw(st.integers(0, 4))
    faults = [
        tuple(data.draw(st.integers(0, d - 1)) for _ in range(n)) for _ in range(num_faults)
    ]
    try:
        result = find_fault_free_cycle(d, n, faults)
    except DisconnectedGraphError:
        return
    result.embedding.validate()
    assert result.length == result.bstar.size
    assert not (set(result.cycle) & set(faults))
    # spanning tree and modified tree satisfy their structural invariants
    result.spanning_tree.validate()
    result.modified_tree.validate()
