"""End-to-end sweeps over every registered topology backend.

The acceptance contract of the topology registry (ISSUE 4):

* ``sweep`` runs end-to-end for ``debruijn``, ``kautz``, ``hypercube`` and
  ``shuffle_exchange``, with the bit-parallel kernel (``batch=64``) equal to
  the scalar path (``batch=1``) trial-for-trial;
* worker count never changes a row on any backend;
* checkpoints are keyed by topology name: resuming under a different
  backend fails loudly, pre-registry (PR 3 format) De Bruijn checkpoints
  still resume.

Small-graph measurements are additionally cross-checked against networkx
BFS on the explicit graph classes.
"""

import json

import networkx as nx
import numpy as np
import pytest

from repro.analysis.fault_simulation import FaultSweepRunner, simulate_fault_table
from repro.engine import ParallelSweepEngine
from repro.exceptions import CheckpointMismatchError
from repro.topology import get_topology

SWEPT = ("debruijn", "kautz", "hypercube", "shuffle_exchange", "undirected_debruijn")
FAULT_COUNTS = (0, 1, 3, 6)
TRIALS = 10
SEED = 4


@pytest.mark.parametrize("topology", SWEPT)
class TestKernelScalarEquality:
    def test_batched_rows_equal_scalar_rows(self, topology):
        scalar = ParallelSweepEngine(2, 7, batch=1, topology=topology).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        batched = ParallelSweepEngine(2, 7, batch=64, topology=topology).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert scalar == batched

    def test_worker_count_invariance(self, topology):
        serial = ParallelSweepEngine(2, 7, topology=topology).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        parallel = ParallelSweepEngine(2, 7, workers=2, topology=topology).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert serial == parallel

    def test_simulate_fault_table_topology_param(self, topology):
        lib = simulate_fault_table(
            2, 7, fault_counts=(2,), trials=6, seed=1, topology=topology
        )
        eng = ParallelSweepEngine(2, 7, topology=topology).run((2,), trials=6, seed=1)
        assert lib == eng

    def test_zero_fault_row_is_whole_graph(self, topology):
        topo = get_topology(topology, 2, 7)
        [row] = ParallelSweepEngine(2, 7, topology=topology).run((0,), trials=3, seed=0)
        assert row.max_size == row.min_size == topo.num_nodes
        assert row.reference_size == topo.num_nodes


class TestRunnerAgainstNetworkx:
    """The runner's (size, eccentricity) vs plain BFS on the explicit graphs."""

    def _reference_measure(self, g: nx.Graph | nx.DiGraph, root):
        lengths = nx.single_source_shortest_path_length(g, root)
        return len(lengths), max(lengths.values())

    def test_kautz_measure_matches_networkx(self):
        from repro.graphs.kautz import KautzGraph

        runner = FaultSweepRunner(2, 4, topology="kautz")
        topo = runner.topology
        rng = np.random.default_rng(0)
        for _ in range(25):
            codes = rng.choice(topo.num_nodes, size=2, replace=False)
            removed = topo.fault_unit_mask(codes)
            if removed[runner.root_code]:
                continue  # fallback semantics tested separately
            g = KautzGraph(2, 4).to_networkx()
            g.remove_nodes_from(
                [topo.decode(int(c)) for c in np.flatnonzero(removed)]
            )
            expected = self._reference_measure(g, runner.root)
            assert runner.measure_mask(removed) == expected

    def test_hypercube_measure_matches_networkx(self):
        from repro.graphs.hypercube import HypercubeGraph

        runner = FaultSweepRunner(2, 4, topology="hypercube")
        rng = np.random.default_rng(1)
        for _ in range(25):
            codes = rng.choice(16, size=3, replace=False)
            removed = runner.topology.fault_unit_mask(codes)
            if removed[runner.root_code]:
                continue
            g = HypercubeGraph(4).to_networkx()
            g.remove_nodes_from(np.flatnonzero(removed).tolist())
            expected = self._reference_measure(g, runner.root_code)
            assert runner.measure_mask(removed) == expected

    def test_shuffle_exchange_measure_matches_networkx(self):
        from repro.graphs.shuffle_exchange import ShuffleExchangeGraph

        runner = FaultSweepRunner(2, 4, topology="shuffle_exchange")
        topo = runner.topology
        rng = np.random.default_rng(2)
        for _ in range(25):
            codes = rng.choice(topo.num_nodes, size=3, replace=False)
            removed = topo.fault_unit_mask(codes)
            if removed[runner.root_code]:
                continue
            g = ShuffleExchangeGraph(2, 4).to_networkx()
            g.remove_nodes_from([topo.decode(int(c)) for c in np.flatnonzero(removed)])
            root_word = topo.decode(runner.root_code)
            if root_word not in g:
                continue
            expected = self._reference_measure(g, root_word)
            assert runner.measure_mask(removed) == expected

    def test_explicit_fault_words(self):
        # measure() accepts tuple words on every word-coded backend
        runner = FaultSweepRunner(2, 5, topology="kautz")
        size, ecc = runner.measure([(0, 1, 2, 0, 1)])
        assert 0 < size < runner.topology.num_nodes
        assert ecc > 0


class TestRootFallback:
    @pytest.mark.parametrize("topology", ("kautz", "hypercube", "shuffle_exchange"))
    def test_dead_root_peels_to_fallback(self, topology):
        runner = FaultSweepRunner(2, 6, topology=topology)
        topo = runner.topology
        removed = topo.fault_unit_mask([runner.root_code])
        size, ecc = runner.measure_mask(removed)
        assert size > 0  # fell back to a neighbouring root
        # batched path agrees bit-for-bit (the dead-root trial is peeled)
        assert runner.executor._fallback_stats(removed) == (size, ecc)

    def test_all_nodes_removed_yields_zero(self):
        runner = FaultSweepRunner(2, 3, topology="shuffle_exchange")
        removed = np.ones(runner.topology.num_nodes, dtype=bool)
        assert runner.measure_mask(removed) == (0, 0)


class TestTopologyCheckpoints:
    def test_checkpoint_header_carries_topology(self, tmp_path):
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path, topology="kautz").run(
            (1,), trials=3, seed=0
        )
        data = json.loads(path.read_text())
        assert data["topology"] == "kautz"

    def test_cross_topology_resume_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path, topology="kautz").run(
            (1,), trials=3, seed=0
        )
        with pytest.raises(CheckpointMismatchError) as excinfo:
            ParallelSweepEngine(2, 6, checkpoint_path=path, topology="debruijn").run(
                (1,), trials=3, seed=0
            )
        assert "topology" in str(excinfo.value)
        assert excinfo.value.stored["topology"] == "kautz"
        assert excinfo.value.requested["topology"] == "debruijn"

    def test_seed_mismatch_raises_typed_error(self, tmp_path):
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=0)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=1)
        assert "seed" in str(excinfo.value)

    def test_pr3_format_checkpoint_resumes(self, tmp_path):
        # a pre-registry checkpoint has no "topology" field; it must load as
        # a De Bruijn sweep and resume to the exact uninterrupted rows
        path = tmp_path / "sweep.json"
        full = ParallelSweepEngine(2, 6, checkpoint_path=path).run(
            (1, 3), trials=4, seed=7
        )
        data = json.loads(path.read_text())
        del data["topology"]  # rewrite the file in PR 3 format
        half = {f: dict(list(trials.items())[:2]) for f, trials in data["completed"].items()}
        data["completed"] = half
        path.write_text(json.dumps(data))
        resumed = ParallelSweepEngine(2, 6, checkpoint_path=path).run(
            (1, 3), trials=4, seed=7
        )
        assert resumed == full

    def test_pr3_format_checkpoint_rejected_for_other_topology(self, tmp_path):
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=0)
        data = json.loads(path.read_text())
        del data["topology"]
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointMismatchError):
            ParallelSweepEngine(2, 6, checkpoint_path=path, topology="hypercube").run(
                (1,), trials=3, seed=0
            )

    def test_checkpointed_topology_resume_equals_uninterrupted(self, tmp_path):
        from repro.engine import SweepProgress

        class _Stop(Exception):
            pass

        count = {"n": 0}

        def interrupt(progress: SweepProgress) -> None:
            count["n"] += 1
            if count["n"] == 5:
                raise _Stop

        path = tmp_path / "sweep.json"
        full = ParallelSweepEngine(2, 7, topology="shuffle_exchange").run(
            (1, 2), trials=6, seed=3
        )
        with pytest.raises(_Stop):
            ParallelSweepEngine(
                2, 7, topology="shuffle_exchange", checkpoint_path=path,
                checkpoint_every=1, progress=interrupt, batch=1,
            ).run((1, 2), trials=6, seed=3)
        resumed = ParallelSweepEngine(
            2, 7, topology="shuffle_exchange", checkpoint_path=path
        ).run((1, 2), trials=6, seed=3)
        assert resumed == full


class TestRunnerBackendAuthority:
    """A supplied runner's backend drives measurement AND aggregation."""

    def test_engine_adopts_runner_topology(self):
        runner = FaultSweepRunner(2, 6, topology="hypercube")
        [row] = ParallelSweepEngine(2, 6, runner=runner).run((1,), trials=4, seed=0)
        assert row.reference_size == 2**6 - 1  # hypercube N - f, not d^n - nf

    def test_conflicting_topology_key_rejected(self):
        runner = FaultSweepRunner(2, 6, topology="hypercube")
        with pytest.raises(Exception, match="conflicts"):
            ParallelSweepEngine(2, 6, runner=runner, topology="kautz")
        # an explicit default key conflicting with the runner is caught too
        with pytest.raises(Exception, match="conflicts"):
            ParallelSweepEngine(2, 6, runner=runner, topology="debruijn")

    def test_mismatched_runner_params_rejected(self):
        # workers rebuild their runner from the engine's (d, n, root), so a
        # runner measuring a different graph would make serial and parallel
        # rows diverge — refuse at construction
        with pytest.raises(Exception, match="engine"):
            ParallelSweepEngine(2, 7, runner=FaultSweepRunner(2, 6))
        with pytest.raises(Exception, match="root"):
            ParallelSweepEngine(
                2, 6, root=(1, 0, 1, 0, 1, 0), runner=FaultSweepRunner(2, 6)
            )
        # matching root (or None) is fine
        runner = FaultSweepRunner(2, 6, root=(1, 0, 1, 0, 1, 0))
        ParallelSweepEngine(2, 6, root=(1, 0, 1, 0, 1, 0), runner=runner)
        ParallelSweepEngine(2, 6, runner=runner)

    def test_run_table_on_unregistered_topology_instance(self):
        from repro.topology import HypercubeTopology

        class CustomCube(HypercubeTopology):
            key = "custom_cube_for_test"

        runner = FaultSweepRunner(2, 5, topology=CustomCube(2, 5))
        rows = runner.run_table(fault_counts=(0, 1), trials=3, seed=0)
        assert rows[0].max_size == 32
        assert rows[1].reference_size == 32 - 1  # single-node units

    def test_unregistered_topology_cannot_run_parallel(self):
        from repro.topology import HypercubeTopology

        class CustomCube(HypercubeTopology):
            key = "custom_cube_for_test_2"

        runner = FaultSweepRunner(2, 5, topology=CustomCube(2, 5))
        engine = ParallelSweepEngine(2, 5, runner=runner, workers=2)
        with pytest.raises(Exception, match="register"):
            engine.run((1,), trials=2, seed=0)

    def test_checkpoint_header_uses_runner_topology(self, tmp_path):
        path = tmp_path / "ck.json"
        runner = FaultSweepRunner(2, 6, topology="shuffle_exchange")
        ParallelSweepEngine(2, 6, runner=runner, checkpoint_path=path).run(
            (1,), trials=2, seed=0
        )
        assert json.loads(path.read_text())["topology"] == "shuffle_exchange"


class TestRegistryReRegistration:
    def test_re_register_evicts_cached_instances(self):
        from repro.topology import HypercubeTopology, register_topology
        from repro.topology.hypercube import HypercubeTopology as Builtin

        try:
            before = get_topology("hypercube", 2, 4)

            class Patched(HypercubeTopology):
                pass

            register_topology("hypercube", Patched)
            after = get_topology("hypercube", 2, 4)
            assert type(after) is Patched and after is not before
        finally:
            register_topology("hypercube", Builtin)


class TestReferenceColumns:
    def test_hypercube_reference_counts_single_nodes(self):
        [row] = ParallelSweepEngine(2, 8, topology="hypercube").run((5,), trials=2, seed=0)
        assert row.reference_size == 2**8 - 5

    def test_kautz_reference_counts_orbits(self):
        [row] = ParallelSweepEngine(2, 6, topology="kautz").run((2,), trials=2, seed=0)
        topo = get_topology("kautz", 2, 6)
        assert row.reference_size == topo.num_nodes - 6 * 2

    def test_debruijn_reference_unchanged(self):
        [row] = ParallelSweepEngine(2, 10).run((7,), trials=2, seed=0)
        assert row.reference_size == 2**10 - 10 * 7
