"""Structural tests for the topology backends and their registry.

Each backend's gather tables are cross-validated against the corresponding
explicit graph class in :mod:`repro.graphs` on small instances — the tables
drive every sweep, so they must agree edge-for-edge with the readable
implementations.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, UnknownTopologyError
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.hypercube import HypercubeGraph
from repro.graphs.kautz import KautzGraph
from repro.graphs.shuffle_exchange import ShuffleExchangeGraph
from repro.graphs.undirected import UndirectedDeBruijnGraph
from repro.topology import (
    DEFAULT_TOPOLOGY,
    Topology,
    available_topologies,
    get_topology,
)
from repro.words.codec import get_codec

ALL_KEYS = ("debruijn", "kautz", "hypercube", "shuffle_exchange", "undirected_debruijn")


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_topologies()
        for key in ALL_KEYS:
            assert key in names
        assert DEFAULT_TOPOLOGY == "debruijn"

    def test_unknown_key_rejected(self):
        with pytest.raises(UnknownTopologyError):
            get_topology("torus", 2, 5)

    def test_instances_cached_per_key_and_params(self):
        a = get_topology("kautz", 2, 5)
        b = get_topology("kautz", 2, 5)
        c = get_topology("kautz", 2, 6)
        assert a is b and a is not c

    def test_prebuilt_instance_passes_through(self):
        topo = get_topology("hypercube", 2, 4)
        assert get_topology(topo, 9, 9) is topo  # params ignored for instances

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_protocol_surface(self, key):
        topo = get_topology(key, 2, 5)
        assert isinstance(topo, Topology)
        assert topo.size == topo.num_nodes > 0
        assert topo.key == key
        assert "(" in topo.name
        assert topo.describe()["topology"] == key
        # gather-table shapes line up with the node count
        assert topo.successor_table.shape[0] == topo.num_nodes
        assert topo.predecessor_table.shape[0] == topo.num_nodes
        assert len(topo.predecessor_columns) == topo.predecessor_table.shape[1]
        # default root is a valid node and re-encodes to itself
        root = topo.default_root_code
        assert topo.encode(topo.decode(root)) == root
        assert topo.reference_size(0) == topo.num_nodes
        assert topo.reference_size(2) == topo.num_nodes - 2 * topo.max_fault_unit_size

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_encode_decode_roundtrip_all_codes(self, key):
        topo = get_topology(key, 2, 4)
        for code in range(topo.num_nodes):
            assert topo.encode(topo.decode(code)) == code
        with pytest.raises(InvalidParameterError):
            topo.decode(topo.num_nodes)
        with pytest.raises(InvalidParameterError):
            topo.encode(topo.num_nodes)  # int form is range-checked too


class TestDeBruijnBackend:
    def test_tables_are_the_codec_tables(self):
        # the compatibility anchor: not equal — IDENTICAL objects
        topo = get_topology("debruijn", 2, 6)
        codec = get_codec(2, 6)
        assert topo.successor_table is codec.successor_table
        assert topo.predecessor_table is codec.predecessor_table
        assert topo.predecessor_columns is codec.predecessor_columns
        assert topo.neighbour_table is codec.neighbour_table

    def test_fault_units_are_necklaces(self):
        topo = get_topology("debruijn", 2, 6)
        codec = get_codec(2, 6)
        codes = np.asarray([3, 17])
        assert np.array_equal(
            topo.fault_unit_mask(codes), codec.faulty_necklace_mask(codes)
        )
        assert topo.fault_unit_reps([3]) == [int(codec.rep[3])]

    def test_root_and_reference(self):
        topo = get_topology("debruijn", 2, 10)
        assert topo.decode(topo.default_root_code) == (0,) * 9 + (1,)
        assert topo.reference_size(5) == 2**10 - 10 * 5
        assert topo.reference_label == "d^n - nf"

    def test_guarantee_bound_matches_ffc(self):
        from repro.core.ffc import guaranteed_cycle_length

        topo = get_topology("debruijn", 2, 6)
        assert topo.guarantee_bound(1) == guaranteed_cycle_length(2, 6, 1)
        assert topo.guarantee_bound(10**6) is None

    def test_successors_match_graph_class(self):
        topo = get_topology("debruijn", 3, 3)
        graph = DeBruijnGraph(3, 3)
        for code in range(topo.num_nodes):
            word = topo.decode(code)
            mine = sorted(topo.decode(int(c)) for c in topo.successor_table[code])
            assert mine == sorted(graph.successors(word))


class TestKautzBackend:
    @pytest.mark.parametrize("d,n", [(2, 4), (3, 3)])
    def test_tables_match_graph_class(self, d, n):
        topo = get_topology("kautz", d, n)
        graph = KautzGraph(d, n)
        assert topo.num_nodes == graph.num_nodes
        for code in range(topo.num_nodes):
            word = topo.decode(code)
            succ = sorted(topo.decode(int(c)) for c in topo.successor_table[code])
            assert succ == sorted(graph.successors(word))
            pred = sorted(topo.decode(int(c)) for c in topo.predecessor_table[code])
            assert pred == sorted(graph.predecessors(word))

    def test_rotation_orbits(self):
        topo = get_topology("kautz", 2, 4)
        for code in range(topo.num_nodes):
            mask = topo.fault_unit_mask([code])
            members = np.flatnonzero(mask)
            word = topo.decode(code)
            if word[0] == word[-1]:
                # non-cyclic word: singleton orbit
                assert members.tolist() == [code]
            else:
                # cyclic word: the orbit is exactly the distinct rotations
                rotations = {tuple(word[i:] + word[:i]) for i in range(len(word))}
                assert {topo.decode(int(m)) for m in members} == rotations
            # every member induces the same removal
            for m in members.tolist():
                assert np.array_equal(topo.fault_unit_mask([m]), mask)
            # one representative per orbit, shared by all members
            reps = {tuple(topo.fault_unit_reps([m])) for m in members.tolist()}
            assert len(reps) == 1

    def test_invalid_word_rejected(self):
        topo = get_topology("kautz", 2, 4)
        with pytest.raises(InvalidParameterError):
            topo.encode((0, 0, 1, 2))  # repeated adjacent digit
        with pytest.raises(InvalidParameterError):
            topo.encode((0, 1, 2))  # wrong length

    def test_default_root_alternates(self):
        assert get_topology("kautz", 2, 5).decode(
            get_topology("kautz", 2, 5).default_root_code
        ) == (0, 1, 0, 1, 0)


class TestHypercubeBackend:
    def test_neighbours_match_graph_class(self):
        topo = get_topology("hypercube", 2, 4)
        cube = HypercubeGraph(4)
        for code in range(16):
            assert sorted(topo.successor_table[code].tolist()) == sorted(
                cube.neighbors(code)
            )

    def test_bitstring_coding(self):
        topo = get_topology("hypercube", 2, 4)
        assert topo.encode((1, 0, 1, 1)) == 0b1011
        assert topo.decode(0b1011) == (1, 0, 1, 1)
        assert topo.default_root_code == 1  # 0...01

    def test_single_node_units(self):
        topo = get_topology("hypercube", 2, 4)
        mask = topo.fault_unit_mask([5, 9])
        assert mask.sum() == 2 and mask[5] and mask[9]
        assert topo.fault_unit_reps([9, 5, 5]) == [5, 9]

    def test_wc92_bound(self):
        topo = get_topology("hypercube", 2, 12)
        assert topo.guarantee_bound(2) == 2**12 - 4
        assert topo.guarantee_bound(11) is None  # beyond f <= n - 2

    def test_nonbinary_d_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_topology("hypercube", 3, 4)


class TestShuffleExchangeBackend:
    @pytest.mark.parametrize("d,n", [(2, 4), (3, 3)])
    def test_neighbours_match_graph_class(self, d, n):
        topo = get_topology("shuffle_exchange", d, n)
        graph = ShuffleExchangeGraph(d, n)
        for code in range(topo.num_nodes):
            word = topo.decode(code)
            # the table pads with self-entries (constant words shuffle to
            # themselves); the class's neighbor list drops self-loops
            mine = sorted({topo.decode(int(c)) for c in topo.successor_table[code]} - {word})
            assert mine == graph.neighbors(word)

    def test_single_node_units(self):
        topo = get_topology("shuffle_exchange", 2, 5)
        assert topo.fault_unit_mask([7]).sum() == 1
        assert topo.max_fault_unit_size == 1


class TestUndirectedDeBruijnBackend:
    def test_reaches_whole_graph_like_class(self):
        from repro.graphs.components import bfs_levels_table

        topo = get_topology("undirected_debruijn", 2, 4)
        graph = UndirectedDeBruijnGraph(2, 4)
        dist = bfs_levels_table(
            topo.neighbour_table, np.zeros(topo.num_nodes, dtype=bool), 1
        )
        assert (dist >= 0).sum() == graph.num_nodes  # connected, all reached

    def test_necklace_units_shared_with_directed(self):
        ub = get_topology("undirected_debruijn", 2, 6)
        b = get_topology("debruijn", 2, 6)
        codes = np.asarray([9, 33])
        assert np.array_equal(ub.fault_unit_mask(codes), b.fault_unit_mask(codes))
