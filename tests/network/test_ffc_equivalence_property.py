"""Property-based equivalence: centralized vs distributed FFC, and both kernels.

The paper's central claim for Chapter 2 is that the message-passing protocol
of Section 2.4 realises exactly the centralized algorithm of Section 2.3.
These tests pin that equivalence over randomized fault sets across a
``(d, n)`` grid — including the ``f = d - 2`` boundary of Proposition 2.2 —
and additionally pin the integer-coded kernel against the readable tuple
reference implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_fault_free_cycle, worst_case_fault_placement
from repro.exceptions import DisconnectedGraphError
from repro.network import run_distributed_ffc

#: Small-graph grid: the distributed simulator runs one Python program per
#: processor, so property tests stay on graphs of at most a few hundred nodes.
GRID = [(2, 4), (2, 5), (3, 3), (3, 4), (4, 3), (5, 2)]


def _random_faults(data, d, n, f):
    return [
        tuple(data.draw(st.integers(0, d - 1), label=f"fault{i}digit") for _ in range(n))
        for i in range(f)
    ]


@settings(max_examples=12, deadline=None)
@given(st.sampled_from(GRID), st.data())
def test_distributed_matches_centralized_on_random_faults(dn, data):
    d, n = dn
    f = data.draw(st.integers(0, d + 1), label="fault_count")
    faults = _random_faults(data, d, n, f)
    try:
        central = find_fault_free_cycle(d, n, faults)
    except DisconnectedGraphError:
        return
    distributed = run_distributed_ffc(d, n, faults)
    assert list(distributed.cycle) == list(central.cycle)


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([(3, 3), (4, 3), (5, 2), (4, 2)]), st.data())
def test_distributed_matches_centralized_at_prop_2_2_boundary(dn, data):
    """The f = d - 2 boundary: the largest fault count with a worst-case bound."""
    d, n = dn
    f = d - 2
    faults = _random_faults(data, d, n, f)
    central = find_fault_free_cycle(d, n, faults)
    distributed = run_distributed_ffc(d, n, faults)
    assert list(distributed.cycle) == list(central.cycle)
    # Proposition 2.2's guarantee applies on the boundary
    assert central.length >= d**n - n * f
    assert central.meets_guarantee()


@pytest.mark.parametrize("d,n", [(3, 3), (4, 3), (5, 2)])
def test_distributed_matches_centralized_on_worst_case_placement(d, n):
    """The adversarial placement achieving the Prop. 2.2 bound with equality."""
    faults = worst_case_fault_placement(d, n, d - 2)
    central = find_fault_free_cycle(d, n, faults)
    distributed = run_distributed_ffc(d, n, faults)
    assert list(distributed.cycle) == list(central.cycle)
    assert central.length == d**n - n * (d - 2)


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(GRID + [(2, 7), (2, 8), (3, 5)]), st.data())
def test_codec_kernel_matches_tuple_reference(dn, data):
    """The integer kernel and the tuple reference produce identical results."""
    d, n = dn
    f = data.draw(st.integers(0, 2 * d), label="fault_count")
    faults = _random_faults(data, d, n, f)
    try:
        fast = find_fault_free_cycle(d, n, faults, kernel="codec")
    except DisconnectedGraphError:
        with pytest.raises(DisconnectedGraphError):
            find_fault_free_cycle(d, n, faults, kernel="tuple")
        return
    slow = find_fault_free_cycle(d, n, faults, kernel="tuple")
    assert list(fast.cycle) == list(slow.cycle)
    assert fast.bstar.root == slow.bstar.root
    assert fast.bstar.nodes == slow.bstar.nodes
    assert fast.spanning_tree.parent == slow.spanning_tree.parent
    assert fast.modified_tree.outgoing == slow.modified_tree.outgoing


def test_seeded_random_sweep_distributed_equals_centralized():
    """A deterministic seeded sweep (complementing the hypothesis searches)."""
    rng = np.random.default_rng(2026)
    for d, n in GRID:
        for f in (0, 1, d - 2, d - 1):
            if f < 0:
                continue
            faults = [tuple(int(x) for x in rng.integers(0, d, n)) for _ in range(f)]
            try:
                central = find_fault_free_cycle(d, n, faults)
            except DisconnectedGraphError:
                continue
            distributed = run_distributed_ffc(d, n, faults)
            assert list(distributed.cycle) == list(central.cycle)
