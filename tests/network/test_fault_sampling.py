"""Determinism contract of the vectorized fault sampler (network/faults.py).

The chunked rejection sampler must consume the generator stream
value-for-value identically to the historical one-draw-at-a-time loop:
same accepted codes, same draw count, same generator state afterwards.
That is what keeps sequentially-threaded generators (the frozen-reference
rows of :mod:`repro.analysis.reference`) and the engine's per-trial streams
bit-for-bit reproducible across this refactor.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParameterError
from repro.network.faults import (
    sample_fault_code_batch,
    sample_node_fault_codes,
    sample_node_faults,
)
from repro.words.alphabet import int_to_word


def _legacy_sample_words(d, n, f, rng, exclude=()):
    """The pre-vectorization loop, verbatim: the behavioural reference."""
    total = d**n
    excluded = {w for w in exclude}
    faults, chosen = [], set()
    while len(faults) < f:
        value = int(rng.integers(0, total))
        if value in chosen:
            continue
        word = int_to_word(value, d, n)
        if word in excluded:
            continue
        chosen.add(value)
        faults.append(word)
    return faults


class TestDrawParity:
    @settings(max_examples=60, deadline=None)
    @given(
        d=st.integers(2, 4),
        n=st.integers(2, 5),
        f_fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 10_000),
    )
    def test_codes_and_generator_state_match_legacy(self, d, n, f_fraction, seed):
        f = int(f_fraction * d**n)
        legacy_rng = np.random.default_rng(seed)
        new_rng = np.random.default_rng(seed)
        legacy = _legacy_sample_words(d, n, f, legacy_rng)
        codes = sample_node_fault_codes(d, n, f, new_rng)
        assert [int_to_word(c, d, n) for c in codes] == legacy
        # identical post-state: the next draw agrees, so sequentially
        # threaded generators (run_row, the frozen reference) are unshifted
        assert int(legacy_rng.integers(0, 2**30)) == int(new_rng.integers(0, 2**30))

    def test_word_boundary_matches_legacy(self):
        for seed in range(25):
            a = _legacy_sample_words(2, 10, 50, np.random.default_rng(seed))
            b = sample_node_faults(2, 10, 50, np.random.default_rng(seed))
            assert a == b

    def test_exclude_parity_including_junk_words(self):
        # junk excluded words (wrong length / digits) can never be drawn;
        # they must not shift the stream, exactly as in the legacy loop
        exclude = ((0, 0, 0, 1), (1, 1, 1, 1), (9, 9), (0, 1))
        for seed in range(25):
            r1, r2 = np.random.default_rng(seed), np.random.default_rng(seed)
            a = _legacy_sample_words(2, 4, 10, r1, exclude)
            b = sample_node_faults(2, 4, 10, r2, exclude)
            assert a == b
            assert int(r1.integers(0, 99)) == int(r2.integers(0, 99))


class TestBatchSampling:
    def test_batch_equals_per_trial_calls(self):
        seqs = [np.random.SeedSequence(0, spawn_key=(5, t)) for t in range(16)]
        batch = sample_fault_code_batch(2, 6, 5, [np.random.default_rng(s) for s in seqs])
        for t, seq in enumerate(seqs):
            alone = sample_node_fault_codes(2, 6, 5, np.random.default_rng(seq))
            assert batch[t].tolist() == alone

    def test_zero_faults(self):
        assert sample_node_fault_codes(2, 4, 0, np.random.default_rng(0)) == []
        batch = sample_fault_code_batch(2, 4, 0, [np.random.default_rng(0)])
        assert batch.shape == (1, 0)

    def test_codes_are_distinct_and_in_range(self):
        codes = sample_node_fault_codes(3, 4, 80, np.random.default_rng(1))
        assert len(set(codes)) == 80
        assert all(0 <= c < 81 for c in codes)

    def test_exclude_codes_respected(self):
        codes = sample_node_fault_codes(
            2, 3, 6, np.random.default_rng(2), exclude_codes=(0, 7)
        )
        assert set(codes) == set(range(1, 7))


class TestValidation:
    def test_negative_and_oversized_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            sample_node_fault_codes(2, 3, -1)
        with pytest.raises(InvalidParameterError):
            sample_node_fault_codes(2, 3, 9)
        with pytest.raises(InvalidParameterError):
            sample_node_fault_codes(2, 3, 8, exclude_codes=(0,))
