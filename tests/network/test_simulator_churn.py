"""Dynamic faults on the simulator: heal/fail mutators and drop accounting.

The churn engine's network-level contract: a healed link stops dropping, a
healed processor resumes participating, every loss is attributed to exactly
one cause, and message conservation (``sent == delivered + dropped``) holds
across any fault/heal interleaving.
"""

import pytest

from repro.exceptions import SimulationError
from repro.network import NodeProgram, SynchronousDeBruijnNetwork


class FloodOnce(NodeProgram):
    """Everyone pings every successor once, then halts."""

    def on_start(self, ctx):
        ctx.state["received"] = 0
        ctx.send_to_all_successors("ping")

    def on_round(self, ctx, messages):
        ctx.state["received"] += len(messages)
        ctx.halt()

    def result(self, ctx):
        return ctx.state["received"]


def _flood(net):
    return net.run(lambda node: FloodOnce())


class TestDropAttribution:
    def test_fault_free_network_drops_nothing(self):
        result = _flood(SynchronousDeBruijnNetwork(2, 3))
        assert result.messages_sent == 16  # 8 nodes x 2 successors
        assert result.messages_delivered == 16
        assert result.messages_dropped == 0
        assert result.dropped_faulty_link == 0
        assert result.dropped_faulty_node == 0
        assert result.dropped_no_receiver == 0

    def test_faulty_link_drops_are_attributed_to_the_link(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        net.fail_edge((1, 0, 0), (0, 0, 1))
        result = _flood(net)
        assert result.dropped_faulty_link == 1
        assert result.dropped_faulty_node == 0
        assert result.messages_delivered == 15

    def test_faulty_node_drops_are_attributed_to_the_node(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        net.fail_node((0, 0, 0))
        result = _flood(net)
        # the faulty node neither sends (7 live senders) nor receives: its
        # only live predecessor is (1,0,0) — (0,0,0)'s self-loop is dead too
        assert result.messages_sent == 14
        assert result.dropped_faulty_node == 1
        assert result.dropped_faulty_link == 0
        assert result.messages_delivered == 13

    def test_silent_non_participants_are_their_own_cause(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        participants = [w for w in net.graph.nodes() if w != (1, 1, 1)]
        result = net.run(lambda node: FloodOnce(), participants=participants)
        assert result.dropped_no_receiver > 0
        assert result.dropped_faulty_node == 0
        assert result.dropped_faulty_link == 0


class TestHealing:
    def test_healed_link_stops_dropping(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        net.fail_edge((1, 0, 0), (0, 0, 1))
        assert _flood(net).dropped_faulty_link == 1
        net.heal_edge((1, 0, 0), (0, 0, 1))
        healed = _flood(net)
        assert healed.dropped_faulty_link == 0
        assert healed.messages_delivered == 16

    def test_healed_node_resumes_sending_and_receiving(self):
        net = SynchronousDeBruijnNetwork(2, 3, faulty_nodes=[(0, 0, 0)])
        assert _flood(net).dropped_faulty_node == 1
        net.heal_node((0, 0, 0))
        healed = _flood(net)
        assert healed.messages_sent == 16
        assert healed.dropped_faulty_node == 0
        assert healed.node_results[(0, 0, 0)] == 2  # indegree restored

    def test_conservation_across_fault_heal_interleaving(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        steps = [
            ("fail_node", ((0, 0, 0),)),
            ("fail_edge", ((1, 1, 0), (1, 0, 1))),
            ("fail_node", ((1, 1, 1),)),
            ("heal_node", ((0, 0, 0),)),
            ("fail_edge", ((0, 1, 0), (1, 0, 0))),
            ("heal_edge", ((1, 1, 0), (1, 0, 1))),
            ("heal_node", ((1, 1, 1),)),
            ("heal_edge", ((0, 1, 0), (1, 0, 0))),
        ]
        for method, args in steps:
            getattr(net, method)(*args)
            result = _flood(net)
            assert result.messages_sent == (
                result.messages_delivered + result.messages_dropped
            )
            assert result.messages_dropped == (
                result.dropped_faulty_link
                + result.dropped_faulty_node
                + result.dropped_no_receiver
            )
        # everything healed: back to the fault-free baseline
        final = _flood(net)
        assert final.messages_delivered == 16
        assert final.messages_dropped == 0


class TestMutatorValidation:
    def test_double_fault_and_heal_of_healthy_are_rejected(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        net.fail_node((0, 1, 0))
        with pytest.raises(SimulationError, match="already faulty"):
            net.fail_node((0, 1, 0))
        with pytest.raises(SimulationError, match="not faulty"):
            net.heal_node((1, 1, 1))

    def test_edge_mutators_validate_the_link(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        with pytest.raises(SimulationError, match="not a link"):
            net.fail_edge((0, 0, 0), (1, 1, 1))  # not a De Bruijn edge
        net.fail_edge((0, 0, 1), (0, 1, 0))
        with pytest.raises(SimulationError, match="already faulty"):
            net.fail_edge((0, 0, 1), (0, 1, 0))
        with pytest.raises(SimulationError, match="not faulty"):
            net.heal_edge((0, 1, 0), (1, 0, 0))

    def test_mutators_validate_the_alphabet(self):
        from repro.exceptions import InvalidParameterError

        net = SynchronousDeBruijnNetwork(2, 3)
        with pytest.raises(InvalidParameterError):
            net.fail_node((0, 2, 0))  # digit outside Z_2
