"""Tests for the message-passing simulator and the Section 2.4 protocols."""

import pytest

from repro.core import disjoint_hamiltonian_cycles, find_fault_free_cycle, nodes_of_sequence
from repro.exceptions import InvalidParameterError, SimulationError
from repro.network import (
    Message,
    NodeContext,
    NodeProgram,
    SynchronousDeBruijnNetwork,
    all_to_all_cost_model,
    run_broadcast,
    run_distributed_ffc,
    run_necklace_probe,
    sample_edge_faults,
    sample_node_faults,
    simulate_all_to_all,
)
from repro.words import necklace_of
import numpy as np


class EchoProgram(NodeProgram):
    """Toy program: everyone sends one ping to every successor, then halts."""

    def on_start(self, ctx):
        ctx.state["received"] = 0
        ctx.send_to_all_successors("ping")

    def on_round(self, ctx, messages):
        ctx.state["received"] += len(messages)
        ctx.halt()

    def result(self, ctx):
        return ctx.state["received"]


class TestSimulator:
    def test_echo_counts_indegree(self):
        net = SynchronousDeBruijnNetwork(3, 2)
        result = net.run(lambda node: EchoProgram())
        assert result.halted
        # every node receives one ping per live predecessor (indegree 3)
        assert all(count == 3 for count in result.node_results.values())
        assert result.messages_delivered == 27

    def test_faulty_nodes_do_not_participate(self):
        net = SynchronousDeBruijnNetwork(3, 2, faulty_nodes=[(0, 0)])
        result = net.run(lambda node: EchoProgram())
        assert (0, 0) not in result.node_results
        # messages addressed to the faulty node are dropped
        assert result.messages_dropped > 0

    def test_faulty_edges_drop_messages(self):
        net = SynchronousDeBruijnNetwork(2, 3, faulty_edges=[(((0, 0, 0)), ((0, 0, 1)))])
        result = net.run(lambda node: EchoProgram())
        assert result.node_results[(0, 0, 1)] == 1  # one of its two in-edges is dead

    def test_invalid_faulty_edge_rejected(self):
        with pytest.raises(SimulationError):
            SynchronousDeBruijnNetwork(2, 3, faulty_edges=[(((0, 0, 0)), ((1, 1, 1)))])

    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                ctx.send((1, 1, 1), "x")

            def on_round(self, ctx, messages):
                ctx.halt()

        net = SynchronousDeBruijnNetwork(2, 3)
        with pytest.raises(SimulationError):
            net.run(lambda node: Bad())

    def test_double_send_on_one_link_rejected(self):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                ctx.send(ctx.successors[0], "x")
                ctx.send(ctx.successors[0], "y")

            def on_round(self, ctx, messages):
                ctx.halt()

        net = SynchronousDeBruijnNetwork(2, 3)
        with pytest.raises(SimulationError):
            net.run(lambda node: Bad())

    def test_nonterminating_program_detected(self):
        class Chatter(NodeProgram):
            def on_round(self, ctx, messages):
                ctx.send_to_all_successors("again")

        net = SynchronousDeBruijnNetwork(2, 2)
        with pytest.raises(SimulationError):
            net.run(lambda node: Chatter(), max_rounds=20)

    def test_participants_restriction(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        result = net.run(lambda node: EchoProgram(), participants=[(0, 0, 0), (0, 0, 1)])
        assert set(result.node_results) == {(0, 0, 0), (0, 0, 1)}


class TestNecklaceProbe:
    def test_no_faults_all_healthy(self):
        net = SynchronousDeBruijnNetwork(3, 3)
        result, healthy = run_necklace_probe(net)
        assert len(healthy) == 27
        assert result.rounds <= 3 + 1

    def test_faulty_necklaces_detected(self):
        net = SynchronousDeBruijnNetwork(3, 3, faulty_nodes=[(0, 2, 0), (1, 1, 2)])
        _, healthy = run_necklace_probe(net)
        assert len(healthy) == 21
        assert (2, 0, 0) not in healthy  # same necklace as the faulty 020
        assert (0, 0, 0) in healthy

    def test_members_collected_in_order(self):
        net = SynchronousDeBruijnNetwork(2, 4)
        result, _ = run_necklace_probe(net)
        info = result.node_results[(0, 0, 1, 1)]
        assert set(info["members"]) == necklace_of((0, 0, 1, 1), 2).node_set

    def test_loop_necklace_healthy(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        result, healthy = run_necklace_probe(net)
        assert (1, 1, 1) in healthy


class TestBroadcast:
    def test_levels_equal_bfs_distance(self):
        net = SynchronousDeBruijnNetwork(2, 4)
        root = (0, 0, 0, 1)
        _, info = run_broadcast(net, root, net.graph.nodes())
        assert info[root]["level"] == 0
        assert max(i["level"] for i in info.values()) == 4  # diameter of B(2,4)
        # parent of each non-root node is a predecessor one level closer
        for node, data in info.items():
            if node == root:
                continue
            parent = data["parent"]
            assert parent in net.graph.predecessors(node)
            assert info[parent]["level"] == data["level"] - 1

    def test_root_must_participate(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        with pytest.raises(SimulationError):
            run_broadcast(net, (0, 0, 1), [(0, 0, 0)])

    def test_unreachable_nodes_have_no_level(self):
        # removing necklace of 0101... disconnects nothing in B(2,4)? use faults
        net = SynchronousDeBruijnNetwork(2, 2, faulty_nodes=[(0, 1)])
        participants = [w for w in net.graph.nodes() if w not in {(0, 1), (1, 0)}]
        _, info = run_broadcast(net, (0, 0), participants)
        assert info[(0, 0)]["level"] == 0
        assert info[(1, 1)]["level"] is None  # cut off once the 01/10 necklace is gone


class TestDistributedFFC:
    @pytest.mark.parametrize(
        "d,n,faults",
        [
            (3, 3, [(0, 2, 0), (1, 1, 2)]),
            (2, 5, [(0, 1, 0, 1, 1)]),
            (2, 6, []),
            (4, 3, [(0, 1, 2), (3, 3, 1)]),
            (3, 4, [(0, 1, 2, 2)]),
            (5, 2, [(0, 1)]),
        ],
    )
    def test_matches_centralized_algorithm(self, d, n, faults):
        dres = run_distributed_ffc(d, n, faults)
        cres = find_fault_free_cycle(d, n, faults)
        assert list(dres.cycle) == list(cres.cycle)

    def test_step_counts_are_o_k_plus_n(self):
        d, n = 2, 7
        dres = run_distributed_ffc(d, n, [(0, 0, 1, 1, 0, 1, 1)])
        assert dres.probe_rounds == n
        assert dres.broadcast_steps <= 2 * n
        assert dres.coordination_rounds <= 2 * n + 1
        assert dres.total_steps <= 5 * n + 1

    def test_example_2_1_cycle(self):
        dres = run_distributed_ffc(3, 3, [(0, 2, 0), (1, 1, 2)], root_hint=(0, 0, 0))
        assert len(dres.cycle) == 21
        assert dres.cycle[0] == (0, 0, 0)
        assert dres.cycle[1] == (0, 0, 1)

    def test_messages_are_counted(self):
        dres = run_distributed_ffc(2, 4, [])
        assert dres.messages_delivered > 0


class TestAllToAll:
    def test_single_ring_completes(self):
        ring = nodes_of_sequence(disjoint_hamiltonian_cycles(4, 2)[0], 2)
        stats = simulate_all_to_all([ring])
        assert stats.complete
        assert stats.steps == len(ring) - 1
        assert stats.per_link_payload == len(ring) - 1

    def test_multiple_rings_split_traffic(self):
        cycles = disjoint_hamiltonian_cycles(4, 2)
        rings = [nodes_of_sequence(c, 2) for c in cycles]
        stats = simulate_all_to_all(rings)
        assert stats.complete
        assert stats.rings == 3
        # same number of fragments per link, but each fragment is 1/3 size:
        # full-message units per link drop by a factor of `rings`
        assert stats.per_link_payload / stats.rings < simulate_all_to_all(rings[:1]).per_link_payload

    def test_mismatched_rings_rejected(self):
        with pytest.raises(InvalidParameterError):
            simulate_all_to_all([[(0, 1), (1, 0)], [(0, 1), (1, 1)]])
        with pytest.raises(InvalidParameterError):
            simulate_all_to_all([])

    def test_cost_model_speedup(self):
        slow = all_to_all_cost_model(64, 1024, 1, alpha=1, beta=0.01)
        fast = all_to_all_cost_model(64, 1024, 3, alpha=1, beta=0.01)
        assert fast < slow
        with pytest.raises(InvalidParameterError):
            all_to_all_cost_model(1, 10, 1)


class TestFaultSampling:
    def test_node_fault_sampling_deterministic(self):
        rng1 = np.random.default_rng(42)
        rng2 = np.random.default_rng(42)
        assert sample_node_faults(2, 10, 5, rng1) == sample_node_faults(2, 10, 5, rng2)

    def test_node_fault_sampling_distinct_and_valid(self):
        faults = sample_node_faults(4, 5, 50, np.random.default_rng(1))
        assert len(set(faults)) == 50
        assert all(len(w) == 5 and all(0 <= x < 4 for x in w) for w in faults)

    def test_node_fault_exclusion(self):
        faults = sample_node_faults(2, 4, 10, np.random.default_rng(3), exclude=((0, 0, 0, 1),))
        assert (0, 0, 0, 1) not in faults

    def test_too_many_faults_rejected(self):
        with pytest.raises(InvalidParameterError):
            sample_node_faults(2, 3, 9)

    def test_edge_fault_sampling(self):
        faults = sample_edge_faults(3, 3, 10, np.random.default_rng(0))
        assert len(set(faults)) == 10
        for label in faults:
            assert len(label) == 4
            assert len(set(label)) > 1  # no loop edges by default


class TestMessageAndContext:
    def test_message_repr(self):
        msg = Message((0, 1), (1, 0), "tag", None, 3)
        assert "01" in repr(msg) and "10" in repr(msg)

    def test_context_halt_flag(self):
        ctx = NodeContext((0, 1), 2, 2, ((1, 0), (1, 1)), ((0, 0), (1, 0)))
        assert not ctx.halted
        ctx.halt()
        assert ctx.halted


class TestMessageAccounting:
    """Drop reasons are attributed distinctly and messages are conserved."""

    def test_conservation_no_faults(self):
        net = SynchronousDeBruijnNetwork(3, 2)
        result = net.run(lambda node: EchoProgram())
        assert result.messages_sent == 27
        assert result.messages_sent == result.messages_delivered + result.messages_dropped
        assert result.messages_dropped == 0

    def test_faulty_node_drops_attributed(self):
        net = SynchronousDeBruijnNetwork(3, 2, faulty_nodes=[(0, 0)])
        result = net.run(lambda node: EchoProgram())
        # the faulty node has indegree 3, but its self-loop sender is also
        # faulty (it never runs), so 2 messages die at the faulty addressee
        assert result.dropped_faulty_node == 2
        assert result.dropped_faulty_link == 0
        assert result.dropped_no_receiver == 0
        assert result.messages_sent == result.messages_delivered + result.messages_dropped

    def test_faulty_link_drops_attributed(self):
        net = SynchronousDeBruijnNetwork(2, 3, faulty_edges=[((0, 0, 0), (0, 0, 1))])
        result = net.run(lambda node: EchoProgram())
        assert result.dropped_faulty_link == 1
        assert result.dropped_faulty_node == 0
        assert result.messages_sent == result.messages_delivered + result.messages_dropped

    def test_faulty_link_into_faulty_node_counts_as_link_drop(self):
        # a message crossing a faulty link towards a faulty node dies on the
        # wire: it must not be double-counted, and the link is the cause
        net = SynchronousDeBruijnNetwork(
            2, 3, faulty_nodes=[(0, 0, 1)], faulty_edges=[((0, 0, 0), (0, 0, 1))]
        )
        result = net.run(lambda node: EchoProgram())
        assert result.dropped_faulty_link == 1
        # remaining in-edge of (0,0,1) from (1,0,0) dies at the node instead
        assert result.dropped_faulty_node == 1
        assert result.messages_sent == result.messages_delivered + result.messages_dropped

    def test_non_participant_drops_attributed(self):
        net = SynchronousDeBruijnNetwork(2, 3)
        result = net.run(lambda node: EchoProgram(), participants=[(0, 0, 0), (0, 0, 1)])
        # participants send to all successors; messages to silent healthy
        # nodes are dropped under their own reason
        assert result.dropped_no_receiver > 0
        assert result.dropped_faulty_node == 0
        assert result.dropped_faulty_link == 0
        assert result.messages_sent == result.messages_delivered + result.messages_dropped

    def test_total_matches_reason_sum(self):
        net = SynchronousDeBruijnNetwork(
            3, 2, faulty_nodes=[(1, 2)], faulty_edges=[((0, 0), (0, 1))]
        )
        result = net.run(lambda node: EchoProgram())
        assert result.messages_dropped == (
            result.dropped_faulty_link
            + result.dropped_faulty_node
            + result.dropped_no_receiver
        )

    def test_distributed_ffc_accounting_consistent(self):
        dres = run_distributed_ffc(3, 3, [(0, 2, 0)])
        assert dres.messages_delivered > 0
