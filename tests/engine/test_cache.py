"""Tests for the bounded LRU primitive and the process-wide cache audit."""

import pytest

from repro.engine import LRUCache, cache_stats, clear_caches
from repro.exceptions import InvalidParameterError


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a -> b becomes LRU
        cache.put("c", 3)       # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, not insert
        cache.put("c", 3)       # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_get_or_create_builds_once(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or "built")
            assert value == "built"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses >= 1

    def test_stats_and_clear(self):
        cache = LRUCache(3, name="test")
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats.name == "test"
        assert (stats.hits, stats.misses, stats.currsize) == (1, 1, 1)
        assert 0 < stats.hit_rate < 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1  # counters survive clear
        cache.reset_counters()
        assert cache.stats().hits == 0

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(InvalidParameterError):
            LRUCache(0)


class TestCacheAudit:
    def test_every_audited_cache_is_bounded(self):
        from repro.core.bounds import psi
        from repro.words.codec import get_codec

        get_codec(2, 4)
        psi(6)
        stats = cache_stats()
        assert "words.get_codec" in stats
        assert "analysis.fault_runners" in stats
        for name, info in stats.items():
            assert info["maxsize"] is not None and info["maxsize"] > 0, (
                f"cache {name} is unbounded"
            )
            assert info["currsize"] <= info["maxsize"]

    def test_clear_caches_empties_everything(self):
        from repro.words.codec import get_codec

        get_codec(2, 4)
        clear_caches()
        for name, info in cache_stats().items():
            assert info["currsize"] == 0, f"cache {name} not cleared"
