"""Thread-safety regression tests for the concurrent serving stack.

The async gateway dispatches kernel launches and service queries from
worker threads while sweeps may run in the same process, so the shared
pieces — service hit/latency counters, the cache-audit registry, the
executor's scratch workspace, lazy topology tables — must stay consistent
under concurrency.  These tests hammer each from many threads and assert
exact counter totals and bit-identical measurements.
"""

import threading

import numpy as np

from repro.engine import cache_stats, register_cache
from repro.engine.caches import unregister_cache
from repro.engine.cache import LRUCache
from repro.engine.executor import KernelExecutor
from repro.engine.service import EmbeddingService
from repro.topology import get_topology


def _run_threads(worker, count=8):
    errors = []

    def wrapped(i):
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced via the list
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"worker raised: {errors[0]!r}"


class TestServiceCounters:
    def test_request_and_latency_counters_are_exact_under_threads(self):
        service = EmbeddingService()
        per_thread, threads = 25, 8

        def worker(i):
            for k in range(per_thread):
                if k % 2:
                    service.embed(2, 5, faults=[((i + k) % 2,) * 5])
                else:
                    service.measure(2, 5, faults=[((i + k) % 2,) * 5])

        _run_threads(worker, threads)
        stats = service.stats()
        # a lost update would make this an undercount
        assert stats["requests"] == per_thread * threads
        assert stats["total_latency_s"] > 0
        assert stats["compute_latency_s"] <= stats["total_latency_s"]
        answers = stats["answers"]
        # one answer-cache lookup per embed (odd iterations): exact too
        assert answers["hits"] + answers["misses"] == (per_thread // 2) * threads

    def test_concurrent_cache_audit_and_registration(self):
        # snapshotting the audit while other threads register caches and
        # serve queries must neither crash nor corrupt the registry
        service = EmbeddingService()

        def worker(i):
            for k in range(10):
                register_cache(f"test.concurrent_{i}", LRUCache(4, name=f"t{i}"))
                stats = cache_stats()
                assert "engine.kernel_executors" in stats
                service.embed(2, 5, faults=[(k % 2,) * 5])

        try:
            _run_threads(worker)
            stats = cache_stats()
            for i in range(8):
                assert f"test.concurrent_{i}" in stats
        finally:
            # leave the process-wide audit as we found it
            for i in range(8):
                unregister_cache(f"test.concurrent_{i}")
        assert "test.concurrent_0" not in cache_stats()


class TestExecutorConcurrency:
    def test_shared_workspace_launches_stay_bit_identical(self):
        # 8 threads micro-batching through ONE executor (shared kernel
        # scratch): every answer must equal the sequential scalar answer
        executor = KernelExecutor(2, 7)
        topo = executor.topology
        rng = np.random.default_rng(3)
        masks, expected = [], []
        for _ in range(48):
            f = int(rng.integers(0, 6))
            codes = rng.integers(0, topo.num_nodes, size=f).astype(np.int64)
            masks.append(topo.fault_unit_mask(codes))
        expected = [executor.measure_mask_with_root(m) for m in masks]

        def worker(i):
            for _ in range(5):
                got = executor.measure_masks_batch(masks[i * 6 : (i + 1) * 6])
                assert got == expected[i * 6 : (i + 1) * 6]

        _run_threads(worker)

    def test_cold_topology_tables_build_once_under_contention(self):
        # a cold backend touched by many threads at once (the serving
        # startup shape) must hand every reader the same finished tables
        topo = get_topology("kautz", 2, 9)
        topo._successor_table = None
        topo._predecessor_table = None
        topo._neighbour_table = None
        topo._predecessor_columns = None
        seen = []

        def worker(i):
            seen.append((id(topo.successor_table), id(topo.predecessor_columns)))

        _run_threads(worker)
        assert len(set(seen)) == 1
