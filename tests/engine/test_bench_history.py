"""Tests for the serve benchmark and the BENCH_sweep.json run history."""

import json

from repro.engine.bench import (
    ServeBenchResult,
    SweepBenchResult,
    run_serve_bench,
    write_bench_file,
)


def _sweep_result(scalar_s=1.0) -> SweepBenchResult:
    return SweepBenchResult(
        name="sweep_debruijn_2_6", topology="debruijn", d=2, n=6, nodes=64,
        fault_counts=(1, 2), trials=8, seed=0, batch=64,
        scalar_s=scalar_s, batched_s=scalar_s / 4, speedup=4.0, rows_equal=True,
    )


class TestRunHistory:
    def test_runs_accumulate_across_invocations(self, tmp_path):
        path = str(tmp_path / "BENCH_sweep.json")
        write_bench_file([_sweep_result(1.0)], path)
        payload = write_bench_file([_sweep_result(2.0)], path)
        assert payload["schema"] == 3
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["benchmarks"][0]["scalar_s"] == 1.0
        assert payload["runs"][1]["benchmarks"][0]["scalar_s"] == 2.0
        # the top level mirrors the newest run for schema-2 readers
        assert payload["benchmarks"] == payload["runs"][-1]["benchmarks"]
        on_disk = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert len(on_disk["runs"]) == 2

    def test_schema_2_snapshot_migrates_into_run_one(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        legacy = {
            "schema": 2,
            "unix_time": 123.0,
            "machine": {"python": "3.11"},
            "benchmarks": [{"name": "sweep_debruijn_2_12", "speedup": 9.0}],
        }
        path.write_text(json.dumps(legacy))
        payload = write_bench_file([_sweep_result()], str(path))
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["unix_time"] == 123.0
        assert payload["runs"][0]["benchmarks"][0]["speedup"] == 9.0
        assert payload["runs"][0]["serve"] == []

    def test_corrupt_history_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text("{broken json")
        payload = write_bench_file([_sweep_result()], str(path))
        assert payload["schema"] == 3 and len(payload["runs"]) == 1

    def test_serve_entries_are_recorded(self, tmp_path):
        serve = ServeBenchResult(
            name="serve_debruijn_2_14", topology="debruijn", d=2, n=14,
            nodes=2**14, requests=256, concurrency=48, seed=0, max_batch=64,
            max_wait_ms=2.0, single_s=1.0, single_rps=256.0,
            single_p50_s=0.1, single_p99_s=0.2, batched_s=0.25,
            batched_rps=1024.0, batched_p50_s=0.02, batched_p99_s=0.05,
            batch_occupancy=40.0, throughput_gain=4.0, answers_equal=True,
        )
        path = str(tmp_path / "BENCH_sweep.json")
        payload = write_bench_file([_sweep_result()], path, serve_results=[serve])
        assert payload["serve"][0]["name"] == "serve_debruijn_2_14"
        assert payload["runs"][-1]["serve"][0]["throughput_gain"] == 4.0


class TestServeBench:
    def test_quick_serve_bench_end_to_end(self):
        # small graph + few requests: exercises both serving modes over real
        # sockets without benchmark-scale runtime
        result = run_serve_bench(
            requests=48, concurrency=12, config=("debruijn", 2, 8)
        )[0]
        assert result.answers_equal
        assert result.single_rps > 0 and result.batched_rps > 0
        assert result.batch_occupancy > 1.0
        assert result.single_p50_s <= result.single_p99_s
        assert result.throughput_gain == result.batched_rps / result.single_rps
