"""Tests for the shared kernel executor (dispatch, micro-batches, sharing)."""

import numpy as np
import pytest

from repro.analysis.fault_simulation import FaultSweepRunner, _cached_runner
from repro.engine.executor import KernelExecutor, cached_executor
from repro.exceptions import InvalidParameterError
from repro.topology import available_topologies, get_topology


def _random_masks(topo, count, seed, max_faults=6):
    """``count`` removed-node masks from seeded random fault sets (incl. empty)."""
    rng = np.random.default_rng(seed)
    masks = []
    for _ in range(count):
        f = int(rng.integers(0, max_faults))
        codes = rng.integers(0, topo.num_nodes, size=f)
        masks.append(topo.fault_unit_mask(codes.astype(np.int64)))
    return masks


class TestMeasureMasksBatch:
    @pytest.mark.parametrize("topology", sorted(available_topologies()))
    def test_ragged_batch_equals_scalar_per_mask(self, topology):
        executor = KernelExecutor(2, 6, topology=topology)
        masks = _random_masks(executor.topology, 24, seed=7)
        batched = executor.measure_masks_batch(masks)
        for mask, got in zip(masks, batched):
            assert got == executor.measure_mask_with_root(mask)

    def test_dead_root_lanes_fall_back_and_report_their_root(self):
        executor = KernelExecutor(2, 5)
        topo = executor.topology
        # kill the root's necklace in one lane, keep another lane fault-free
        dead = topo.fault_unit_mask(np.asarray([executor.root_code], dtype=np.int64))
        alive = np.zeros(topo.num_nodes, dtype=bool)
        results = executor.measure_masks_batch([dead, alive])
        assert results[0] == executor.measure_mask_with_root(dead)
        assert results[0][2] != executor.root_code  # measured from a fallback root
        assert results[1] == (topo.num_nodes, 5, executor.root_code)

    def test_all_nodes_removed_lane(self):
        executor = KernelExecutor(2, 4)
        everything = np.ones(executor.topology.num_nodes, dtype=bool)
        nothing = np.zeros(executor.topology.num_nodes, dtype=bool)
        assert executor.measure_masks_batch([everything, nothing])[0] == (0, 0, None)

    def test_batch_size_validated(self):
        executor = KernelExecutor(2, 4)
        with pytest.raises(InvalidParameterError):
            executor.measure_masks_batch([])
        too_many = [np.zeros(executor.topology.num_nodes, dtype=bool)] * 65
        with pytest.raises(InvalidParameterError):
            executor.measure_masks_batch(too_many)


class TestMeasureChunk:
    def test_scalar_and_kernel_dispatch_agree(self):
        executor = KernelExecutor(2, 6)
        seqs = [np.random.SeedSequence(0, spawn_key=(3, t)) for t in range(20)]
        items = list(enumerate(seqs))
        scalar = executor.measure_chunk(3, items, batch=1)
        batched = executor.measure_chunk(3, items, batch=64)
        assert scalar == batched

    def test_narrow_remnant_takes_scalar_path_with_identical_results(self):
        # 20 trials at batch=64: the whole chunk is narrower than the batch
        # but wider than MIN_KERNEL_BATCH, so it runs through the kernel;
        # 3 trials is below the heuristic floor and runs per-trial — either
        # way the results match the pure scalar dispatch
        executor = KernelExecutor(2, 6)
        seqs = [np.random.SeedSequence(1, spawn_key=(2, t)) for t in range(3)]
        items = list(enumerate(seqs))
        assert executor.measure_chunk(2, items, batch=64) == executor.measure_chunk(
            2, items, batch=1
        )


class TestSharing:
    def test_cached_executor_is_shared_across_layers(self):
        executor = cached_executor(2, 6, None, "debruijn")
        assert cached_executor(2, 6, None, "debruijn") is executor
        runner = _cached_runner(2, 6, None, "debruijn")
        assert runner.executor is executor

    def test_runner_is_a_thin_client(self):
        runner = FaultSweepRunner(2, 6, topology="kautz")
        assert isinstance(runner.executor, KernelExecutor)
        assert runner.topology is runner.executor.topology
        assert runner.root_code == runner.executor.root_code
        rng = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        assert runner.run_trial(2, rng) == runner.executor.run_trial(2, rng2)

    def test_runner_accepts_prebuilt_executor(self):
        executor = KernelExecutor(2, 5, topology="hypercube")
        runner = FaultSweepRunner(executor=executor)
        assert runner.executor is executor
        assert (runner.d, runner.n, runner.topology_key) == (2, 5, "hypercube")

    def test_service_measure_routes_through_shared_executor(self):
        from repro.engine.service import EmbeddingService

        topo = get_topology("debruijn", 2, 6)
        service = EmbeddingService()
        response = service.measure(2, 6, faults=[(0, 1, 0, 1, 1, 0)])
        executor = cached_executor(2, 6, None, "debruijn")
        removed = topo.fault_unit_mask(
            np.asarray([topo.encode((0, 1, 0, 1, 1, 0))], dtype=np.int64)
        )
        size, ecc, root = executor.measure_mask_with_root(removed)
        assert (response.region_size, response.root_eccentricity) == (size, ecc)
        assert topo.encode(response.root) == root
