"""Tests for the resident embedding service (normalisation, caching, counters)."""

import json

import pytest

from repro.core import find_fault_free_cycle
from repro.engine import EmbeddingRequest, EmbeddingService
from repro.engine.service import EmbeddingResponse, MeasureResponse
from repro.exceptions import AlphabetError, InvalidParameterError


class TestEmbedding:
    def test_matches_direct_ffc_call(self):
        service = EmbeddingService()
        faults = [(0, 2, 0), (1, 1, 2)]
        response = service.embed(3, 3, faults)
        direct = find_fault_free_cycle(3, 3, faults)
        assert response.cycle == direct.cycle
        assert response.length == direct.length == len(direct.cycle)
        assert response.meets_guarantee == direct.meets_guarantee()

    def test_cache_hit_returns_identical_cycle(self):
        service = EmbeddingService()
        cold = service.embed(2, 6, [(0, 1, 1, 0, 1, 0)])
        warm = service.embed(2, 6, [(0, 1, 1, 0, 1, 0)])
        assert not cold.cached and warm.cached
        assert warm.cycle == cold.cycle
        assert warm.length == cold.length

    def test_rotated_faults_hit_same_entry(self):
        # The FFC result depends only on which necklaces die, so a rotation
        # of the fault word must be served from cache with the same cycle.
        service = EmbeddingService()
        cold = service.embed(2, 5, [(0, 0, 0, 1, 1)])
        rotated = service.embed(2, 5, [(0, 0, 1, 1, 0)])
        assert rotated.cached
        assert rotated.cycle == cold.cycle
        assert rotated.faulty_necklaces == cold.faulty_necklaces
        # the response still reports the faults as requested
        assert rotated.faults == ((0, 0, 1, 1, 0),)

    def test_root_hint_is_part_of_the_key(self):
        service = EmbeddingService()
        a = service.embed(2, 5, [(1, 1, 1, 0, 1)], root_hint=(0, 0, 0, 0, 1))
        b = service.embed(2, 5, [(1, 1, 1, 0, 1)])
        assert not b.cached  # different key, not served from a's entry
        assert a.length == b.length  # but the same surviving component

    def test_guarantee_fields(self):
        service = EmbeddingService()
        zero = service.embed(2, 5)
        assert zero.guarantee_bound == 32 and zero.meets_guarantee
        single = service.embed(2, 5, [(0, 0, 0, 1, 1)])
        assert single.guarantee_bound == 2**5 - (5 + 1)  # Proposition 2.3
        many = service.embed(2, 5, [(0, 0, 0, 1, 1), (0, 1, 0, 1, 1)])
        assert many.guarantee_bound is None  # outside every guaranteed regime
        assert many.meets_guarantee  # vacuously: the cycle spans all of B*

    def test_duplicate_faults_counted_once_for_guarantee(self):
        service = EmbeddingService()
        response = service.embed(4, 3, [(0, 1, 2), (0, 1, 2)])
        assert response.guarantee_bound == 4**3 - 3 * 1  # f = 1 distinct fault

    def test_batch_queries_share_the_cache(self):
        service = EmbeddingService()
        requests = [
            EmbeddingRequest.make(2, 5, [(0, 0, 0, 1, 1)]),
            EmbeddingRequest.make(2, 5, [(0, 0, 1, 1, 0)]),  # rotation of the first
            EmbeddingRequest.make(2, 5),
        ]
        responses = service.embed_batch(requests)
        assert [r.cached for r in responses] == [False, True, False]
        assert responses[0].cycle == responses[1].cycle
        assert responses[2].length == 32

    def test_validation_errors(self):
        service = EmbeddingService()
        with pytest.raises(InvalidParameterError):
            service.embed(2, 5, [(0, 1)])  # wrong length
        with pytest.raises(AlphabetError):
            service.embed(2, 5, [(0, 0, 0, 0, 7)])  # digit outside Z_2


class TestCountersAndBounds:
    def test_stats_counters(self):
        service = EmbeddingService()
        service.embed(2, 5, [(0, 0, 0, 1, 1)])
        service.embed(2, 5, [(0, 0, 0, 1, 1)])
        stats = service.stats()
        assert stats["requests"] == 2
        assert stats["answers"]["hits"] == 1 and stats["answers"]["misses"] == 1
        assert stats["total_latency_s"] >= stats["compute_latency_s"] > 0
        assert stats["avg_latency_s"] > 0
        assert "words.get_codec" in stats["process_caches"]

    def test_answer_cache_is_bounded(self):
        service = EmbeddingService(max_cached_answers=2)
        service.embed(2, 5, [(0, 0, 0, 1, 1)])
        service.embed(2, 5, [(0, 1, 0, 1, 1)])
        service.embed(2, 5, [(0, 0, 1, 0, 1)])  # evicts the first entry
        assert service.stats()["answers"]["currsize"] == 2
        assert service.stats()["answers"]["evictions"] == 1
        refreshed = service.embed(2, 5, [(0, 0, 0, 1, 1)])
        assert not refreshed.cached  # was evicted, recomputed

    def test_clear_empties_service_caches(self):
        service = EmbeddingService()
        service.embed(2, 5, [(0, 0, 0, 1, 1)])
        service.clear()
        assert service.stats()["answers"]["currsize"] == 0
        assert service.stats()["codecs"]["currsize"] == 0
        again = service.embed(2, 5, [(0, 0, 0, 1, 1)])
        assert not again.cached

    def test_response_as_dict(self):
        service = EmbeddingService()
        response = service.embed(2, 5, [(0, 0, 0, 1, 1)])
        data = response.as_dict(include_cycle=False)
        assert "cycle" not in data
        assert data["length"] == response.length
        full = response.as_dict()
        assert len(full["cycle"]) == response.length


class TestResponseRoundTrip:
    """EmbeddingResponse.as_dict <-> from_dict is a real interchange format."""

    def _response(self) -> EmbeddingResponse:
        return EmbeddingService().embed(2, 5, [(0, 0, 0, 1, 1)])

    def test_round_trip_with_cycle_is_lossless(self):
        response = self._response()
        rebuilt = EmbeddingResponse.from_dict(response.as_dict())
        assert rebuilt == response

    def test_round_trip_without_cycle(self):
        response = self._response()
        data = response.as_dict(include_cycle=False)
        rebuilt = EmbeddingResponse.from_dict(data)
        assert rebuilt.cycle == ()  # payload omitted, not invented
        assert rebuilt.length == response.length  # true length survives
        # the dict itself round-trips exactly
        assert rebuilt.as_dict(include_cycle=False) == data

    def test_round_trip_through_json_text(self):
        # the CLI --json path: serialised text -> dict -> response
        response = self._response()
        rebuilt = EmbeddingResponse.from_dict(json.loads(json.dumps(response.as_dict())))
        assert rebuilt == response

    def test_none_guarantee_bound_survives(self):
        response = EmbeddingService().embed(
            2, 5, [(0, 0, 0, 1, 1), (0, 1, 0, 1, 1)]
        )
        assert response.guarantee_bound is None
        assert EmbeddingResponse.from_dict(response.as_dict()) == response


class TestMeasureQueries:
    """The topology-generic measurement API of the service."""

    def test_measure_matches_runner(self):
        from repro.analysis.fault_simulation import FaultSweepRunner

        service = EmbeddingService()
        response = service.measure(2, 6, faults=[(0, 1, 2, 0, 1, 2)], topology="kautz")
        runner = FaultSweepRunner(2, 6, topology="kautz")
        assert (response.region_size, response.root_eccentricity) == runner.measure(
            [(0, 1, 2, 0, 1, 2)]
        )
        assert response.topology == "kautz"

    def test_measure_caches_by_fault_units(self):
        service = EmbeddingService()
        cold = service.measure(2, 5, faults=[(0, 0, 0, 1, 1)])  # debruijn default
        rotated = service.measure(2, 5, faults=[(0, 0, 1, 1, 0)])  # same necklace
        assert not cold.cached and rotated.cached
        assert rotated.region_size == cold.region_size
        assert service.stats()["measurements"]["hits"] == 1

    def test_measure_keys_include_topology(self):
        service = EmbeddingService()
        a = service.measure(2, 6, faults=[(0, 0, 1, 0, 1, 1)], topology="debruijn")
        b = service.measure(2, 6, faults=[(0, 0, 1, 0, 1, 1)], topology="shuffle_exchange")
        assert not b.cached  # same word, different backend, different entry
        assert a.region_size != b.region_size  # necklace vs single-node removal

    def test_measure_reports_bounds(self):
        service = EmbeddingService()
        response = service.measure(2, 10, faults=[(0,) * 9 + (1,)], topology="hypercube")
        assert response.reference_size == 2**10 - 1
        assert response.guarantee_bound == 2**10 - 2
        # the requested root died: the response reports the fallback root
        # actually measured from — a *surviving* node, not the faulty one
        assert response.region_size > 0
        assert response.root is not None
        assert response.root != (0,) * 9 + (1,)

    def test_measure_surviving_root_reported_verbatim(self):
        service = EmbeddingService()
        response = service.measure(2, 5, faults=[(1, 1, 1, 1, 0)])
        assert response.root == (0, 0, 0, 0, 1)  # default root, alive

    def test_measure_all_removed_root_is_none(self):
        service = EmbeddingService()
        # one fault per necklace representative kills every node of B(2,2)
        response = service.measure(2, 2, faults=[(0, 0), (0, 1), (1, 1)])
        assert response.region_size == 0 and response.root_eccentricity == 0
        assert response.root is None
        assert MeasureResponse.from_dict(response.as_dict()) == response

    def test_measure_response_round_trip(self):
        service = EmbeddingService()
        response = service.measure(2, 6, faults=[(0, 1, 0, 1, 0, 1)], topology="kautz")
        rebuilt = MeasureResponse.from_dict(json.loads(json.dumps(response.as_dict())))
        assert rebuilt == response
