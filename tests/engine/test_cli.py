"""Tests for the ``python -m repro`` CLI (experiment / sweep / embed)."""

import json

import pytest

from repro.cli import main, parse_word


class TestParseWord:
    def test_compact_digits(self):
        assert parse_word("020") == (0, 2, 0)

    def test_comma_separated(self):
        assert parse_word("10,3,0") == (10, 3, 0)

    def test_garbage_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_word("0a1")


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "table_2_1" in out and "figure_2_ffc_example" in out

    def test_run_single_experiment(self, capsys):
        assert main(["experiment", "table_3_1"]) == 0
        out = capsys.readouterr().out
        assert "psi(d)" in out and "table_3_1" in out

    def test_fault_table_accepts_trials_and_workers(self, capsys):
        assert main(["experiment", "table_2_2", "--trials", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "B(4,5)" in out and "1019" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "table_9_9"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestSweepCommand:
    def test_text_output(self, capsys):
        code = main(["sweep", "--d", "2", "--n", "6",
                     "--fault-counts", "0,1", "--trials", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "B(2,6)" in out and "Avg. Size" in out

    def test_worker_count_invariance_via_json(self, capsys):
        argv = ["sweep", "--d", "2", "--n", "6", "--fault-counts", "0,1,3",
                "--trials", "4", "--seed", "7", "--json"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert json.loads(serial) == json.loads(parallel)
        assert serial == parallel  # byte-identical, diffable in CI

    def test_checkpoint_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        argv = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                "--trials", "3", "--json", "--checkpoint", path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # resumes from the finished checkpoint
        assert capsys.readouterr().out == first

    def test_progress_flag(self, capsys):
        assert main(["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                     "--trials", "2", "--progress"]) == 0
        assert "trials" in capsys.readouterr().err

    def test_batch_invariance_via_json(self, capsys):
        argv = ["sweep", "--d", "2", "--n", "6", "--fault-counts", "0,2,5",
                "--trials", "5", "--seed", "3", "--json"]
        assert main(argv + ["--batch", "1"]) == 0
        scalar = capsys.readouterr().out
        assert main(argv + ["--batch", "64"]) == 0
        assert capsys.readouterr().out == scalar  # byte-identical

    def test_bad_batch_is_a_one_line_diagnostic(self, capsys):
        assert main(["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                     "--trials", "2", "--batch", "65"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:") and "batch" in err


class TestBenchCommand:
    def test_quick_bench_writes_file(self, tmp_path, capsys, monkeypatch):
        out = str(tmp_path / "BENCH_sweep.json")
        assert main(["bench", "--quick", "--repeats", "1", "--out", out]) == 0
        printed = capsys.readouterr().out
        assert "speedup" in printed and "rows identical" in printed
        data = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert data["schema"] == 1
        assert data["machine"]["numpy"]
        names = {b["name"] for b in data["benchmarks"]}
        assert "sweep_b2_12" in names
        for entry in data["benchmarks"]:
            assert entry["rows_equal"] is True
            assert entry["scalar_s"] > 0 and entry["batched_s"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["scalar_s"] / entry["batched_s"]
            )


class TestEmbedCommand:
    def test_human_output(self, capsys):
        assert main(["embed", "--d", "2", "--n", "5", "--faults", "00011"]) == 0
        out = capsys.readouterr().out
        assert "fault-free ring length: 27" in out
        assert "worst-case guarantee: 26; met: True" in out

    def test_json_output(self, capsys):
        assert main(["embed", "--d", "3", "--n", "3",
                     "--faults", "020", "112", "--json", "--show-cycle"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["d"] == 3 and data["n"] == 3
        assert data["length"] == len(data["cycle"])
        assert data["faults"] == [[0, 2, 0], [1, 1, 2]]
        assert data["meets_guarantee"] is True

    def test_show_cycle_text(self, capsys):
        assert main(["embed", "--d", "2", "--n", "4", "--show-cycle"]) == 0
        out = capsys.readouterr().out
        assert "cycle:" in out
        assert "0000" in out  # the full graph cycle visits the zero word

    def test_no_faults_full_ring(self, capsys):
        assert main(["embed", "--d", "2", "--n", "5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["length"] == 32 and data["faults"] == []

    def test_missing_required_args(self):
        with pytest.raises(SystemExit) as exc:
            main(["embed", "--d", "2"])
        assert exc.value.code == 2


class TestDomainErrors:
    def test_bad_fault_digit_is_a_one_line_diagnostic(self, capsys):
        assert main(["embed", "--d", "2", "--n", "5", "--faults", "00021"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro embed:") and "Traceback" not in err

    def test_checkpoint_mismatch_is_a_one_line_diagnostic(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        base = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                "--trials", "2", "--checkpoint", path]
        assert main(base + ["--seed", "0"]) == 0
        capsys.readouterr()
        assert main(base + ["--seed", "1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:") and "different sweep" in err
