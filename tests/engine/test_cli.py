"""Tests for the ``python -m repro`` CLI (experiment / sweep / embed)."""

import json

import pytest

from repro.cli import main, parse_word


class TestParseWord:
    def test_compact_digits(self):
        assert parse_word("020") == (0, 2, 0)

    def test_comma_separated(self):
        assert parse_word("10,3,0") == (10, 3, 0)

    def test_garbage_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_word("0a1")

    def test_large_alphabet_digits_need_commas(self):
        # "11,0,3" is the node (11, 0, 3); compact "1103" would be 4 digits
        assert parse_word("11,0,3") == (11, 0, 3)
        assert parse_word("1103") == (1, 1, 0, 3)

    def test_comma_form_tolerates_spaces(self):
        assert parse_word(" 1, 2, 0 ") == (1, 2, 0)

    def test_empty_and_malformed_comma_forms_rejected(self):
        import argparse

        for bad in ("", "1,,2", "1,2,", ",1,2", "1;2"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_word(bad)

    def test_single_digit_both_forms(self):
        assert parse_word("7") == (7,)
        assert parse_word("12") == (1, 2)  # compact: one digit per char


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "table_2_1" in out and "figure_2_ffc_example" in out

    def test_run_single_experiment(self, capsys):
        assert main(["experiment", "table_3_1"]) == 0
        out = capsys.readouterr().out
        assert "psi(d)" in out and "table_3_1" in out

    def test_fault_table_accepts_trials_and_workers(self, capsys):
        assert main(["experiment", "table_2_2", "--trials", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "B(4,5)" in out and "1019" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "table_9_9"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestSweepCommand:
    def test_text_output(self, capsys):
        code = main(["sweep", "--d", "2", "--n", "6",
                     "--fault-counts", "0,1", "--trials", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "B(2,6)" in out and "Avg. Size" in out

    def test_worker_count_invariance_via_json(self, capsys):
        argv = ["sweep", "--d", "2", "--n", "6", "--fault-counts", "0,1,3",
                "--trials", "4", "--seed", "7", "--json"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert json.loads(serial) == json.loads(parallel)
        assert serial == parallel  # byte-identical, diffable in CI

    def test_checkpoint_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        argv = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                "--trials", "3", "--json", "--checkpoint", path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # resumes from the finished checkpoint
        assert capsys.readouterr().out == first

    def test_progress_flag(self, capsys):
        assert main(["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                     "--trials", "2", "--progress"]) == 0
        assert "trials" in capsys.readouterr().err

    def test_batch_invariance_via_json(self, capsys):
        argv = ["sweep", "--d", "2", "--n", "6", "--fault-counts", "0,2,5",
                "--trials", "5", "--seed", "3", "--json"]
        assert main(argv + ["--batch", "1"]) == 0
        scalar = capsys.readouterr().out
        assert main(argv + ["--batch", "64"]) == 0
        assert capsys.readouterr().out == scalar  # byte-identical

    def test_bad_batch_is_a_one_line_diagnostic(self, capsys):
        assert main(["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                     "--trials", "2", "--batch", "65"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:") and "batch" in err


class TestSweepTopologies:
    @pytest.mark.parametrize("topology,title", [
        ("kautz", "K(2,6)"),
        ("hypercube", "Q(6)"),
        ("shuffle_exchange", "SE(2,6)"),
        ("undirected_debruijn", "UB(2,6)"),
    ])
    def test_text_output_per_topology(self, topology, title, capsys):
        assert main(["sweep", "--topology", topology, "--d", "2", "--n", "6",
                     "--fault-counts", "0,1", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert title in out and "Avg. Size" in out

    def test_json_carries_topology_key(self, capsys):
        assert main(["sweep", "--topology", "kautz", "--d", "2", "--n", "6",
                     "--fault-counts", "0,2", "--trials", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["topology"] == "kautz"
        assert len(data["rows"]) == 2

    def test_default_topology_is_debruijn(self, capsys):
        assert main(["sweep", "--d", "2", "--n", "5", "--fault-counts", "0",
                     "--trials", "2", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["topology"] == "debruijn"

    def test_worker_invariance_on_kautz_via_json(self, capsys):
        argv = ["sweep", "--topology", "kautz", "--d", "2", "--n", "7",
                "--fault-counts", "0,1,3", "--trials", "4", "--seed", "7", "--json"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial  # byte-identical

    def test_unknown_topology_rejected_by_argparse(self):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--topology", "torus", "--n", "5"])
        assert exc.value.code == 2

    def test_hypercube_rejects_nonbinary_d(self, capsys):
        assert main(["sweep", "--topology", "hypercube", "--d", "3", "--n", "5",
                     "--fault-counts", "0", "--trials", "1"]) == 1
        assert "d=2" in capsys.readouterr().err


class TestCsvFormats:
    def test_sweep_csv_round_trips_rows(self, capsys):
        import csv as csv_mod
        import io

        argv = ["sweep", "--d", "2", "--n", "6", "--fault-counts", "0,1,4",
                "--trials", "5", "--seed", "2"]
        assert main(argv + ["--format", "csv"]) == 0
        text = capsys.readouterr().out
        reader = list(csv_mod.reader(io.StringIO(text)))
        assert reader[0][:2] == ["f", "trials"]
        assert len(reader) == 4  # header + 3 rows
        # full precision: the avg columns agree with the JSON payload exactly
        assert main(argv + ["--json"]) == 0
        rows = json.loads(capsys.readouterr().out)["rows"]
        for line, row in zip(reader[1:], rows):
            assert float(line[2]) == row["avg_size"]
            assert int(line[5]) == row["reference_size"]

    def test_sweep_csv_on_other_topology(self, capsys):
        assert main(["sweep", "--topology", "shuffle_exchange", "--d", "2", "--n", "6",
                     "--fault-counts", "0,2", "--trials", "3", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("f,trials,avg_size")
        assert len(lines) == 3

    def test_format_json_equals_json_flag(self, capsys):
        argv = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1", "--trials", "2"]
        assert main(argv + ["--format", "json"]) == 0
        a = capsys.readouterr().out
        assert main(argv + ["--json"]) == 0
        assert capsys.readouterr().out == a

    def test_experiment_csv(self, capsys):
        assert main(["experiment", "table_3_1", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("# table_3_1:")
        assert lines[1] == "d,psi(d)"
        assert lines[2].startswith("2,")

    def test_experiment_topology_sweep_selectable(self, capsys):
        assert main(["experiment", "topology_sweep", "--topology", "hypercube",
                     "--trials", "2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "hypercube" in out.splitlines()[0]
        assert "f,Avg. Size" in out.splitlines()[1]

    def test_topology_flag_rejected_when_no_experiment_accepts_it(self, capsys):
        # silently running the De Bruijn table would mislead the user
        assert main(["experiment", "table_3_1", "--topology", "hypercube"]) == 1
        assert "--topology only applies" in capsys.readouterr().err


class TestBenchCommand:
    def test_quick_bench_writes_file(self, tmp_path, capsys, monkeypatch):
        out = str(tmp_path / "BENCH_sweep.json")
        assert main(["bench", "--quick", "--repeats", "1", "--no-serve",
                     "--out", out]) == 0
        printed = capsys.readouterr().out
        assert "speedup" in printed and "rows identical" in printed
        data = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert data["schema"] == 3
        assert data["machine"]["numpy"]
        names = {b["name"] for b in data["benchmarks"]}
        assert "sweep_debruijn_2_12" in names
        for entry in data["benchmarks"]:
            assert entry["rows_equal"] is True
            assert entry["scalar_s"] > 0 and entry["batched_s"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["scalar_s"] / entry["batched_s"]
            )
        # a second invocation appends to the run history instead of
        # overwriting the snapshot
        assert main(["bench", "--quick", "--repeats", "1", "--no-serve",
                     "--out", out]) == 0
        capsys.readouterr()
        data = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert len(data["runs"]) == 2
        assert data["benchmarks"] == data["runs"][-1]["benchmarks"]


class TestEmbedCommand:
    def test_human_output(self, capsys):
        assert main(["embed", "--d", "2", "--n", "5", "--faults", "00011"]) == 0
        out = capsys.readouterr().out
        assert "fault-free ring length: 27" in out
        assert "worst-case guarantee: 26; met: True" in out

    def test_json_output(self, capsys):
        assert main(["embed", "--d", "3", "--n", "3",
                     "--faults", "020", "112", "--json", "--show-cycle"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["d"] == 3 and data["n"] == 3
        assert data["length"] == len(data["cycle"])
        assert data["faults"] == [[0, 2, 0], [1, 1, 2]]
        assert data["meets_guarantee"] is True

    def test_show_cycle_text(self, capsys):
        assert main(["embed", "--d", "2", "--n", "4", "--show-cycle"]) == 0
        out = capsys.readouterr().out
        assert "cycle:" in out
        assert "0000" in out  # the full graph cycle visits the zero word

    def test_no_faults_full_ring(self, capsys):
        assert main(["embed", "--d", "2", "--n", "5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["length"] == 32 and data["faults"] == []

    def test_missing_required_args(self):
        with pytest.raises(SystemExit) as exc:
            main(["embed", "--d", "2"])
        assert exc.value.code == 2


class TestDomainErrors:
    def test_bad_fault_digit_is_a_one_line_diagnostic(self, capsys):
        assert main(["embed", "--d", "2", "--n", "5", "--faults", "00021"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro embed:") and "Traceback" not in err

    def test_checkpoint_mismatch_is_a_one_line_diagnostic(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        base = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                "--trials", "2", "--checkpoint", path]
        assert main(base + ["--seed", "0"]) == 0
        capsys.readouterr()
        assert main(base + ["--seed", "1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:") and "different sweep" in err


class TestFreshFlag:
    def test_corrupt_checkpoint_diagnosed_then_fresh_recovers(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        base = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                "--trials", "2", "--checkpoint", path]
        assert main(base) == 0
        capsys.readouterr()
        with open(path, "w") as fh:
            fh.write("{torn")  # corrupt the checkpoint in place
        assert main(base) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:") and "Traceback" not in err
        assert "corrupt" in err and "--fresh" in err
        # the escape hatch: discard the corrupt file and run clean
        assert main(base + ["--fresh"]) == 0
        assert "discarded checkpoint" in capsys.readouterr().err

    def test_fresh_without_an_existing_checkpoint_is_a_no_op(self, tmp_path, capsys):
        path = str(tmp_path / "never-written.json")
        argv = ["sweep", "--d", "2", "--n", "5", "--fault-counts", "1",
                "--trials", "2", "--checkpoint", path, "--fresh"]
        assert main(argv) == 0
        assert "discarded" not in capsys.readouterr().err
