"""Determinism and checkpoint/resume tests for the parallel sweep engine.

The engine's contract (see :mod:`repro.engine.sweep`): rows are bit-for-bit
identical for any worker count, and a checkpointed run interrupted mid-sweep
resumes to exactly the rows of an uninterrupted run.
"""

import json

import pytest

from repro.analysis import simulate_fault_table
from repro.engine import ParallelSweepEngine, SweepProgress, trial_seed_sequences
from repro.exceptions import (
    CheckpointCorruptionError,
    CheckpointMismatchError,
    InvalidParameterError,
)

FAULT_COUNTS = (0, 1, 3)
TRIALS = 6
SEED = 9


class TestSeedTree:
    def test_per_trial_streams_are_distinct_and_reproducible(self):
        a = trial_seed_sequences(5, (0, 4), 3)
        b = trial_seed_sequences(5, (0, 4), 3)
        states = set()
        for row_a, row_b in zip(a, b):
            for seq_a, seq_b in zip(row_a, row_b):
                assert seq_a.generate_state(2).tolist() == seq_b.generate_state(2).tolist()
                states.add(tuple(seq_a.generate_state(2).tolist()))
        assert len(states) == 6  # every (f, trial) pair gets its own stream

    def test_streams_match_the_spawn_tree(self):
        # spawn_key=(f, t) is exactly the spawn()-derived grandchild
        import numpy as np

        direct = trial_seed_sequences(7, (2,), 3)[0][1]
        spawned = np.random.SeedSequence(7).spawn(3)[2].spawn(2)[1]
        assert direct.generate_state(4).tolist() == spawned.generate_state(4).tolist()

    def test_row_streams_independent_of_other_rows(self):
        # sweeping f=3 alone reproduces the f=3 row of a wider sweep
        alone = ParallelSweepEngine(2, 6).run((3,), trials=5, seed=SEED)
        wide = ParallelSweepEngine(2, 6).run((0, 3, 5), trials=5, seed=SEED)
        assert alone[0] == wide[1]

    def test_duplicate_fault_counts_give_identical_rows(self):
        rows = ParallelSweepEngine(2, 6).run((2, 2), trials=4, seed=0)
        assert rows[0] == rows[1]


class TestWorkerCountInvariance:
    def test_serial_one_worker_and_two_workers_identical(self):
        serial = ParallelSweepEngine(2, 6).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        one = ParallelSweepEngine(2, 6, workers=1).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        two = ParallelSweepEngine(2, 6, workers=2).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        three = ParallelSweepEngine(2, 6, workers=3).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        assert serial == one == two == three

    def test_engine_matches_simulate_fault_table(self):
        # simulate_fault_table is routed through the engine: same rows by
        # construction, for the serial and the multiprocess path alike.
        lib = simulate_fault_table(2, 6, fault_counts=FAULT_COUNTS, trials=TRIALS, seed=SEED)
        eng = ParallelSweepEngine(2, 6, workers=2).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        assert lib == eng

    def test_simulate_fault_table_workers_param(self):
        a = simulate_fault_table(2, 6, fault_counts=(2,), trials=5, seed=1)
        b = simulate_fault_table(2, 6, fault_counts=(2,), trials=5, seed=1, workers=2)
        assert a == b

    def test_custom_root_respected_across_workers(self):
        root = (1, 0, 1, 0, 1, 0)
        serial = ParallelSweepEngine(2, 6, root=root).run((2,), trials=4, seed=3)
        parallel = ParallelSweepEngine(2, 6, root=root, workers=2).run((2,), trials=4, seed=3)
        assert serial == parallel

    def test_different_seeds_differ(self):
        a = ParallelSweepEngine(2, 6).run((3,), trials=8, seed=0)
        b = ParallelSweepEngine(2, 6).run((3,), trials=8, seed=1)
        assert a != b


class _StopSweep(Exception):
    pass


def _interrupt_after(trials_done: int):
    state = {"count": 0}

    def callback(progress: SweepProgress) -> None:
        assert isinstance(progress, SweepProgress)
        state["count"] += 1
        if state["count"] == trials_done:
            raise _StopSweep

    return callback


class TestCheckpointResume:

    def test_resume_equals_uninterrupted(self, tmp_path):
        path = tmp_path / "sweep.json"
        full = ParallelSweepEngine(2, 6).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)

        interrupted = ParallelSweepEngine(
            2, 6, checkpoint_path=path, checkpoint_every=2,
            progress=_interrupt_after(7),
        )
        with pytest.raises(_StopSweep):
            interrupted.run(FAULT_COUNTS, trials=TRIALS, seed=SEED)

        on_disk = json.loads(path.read_text())
        partial = sum(len(v) for v in on_disk["completed"].values())
        assert 0 < partial < len(FAULT_COUNTS) * TRIALS  # genuinely mid-sweep

        resumed = ParallelSweepEngine(2, 6, checkpoint_path=path).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert resumed == full

    def test_parallel_resume_after_serial_interrupt(self, tmp_path):
        path = tmp_path / "sweep.json"
        full = ParallelSweepEngine(2, 6).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        interrupted = ParallelSweepEngine(
            2, 6, checkpoint_path=path, checkpoint_every=1,
            progress=_interrupt_after(5),
        )
        with pytest.raises(_StopSweep):
            interrupted.run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        resumed = ParallelSweepEngine(2, 6, checkpoint_path=path, workers=2).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert resumed == full

    def test_finished_checkpoint_resumes_instantly(self, tmp_path):
        path = tmp_path / "sweep.json"
        first = ParallelSweepEngine(2, 6, checkpoint_path=path).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        again = ParallelSweepEngine(2, 6, checkpoint_path=path).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert first == again

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        # (d, n, root, seed) pin the trial streams; a mismatch must refuse
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=0)
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=1)
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 6, root=(1, 0, 1, 0, 1, 0), checkpoint_path=path).run(
                (1,), trials=3, seed=0
            )

    def test_checkpoint_reusable_when_trials_grow(self, tmp_path):
        # streams depend only on (seed, f, t): growing the trial count reuses
        # every completed trial and computes only the new tail
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=SEED)
        ran = []
        grown = ParallelSweepEngine(2, 6, checkpoint_path=path, progress=ran.append).run(
            (1,), trials=6, seed=SEED
        )
        fresh = ParallelSweepEngine(2, 6).run((1,), trials=6, seed=SEED)
        assert grown == fresh
        assert len(ran) == 3  # only trials 3..5 were computed

    def test_no_resume_starts_fresh_and_overwrites(self, tmp_path):
        path = tmp_path / "sweep.json"
        ParallelSweepEngine(2, 6, checkpoint_path=path).run((1,), trials=3, seed=0)
        ran = []
        rows = ParallelSweepEngine(2, 6, checkpoint_path=path, progress=ran.append).run(
            (1,), trials=4, seed=0, resume=False
        )
        assert rows[0].trials == 4
        assert len(ran) == 4  # nothing reused from the existing file
        assert json.loads(path.read_text())["trials"] == 4

    def test_checkpoint_reusable_when_rows_added(self, tmp_path):
        # rows are keyed and seeded by f, so a checkpoint from a narrower
        # sweep seeds a wider one: the shared row is not recomputed.
        path = tmp_path / "sweep.json"
        narrow = ParallelSweepEngine(2, 6, checkpoint_path=path).run(
            (1,), trials=4, seed=SEED
        )
        recomputed = []
        wide = ParallelSweepEngine(2, 6, checkpoint_path=path, progress=recomputed.append).run(
            (1, 3), trials=4, seed=SEED
        )
        assert wide[0] == narrow[0]
        assert all(p.f == 3 for p in recomputed)  # only the new row ran


class TestBatchInvariance:
    """The bit-parallel batch width can never change a row (ISSUE 3)."""

    def test_all_batch_sizes_identical(self):
        runs = [
            ParallelSweepEngine(2, 6, batch=b).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
            for b in (1, 2, 7, 64)
        ]
        assert runs[0] == runs[1] == runs[2] == runs[3]

    def test_batched_parallel_equals_scalar_serial(self):
        scalar = ParallelSweepEngine(2, 6, batch=1).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        batched = ParallelSweepEngine(2, 6, workers=2, batch=64).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert scalar == batched

    def test_simulate_fault_table_batch_param(self):
        a = simulate_fault_table(2, 6, fault_counts=(2,), trials=9, seed=1, batch=1)
        b = simulate_fault_table(2, 6, fault_counts=(2,), trials=9, seed=1, batch=64)
        assert a == b

    def test_resume_across_batch_sizes(self, tmp_path):
        # a checkpoint written by a scalar run resumes exactly on a batched
        # engine (and vice versa): results depend only on (seed, f, t)
        path = tmp_path / "sweep.json"
        full = ParallelSweepEngine(2, 6, batch=64).run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        interrupted = ParallelSweepEngine(
            2, 6, batch=1, checkpoint_path=path, checkpoint_every=1,
            progress=_interrupt_after(7),
        )
        with pytest.raises(_StopSweep):
            interrupted.run(FAULT_COUNTS, trials=TRIALS, seed=SEED)
        resumed = ParallelSweepEngine(2, 6, batch=64, checkpoint_path=path).run(
            FAULT_COUNTS, trials=TRIALS, seed=SEED
        )
        assert resumed == full

    def test_invalid_batch_rejected(self):
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 5, batch=0)
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 5, batch=65)


class TestProgressAndValidation:
    def test_progress_reaches_total(self):
        seen = []
        engine = ParallelSweepEngine(2, 5, progress=seen.append)
        engine.run((0, 2), trials=4, seed=0)
        assert seen[-1].done_trials == seen[-1].total_trials == 8
        assert seen[-1].fraction == 1.0
        assert len(seen) == 8  # serial mode: one callback per trial

    def test_empty_fault_counts(self):
        assert ParallelSweepEngine(2, 5).run(()) == []

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 5, workers=-1)
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 5, checkpoint_every=0)
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 5).run((-1,))
        with pytest.raises(InvalidParameterError):
            ParallelSweepEngine(2, 5).run((1,), trials=0)


class TestCheckpointCorruption:
    """Corrupt checkpoint files surface as CheckpointCorruptionError —
    named path, --fresh escape hatch — never a raw JSONDecodeError."""

    def _engine(self, path):
        return ParallelSweepEngine(2, 5, checkpoint_path=path)

    def test_truncated_json_is_diagnosed(self, tmp_path):
        path = tmp_path / "ck.json"
        self._engine(path).run((1,), trials=2, seed=0)
        path.write_text(path.read_text()[:-20])  # torn write
        with pytest.raises(CheckpointCorruptionError, match="--fresh") as excinfo:
            self._engine(path).run((1,), trials=2, seed=0)
        assert str(path) in str(excinfo.value)

    def test_garbage_bytes_are_diagnosed(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_bytes(b"\x00\xff not json at all")
        with pytest.raises(CheckpointCorruptionError, match="not valid JSON"):
            self._engine(path).run((1,), trials=2, seed=0)

    def test_non_object_payload_is_diagnosed(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointCorruptionError, match="JSON object"):
            self._engine(path).run((1,), trials=2, seed=0)

    def test_malformed_completed_table_is_diagnosed(self, tmp_path):
        path = tmp_path / "ck.json"
        self._engine(path).run((1,), trials=2, seed=0)
        data = json.loads(path.read_text())
        data["completed"] = {"1": "definitely-not-a-row-list"}
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointCorruptionError, match="completed-trials"):
            self._engine(path).run((1,), trials=2, seed=0)

    def test_corruption_is_a_mismatch_subclass(self):
        # callers already catching CheckpointMismatchError keep working
        assert issubclass(CheckpointCorruptionError, CheckpointMismatchError)
        error = CheckpointCorruptionError("/tmp/ck.json", "torn write")
        assert error.path == "/tmp/ck.json"
        assert error.detail == "torn write"
