"""The observability surface of the gateway: /stats compat, /metrics, traces.

Three contracts pinned here:

1. ``GET /stats`` keeps the exact PR 5 key schema — the registry became its
   backing store without changing a single key.
2. ``GET /metrics`` is valid Prometheus text exposition (0.0.4) whose
   counters agree with the traffic actually served.
3. Every ``POST /measure`` is traced end to end: the response echoes the
   trace id, and the exported span log tiles the request — at least four
   distinct stages whose durations sum to ~the reported ``elapsed_s``.
"""

import asyncio
import json

from repro.obs import parse_prometheus_text
from repro.server.client import AsyncServeClient, fire_measure
from repro.server.gateway import BatchingGateway, GatewayConfig

PAYLOAD = {"topology": "debruijn", "d": 2, "n": 8,
           "faults": [[0, 1, 0, 1, 1, 0, 1, 0]], "root": None}


def _with_gateway(coro, config=None):
    async def main():
        gateway = BatchingGateway(config or GatewayConfig(port=0))
        await gateway.start()
        host, port = gateway.address
        try:
            return await coro(gateway, host, port)
        finally:
            await gateway.close()

    return asyncio.run(main())


class TestStatsBackwardCompat:
    def test_stats_keeps_the_pr5_key_schema(self):
        async def scenario(gateway, host, port):
            await fire_measure(host, port, [PAYLOAD], concurrency=1)
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request("GET", "/stats")
            finally:
                await client.close()

        status, stats = _with_gateway(scenario)
        assert status == 200
        assert set(stats) == {"server", "shards", "measure_cache", "service"}
        assert set(stats["server"]) == {
            "uptime_s", "requests", "errors", "launches", "lanes",
            "batch_occupancy", "rejected", "p50_s", "p99_s",
            "degraded", "retried",
        }
        (shard,) = stats["shards"].values()
        assert set(shard) == {
            "max_batch", "max_wait_s", "max_queue", "queued", "launches",
            "lanes", "batch_occupancy", "completed", "rejected",
            "p50_s", "p99_s", "deadline_expired", "isolated_failures",
        }
        assert set(stats["service"]) == {
            "requests", "total_latency_s", "compute_latency_s",
            "avg_latency_s", "answers", "measurements", "codecs",
            "churn", "process_caches",
        }
        # counts are JSON integers, exactly as before the registry move
        assert stats["server"]["requests"]["POST /measure"] == 1
        assert isinstance(stats["server"]["errors"], int)
        assert isinstance(shard["completed"], int)


class TestMetricsEndpoint:
    def test_metrics_is_valid_exposition_and_counts_traffic(self):
        # one fault word per weight: distinct fault *units*, so none of the
        # requests collapses into another's cache entry
        payloads = [
            {"topology": "debruijn", "d": 2, "n": 8,
             "faults": [[1] * k + [0] * (8 - k)], "root": None}
            for k in range(1, 9)
        ]

        async def scenario(gateway, host, port):
            await fire_measure(host, port, payloads, concurrency=4)
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request_raw("GET", "/metrics")
            finally:
                await client.close()

        status, content_type, text = _with_gateway(scenario)
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        parsed = parse_prometheus_text(text)  # must parse cleanly

        requests = dict(
            (labels["endpoint"], value)
            for labels, value in parsed["repro_gateway_requests_total"]
        )
        assert requests["POST /measure"] == len(payloads)
        (shard_completed,) = parsed["repro_batcher_completed_total"]
        assert shard_completed[0]["shard"] == "debruijn(2,8)"
        assert shard_completed[1] == len(payloads)
        # per-launch profiling flows from the process-wide registry
        assert "repro_kernel_launches_total" in parsed
        assert "repro_kernel_lanes_bucket" in parsed

    def test_histogram_series_are_monotone_and_consistent(self):
        async def scenario(gateway, host, port):
            await fire_measure(host, port, [PAYLOAD], concurrency=1)
            return gateway.metrics_text()

        parsed = parse_prometheus_text(_with_gateway(scenario))
        buckets = parsed["repro_gateway_request_seconds_bucket"]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        assert buckets[-1][0]["le"] == "+Inf"
        assert counts[-1] == parsed["repro_gateway_request_seconds_count"][0][1]


class TestRequestTracing:
    def test_measure_response_carries_a_trace_with_tiling_spans(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                status, answer = await client.request("POST", "/measure", PAYLOAD)
                _, content_type, jsonl = await client.request_raw(
                    "GET", f"/traces?id={answer['trace_id']}"
                )
                return status, answer, content_type, jsonl
            finally:
                await client.close()

        status, answer, content_type, jsonl = _with_gateway(scenario)
        assert status == 200
        assert len(answer["trace_id"]) == 16  # minted: 8 random bytes, hex
        assert content_type == "application/x-ndjson"
        (record,) = [json.loads(line) for line in jsonl.splitlines()]
        assert record["trace_id"] == answer["trace_id"]
        stages = [span["stage"] for span in record["spans"]]
        # a cold measure crosses at least gateway -> queue -> kernel -> reply
        assert {"gateway", "queue", "kernel", "reply"} <= set(stages)
        assert len(set(stages)) >= 4
        # the spans tile the request: their sum accounts for the bulk of the
        # reported wall time (scheduler hand-off gaps are the remainder)
        span_sum = sum(span["duration_s"] for span in record["spans"])
        assert record["elapsed_s"] > 0
        assert span_sum <= record["elapsed_s"] * 1.05
        assert span_sum >= record["elapsed_s"] * 0.5

    def test_x_trace_id_header_is_adopted(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                _, answer = await client.request(
                    "POST", "/measure", PAYLOAD,
                    headers={"X-Trace-Id": "caller-supplied.01"},
                )
                return answer, gateway.tracer.get("caller-supplied.01")
            finally:
                await client.close()

        answer, record = _with_gateway(scenario)
        assert answer["trace_id"] == "caller-supplied.01"
        assert record is not None and record["spans"]

    def test_invalid_x_trace_id_is_a_400(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request(
                    "POST", "/measure", PAYLOAD,
                    headers={"X-Trace-Id": "bad id with spaces"},
                )
            finally:
                await client.close()

        status, payload = _with_gateway(scenario)
        assert status == 400 and "trace id" in payload["error"]

    def test_traces_endpoint_lists_every_finished_trace(self):
        payloads = [
            {"topology": "debruijn", "d": 2, "n": 8,
             "faults": [[int(b) for b in format(i, "08b")]], "root": None}
            for i in range(5)
        ]

        async def scenario(gateway, host, port):
            answers, _ = await fire_measure(host, port, payloads, concurrency=2)
            client = await AsyncServeClient.open(host, port)
            try:
                _, _, jsonl = await client.request_raw("GET", "/traces")
                return answers, jsonl
            finally:
                await client.close()

        answers, jsonl = _with_gateway(scenario)
        records = [json.loads(line) for line in jsonl.splitlines()]
        assert {r["trace_id"] for r in records} == {
            a["trace_id"] for a in answers
        }

    def test_cached_answers_are_traced_without_kernel_spans(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                _, cold = await client.request("POST", "/measure", PAYLOAD)
                _, warm = await client.request("POST", "/measure", PAYLOAD)
                return cold, warm, gateway.tracer.get(warm["trace_id"])
            finally:
                await client.close()

        cold, warm, record = _with_gateway(scenario)
        assert warm["cached"] and warm["trace_id"] != cold["trace_id"]
        stages = {span["stage"] for span in record["spans"]}
        assert "kernel" not in stages  # cache hits never reach the executor
        assert {"gateway", "reply"} <= stages
